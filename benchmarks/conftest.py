"""Shared fixtures for the pytest-benchmark targets.

The benchmark scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``smoke`` (default, ~30 k dots — finishes in a few minutes),
``bench`` (~250 k dots — the scale used for the numbers in EXPERIMENTS.md)
or ``tiny`` (CI sanity runs).  Stacks are session-scoped: dataset loading
and mapping-table precomputation are deliberately excluded from the measured
interaction times, exactly as in the paper.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make src/ and examples/ importable when the package is not installed.
_ROOT = Path(__file__).resolve().parents[1]
for path in (_ROOT / "src", _ROOT / "examples"):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))

from repro.bench.experiments import build_stack  # noqa: E402
from repro.datagen.traces import paper_traces  # noqa: E402

#: Tile sizes of the paper's evaluation.
TILE_SIZES = (256, 1024, 4096)


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def uniform_stack(scale):
    """The Uniform dataset stack with mapping tables for all tile sizes."""
    return build_stack("uniform", scale=scale, tile_sizes=TILE_SIZES)


@pytest.fixture(scope="session")
def skewed_stack(scale):
    """The Skewed dataset stack with mapping tables for all tile sizes."""
    return build_stack("skewed", scale=scale, tile_sizes=TILE_SIZES)


@pytest.fixture(scope="session")
def uniform_traces(uniform_stack):
    return paper_traces(
        uniform_stack.spec.canvas_width, uniform_stack.spec.canvas_height
    )


@pytest.fixture(scope="session")
def skewed_traces(skewed_stack):
    return paper_traces(
        skewed_stack.spec.canvas_width, skewed_stack.spec.canvas_height
    )
