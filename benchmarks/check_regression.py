"""CI regression gate over benchmark JSON artifacts.

Compares a freshly produced benchmark artifact (``--json`` output of
``bench_cluster_scaling.py`` / ``bench_replica_failover.py`` /
``bench_rebalance.py``) against a checked-in baseline of the same shape
and **fails (exit 1) when a metric regresses by more than the allowed
fraction** — by default ``wall_ms_per_step`` growing more than 50% over
the baseline value.  ``--metric`` accepts several columns at once; each
may carry its own margin as ``name=fraction`` (e.g. ``p99_ms=1.0`` —
tail percentiles are noisier than means, so they get a wider gate).  A
metric missing from either side of a row pair is reported as ``SKIP``
and not gated, so baselines can grow new columns incrementally.

Rows are matched by their identity columns (``--keys``; default: every
non-metric column the two files share, so the gate works for all three
benchmarks unmodified).  Rows present only on one side are reported but
do not fail the gate — a new benchmark cell must be able to land together
with its baseline.

The generous margin exists because baselines are recorded on one machine
and checked on another: the gate is meant to catch *algorithmic*
regressions (a serialised fan-out, an accidental O(n²) merge — those cost
integer multiples), not scheduler noise.

Usage::

    python benchmarks/check_regression.py \
        --current /tmp/bench_rebalance.json \
        --baseline benchmarks/baselines/bench_rebalance.json \
        [--metric wall_ms_per_step p99_ms=1.0] [--max-regression 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Columns never used for row identity (measurements — including
#: deterministic-looking counters like cache hits that still vary run to
#: run — rather than workload coordinates).
METRIC_HINTS = (
    "_ms",
    "_s",
    "_rate",
    "skew",
    "throughput",
    "failover",
    "failure",
    "steps",
    "wall",
    "coalesced",
    "hits",
    "fanout",
    "dups",
    "objects",
)


def load_rows(path: Path) -> list[dict]:
    document = json.loads(path.read_text())
    rows = document.get("rows", document) if isinstance(document, dict) else document
    if not isinstance(rows, list):
        raise SystemExit(f"{path}: expected a row list or {{'rows': [...]}} document")
    return rows


def identity_columns(rows: list[dict], explicit: list[str] | None) -> list[str]:
    if explicit:
        return explicit
    if not rows:
        return []
    return [
        column
        for column in rows[0]
        if not any(hint in column for hint in METRIC_HINTS)
    ]


def row_key(row: dict, columns: list[str]) -> tuple:
    return tuple((column, row.get(column)) for column in columns)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument(
        "--metric",
        nargs="+",
        default=["wall_ms_per_step"],
        help="row columns to gate on (lower is better); each may override "
        "the shared margin as name=fraction (e.g. p99_ms=1.0)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="allowed fractional growth over the baseline (0.5 = +50%%)",
    )
    parser.add_argument(
        "--keys",
        nargs="+",
        default=None,
        help="identity columns matching current rows to baseline rows "
        "(default: every shared non-metric column)",
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="exit 0 even when no rows could be compared (default: a gate "
        "that gated nothing is itself a failure, so a renamed identity "
        "column cannot silently disable it)",
    )
    args = parser.parse_args(argv)

    current_rows = load_rows(args.current)
    baseline_rows = load_rows(args.baseline)
    columns = identity_columns(current_rows, args.keys)
    baseline_by_key = {row_key(row, columns): row for row in baseline_rows}

    metrics: list[tuple[str, float]] = []
    for spec in args.metric:
        name, _, margin = spec.partition("=")
        metrics.append((name, float(margin) if margin else args.max_regression))

    failures: list[str] = []
    compared = 0
    for row in current_rows:
        key = row_key(row, columns)
        baseline = baseline_by_key.pop(key, None)
        label = ", ".join(f"{name}={value}" for name, value in key) or "<all rows>"
        if baseline is None:
            print(f"NEW       {label}: no baseline row (not gated)")
            continue
        for metric, max_regression in metrics:
            current_value = row.get(metric)
            baseline_value = baseline.get(metric)
            if current_value is None or baseline_value is None:
                print(f"SKIP      {label}: metric {metric!r} missing")
                continue
            compared += 1
            limit = baseline_value * (1.0 + max_regression)
            status = "OK"
            if current_value > limit:
                status = "REGRESSED"
                failures.append(
                    f"{label}: {metric} {current_value} > "
                    f"{limit:.3f} (baseline {baseline_value} "
                    f"+{max_regression:.0%})"
                )
            print(
                f"{status:<9} {label}: {metric} {current_value} "
                f"(baseline {baseline_value}, limit {limit:.3f})"
            )
    for key in baseline_by_key:
        label = ", ".join(f"{name}={value}" for name, value in key)
        print(f"GONE      {label}: baseline row has no current match")

    if not compared and not failures:
        print(
            "error: no rows were compared — identity columns or the metric "
            "do not line up between current and baseline (refresh the "
            "baseline, or pass --allow-empty to waive the gate once)"
        )
        if not args.allow_empty:
            return 1
    if failures:
        print(f"\n{len(failures)} regression(s) beyond the allowed margin:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\n{compared} row(s) within the allowed margin.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
