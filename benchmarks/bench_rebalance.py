"""Online rebalance under a skewed pan workload: tail latency and load spread.

Builds a sharded cluster over the *Skewed* dots dataset
(``repro.bench.experiments`` workloads) with a deliberately static grid
partitioning, replays a hotspot pan trace — every viewport confined to one
shard's region, the "everyone pans over Manhattan" traffic shape — and
then performs an online load-driven rebalance
(:class:`repro.cluster.rebalancer.LoadRebalancer`) and replays the same
trace again.  Per cell (2/4 shards × threads/processes workers) it
reports:

* ``skew_before`` / ``skew_after`` — max/mean per-shard request load on
  the hotspot trace (1.0 is perfect balance; the static grid pins the
  whole trace to one shard, so before ≈ shard count).
* ``p50_ms`` / ``p99_ms`` (before and after) — measured wall-clock
  percentiles per request.
* ``wall_ms_per_step`` — measured mean wall-clock per request after the
  rebalance (the regression-gate metric).
* ``build_ms`` / ``drain_ms`` — how long the new shard set took to build
  beside the serving one, and how long the swap + old-generation drain
  took (requests keep flowing through both).

Run directly::

    python benchmarks/bench_rebalance.py                  # smoke scale
    python benchmarks/bench_rebalance.py --quick          # CI-sized
    python benchmarks/bench_rebalance.py --json out.json  # machine-readable

or through pytest (rebalance must strictly improve the load spread)::

    PYTHONPATH=src python -m pytest benchmarks/bench_rebalance.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.experiments import build_stack, hotspot_box_requests  # noqa: E402
from repro.cluster import build_cluster  # noqa: E402
from repro.net.protocol import DataRequest  # noqa: E402


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (nearest-rank, 0.0-1.0)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class RebalanceBenchResult:
    """One (shards, workers) cell, before and after the online rebalance."""

    dataset: str
    shard_count: int
    workers: str
    steps: int
    skew_before: float
    skew_after: float
    p50_before_ms: float
    p99_before_ms: float
    p50_after_ms: float
    p99_after_ms: float
    wall_ms_per_step: float
    build_ms: float
    drain_ms: float
    per_shard_before: dict[int, int]
    per_shard_after: dict[int, int]

    def row(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "shards": self.shard_count,
            "workers": self.workers,
            "steps": self.steps,
            "skew_before": round(self.skew_before, 3),
            "skew_after": round(self.skew_after, 3),
            "p50_before_ms": round(self.p50_before_ms, 3),
            "p99_before_ms": round(self.p99_before_ms, 3),
            "p50_after_ms": round(self.p50_after_ms, 3),
            "p99_after_ms": round(self.p99_after_ms, 3),
            "wall_ms_per_step": round(self.wall_ms_per_step, 3),
            "build_ms": round(self.build_ms, 3),
            "drain_ms": round(self.drain_ms, 3),
        }


def _replay(router, requests: list[DataRequest]) -> list[float]:
    """Replay the trace cold (cache cleared), returning per-request ms."""
    router.cache.clear()
    latencies_ms: list[float] = []
    for request in requests:
        started = time.perf_counter()
        router.handle(request)
        latencies_ms.append((time.perf_counter() - started) * 1000.0)
    return latencies_ms


def run_cell(
    source_backend, shard_count: int, worker_mode: str, steps: int
) -> RebalanceBenchResult:
    cluster = build_cluster(
        source_backend,
        shard_count=shard_count,
        strategy="grid",
        worker_mode=worker_mode,
        rebalance=True,
    )
    try:
        router = cluster.router
        rebalancer = cluster.rebalancer
        compiled = source_backend.compiled
        canvas_id = next(iter(cluster.partitionings))
        region = cluster.partitionings[canvas_id].region(0).rect
        requests = hotspot_box_requests(
            compiled.app_name, canvas_id, 0, region, steps=steps
        )

        before_ms = _replay(router, requests)
        skew_before = rebalancer.skew()
        per_shard_before = rebalancer.shard_loads()

        report = rebalancer.rebalance()
        assert report.swapped, f"rebalance declined: {report.reason}"

        router.stats.reset()
        after_ms = _replay(router, requests)
        skew_after = rebalancer.skew()
        per_shard_after = rebalancer.shard_loads()

        return RebalanceBenchResult(
            dataset="skewed",
            shard_count=shard_count,
            workers=worker_mode,
            steps=len(requests),
            skew_before=skew_before,
            skew_after=skew_after,
            p50_before_ms=percentile(before_ms, 0.50),
            p99_before_ms=percentile(before_ms, 0.99),
            p50_after_ms=percentile(after_ms, 0.50),
            p99_after_ms=percentile(after_ms, 0.99),
            wall_ms_per_step=sum(after_ms) / len(after_ms) if after_ms else 0.0,
            build_ms=report.build_ms,
            drain_ms=report.drain_ms,
            per_shard_before=per_shard_before,
            per_shard_after=per_shard_after,
        )
    finally:
        cluster.close()


def _print_table(results: list[RebalanceBenchResult]) -> None:
    rows = [result.row() for result in results]
    if not rows:
        print("no results")
        return
    headers = list(rows[0].keys())
    widths = {
        header: max(len(header), *(len(str(row[header])) for row in rows))
        for header in headers
    }
    line = "  ".join(header.ljust(widths[header]) for header in headers)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(row[header]).ljust(widths[header]) for header in headers))


def _print_load_spread(results: list[RebalanceBenchResult]) -> None:
    print("\nper-shard hotspot load (requests per shard, before -> after):")
    for result in results:
        before = [
            result.per_shard_before.get(i, 0) for i in range(result.shard_count)
        ]
        after = [
            result.per_shard_after.get(i, 0) for i in range(result.shard_count)
        ]
        print(
            f"  {result.workers} @ {result.shard_count} shards: "
            f"{before} -> {after}"
        )


def main(argv: list[str] | None = None) -> list[RebalanceBenchResult]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("tiny", "smoke", "bench"),
        help="skewed-dataset scale (see repro.bench.experiments)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=(2, 4), help="shard counts"
    )
    parser.add_argument(
        "--workers",
        nargs="+",
        default=("threads", "processes"),
        choices=("threads", "processes"),
        help="shard execution topologies to measure",
    )
    parser.add_argument("--steps", type=int, default=160, help="pan steps per cell")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny scale, 2 shards, threads only, short trace",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the result rows as a JSON artifact",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = "tiny"
        args.shards = (2,)
        args.workers = ("threads",)
        args.steps = 80

    stack = build_stack("skewed", scale=args.scale, tile_sizes=())
    results = [
        run_cell(stack.backend, shard_count, worker_mode, args.steps)
        for worker_mode in args.workers
        for shard_count in args.shards
    ]
    _print_table(results)
    _print_load_spread(results)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_rebalance",
                    "rows": [result.row() for result in results],
                },
                indent=2,
                sort_keys=True,
            )
        )
        print(f"\nwrote {args.json}")
    return results


def test_rebalance_improves_load_spread():
    """pytest entry point: the rebalance must strictly improve the skew
    and keep serving the identical trace (steps all answered)."""
    results = main(["--quick"])
    assert results
    for result in results:
        assert result.steps > 0
        # The static grid pins the hotspot to one shard: maximal skew.
        assert result.skew_before > result.skew_after, (
            f"rebalance did not improve balance at {result.shard_count} "
            f"shards: {result.skew_before:.3f} -> {result.skew_after:.3f}"
        )
        # The hotspot now spreads over more than one shard.
        hot_after = sum(1 for count in result.per_shard_after.values() if count)
        assert hot_after >= 2
        assert result.p99_after_ms >= result.p50_after_ms >= 0.0


if __name__ == "__main__":
    main()
