"""Figure 6: average response time per fetching scheme on the Uniform dataset.

Each benchmark replays one viewport-movement trace (Figure 5's a, b or c)
with one of the eight fetching schemes of Section 3.3 and reports the
*average response time per pan step* — the quantity on the y-axis of
Figure 6.  The pytest-benchmark table therefore reads as the figure's bars:
one row per (scheme, trace) pair.

Run with::

    pytest benchmarks/bench_figure6_uniform.py --benchmark-only
    REPRO_BENCH_SCALE=bench pytest benchmarks/bench_figure6_uniform.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_scheme_on_trace
from repro.server.schemes import paper_schemes

SCHEMES = {scheme.name: scheme for scheme in paper_schemes()}


@pytest.mark.parametrize("trace_name", ["a", "b", "c"])
@pytest.mark.parametrize("scheme_name", list(SCHEMES))
def test_figure6_response_time(benchmark, uniform_stack, uniform_traces, scheme_name, trace_name):
    """One bar of Figure 6: ``scheme_name`` on trace ``trace_name``."""
    scheme = SCHEMES[scheme_name]
    trace = uniform_traces[trace_name]

    def run_once():
        result = run_scheme_on_trace(uniform_stack, scheme, trace)
        return result.average_response_ms

    average_ms = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = "uniform"
    benchmark.extra_info["scheme"] = scheme_name
    benchmark.extra_info["trace"] = trace_name
    benchmark.extra_info["avg_response_ms_per_step"] = round(average_ms, 2)
    # Sanity: every scheme must stay within the paper's interactivity budget
    # at reproduction scale.
    assert average_ms < 500.0
