"""Replica failover under injected faults: tail latency and success rate.

Builds a sharded dots cluster at 2/4 shards × 1/2/3 replicas, injects a
dead replica 0 into **every** shard through the first-class fault seam
(``repro.serving.faults``), replays a diagonal pan trace of dynamic-box
requests, and reports:

* ``success_rate`` — fraction of requests answered despite the dead
  replicas.  With one replica per shard the dead copy *is* the shard, so
  the cluster is down; from two replicas up, failover masks the outage
  completely.
* ``p50_ms`` / ``p95_ms`` — measured wall-clock percentiles per request
  (the failover detour is visible in the tail, not the median).
* ``failovers`` / ``replica0_failures`` — how much failover work the
  replica layer did, straight from its attribution counters.

Run directly::

    python benchmarks/bench_replica_failover.py             # default scale
    python benchmarks/bench_replica_failover.py --steps 5   # CI smoke

or through pytest (failover must fully mask the dead replicas)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replica_failover.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.apps import build_dots_backend, default_config  # noqa: E402
from repro.cluster import build_cluster  # noqa: E402
from repro.datagen.synthetic import tiny_spec  # noqa: E402
from repro.errors import AllReplicasFailedError  # noqa: E402
from repro.metrics.collector import summarize  # noqa: E402
from repro.net.protocol import DataRequest  # noqa: E402
from repro.serving import (  # noqa: E402
    REPLICA_POLICIES,
    FaultInjectingService,
    FaultSchedule,
    fault_replica,
)


@dataclass
class FailoverResult:
    """One cell of the shards × replicas grid."""

    shard_count: int
    replicas: int
    policy: str
    steps: int
    succeeded: int
    failovers: int
    replica0_failures: int
    p50_ms: float
    p95_ms: float
    #: Mean measured wall-clock per answered request (the regression-gate
    #: metric shared with the other cluster benchmarks).
    wall_ms_per_step: float = 0.0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.steps if self.steps else 0.0

    def row(self) -> dict[str, object]:
        return {
            "shards": self.shard_count,
            "replicas": self.replicas,
            "policy": self.policy,
            "steps": self.steps,
            "success_rate": f"{self.success_rate:.2f}",
            "p50_ms": f"{self.p50_ms:.3f}",
            "p95_ms": f"{self.p95_ms:.3f}",
            "failovers": self.failovers,
            "replica0_failures": self.replica0_failures,
        }

    def json_row(self) -> dict[str, object]:
        """Numeric row for the JSON artifact (regression-gate friendly)."""
        return {
            "shards": self.shard_count,
            "replicas": self.replicas,
            "policy": self.policy,
            "steps": self.steps,
            "success_rate": round(self.success_rate, 4),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "wall_ms_per_step": round(self.wall_ms_per_step, 3),
            "failovers": self.failovers,
            "replica0_failures": self.replica0_failures,
        }


def _pan_trace(compiled, app_name: str, steps: int) -> list[DataRequest]:
    """A diagonal pan of viewport-sized boxes wrapping across the canvas."""
    plan = compiled.canvas_plan("dots")
    box_w, box_h = plan.width / 2.0, plan.height / 2.0
    requests = []
    for step in range(steps):
        x = (step * plan.width / 16.0) % (plan.width - box_w)
        y = (step * plan.height / 23.0) % (plan.height - box_h)
        requests.append(
            DataRequest(
                app_name=app_name, canvas_id="dots", layer_index=0,
                granularity="box", xmin=x, ymin=y, xmax=x + box_w, ymax=y + box_h,
            )
        )
    return requests


def run_cell(
    source_backend, shard_count: int, replicas: int, policy: str, steps: int
) -> FailoverResult:
    cluster = build_cluster(
        source_backend,
        shard_count=shard_count,
        replicas=replicas,
        replica_policy=policy,
    )
    try:
        if replicas > 1:
            for layer in cluster.router.replica_sets().values():
                fault_replica(layer, 0, FaultSchedule.fail_always())
        else:
            # One copy per shard: the dead replica IS the shard.
            for shard in cluster.shards:
                shard.service = FaultInjectingService(
                    shard.service, FaultSchedule.fail_always()
                )
        requests = _pan_trace(
            source_backend.compiled, source_backend.compiled.app_name, steps
        )
        latencies_ms: list[float] = []
        succeeded = 0
        for request in requests:
            start = time.perf_counter()
            try:
                cluster.router.handle(request)
            except AllReplicasFailedError:
                continue
            except Exception:  # replicas=1: the injected fault surfaces raw
                continue
            latencies_ms.append((time.perf_counter() - start) * 1000.0)
            succeeded += 1
        failovers = 0
        replica0_failures = 0
        for layer in cluster.router.replica_sets().values():
            failovers += layer.stats.failovers
            replica0_failures += layer.stats.failures_for(0)
        stats = summarize(latencies_ms) if latencies_ms else None
        return FailoverResult(
            shard_count=shard_count,
            replicas=replicas,
            policy=policy,
            steps=len(requests),
            succeeded=succeeded,
            failovers=failovers,
            replica0_failures=replica0_failures,
            p50_ms=stats.median if stats else 0.0,
            p95_ms=stats.p95 if stats else 0.0,
            wall_ms_per_step=(
                sum(latencies_ms) / len(latencies_ms) if latencies_ms else 0.0
            ),
        )
    finally:
        cluster.close()


def _print_table(results: list[FailoverResult]) -> None:
    rows = [result.row() for result in results]
    if not rows:
        print("no results")
        return
    headers = list(rows[0].keys())
    widths = {
        header: max(len(header), *(len(str(row[header])) for row in rows))
        for header in headers
    }
    line = "  ".join(header.ljust(widths[header]) for header in headers)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(row[header]).ljust(widths[header]) for header in headers))


def main(argv: list[str] | None = None) -> list[FailoverResult]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=40, help="pan steps per cell")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=(2, 4), help="shard counts"
    )
    parser.add_argument(
        "--replicas", type=int, nargs="+", default=(1, 2, 3),
        help="replicas per shard",
    )
    parser.add_argument(
        "--policy", default="least_inflight",
        choices=REPLICA_POLICIES,
    )
    parser.add_argument(
        "--points", type=int, default=4_000, help="synthetic dataset size"
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the result rows as a JSON artifact",
    )
    args = parser.parse_args(argv)

    stack = build_dots_backend(
        tiny_spec("uniform", num_points=args.points, seed=11),
        config=default_config(viewport=512),
    )
    results = [
        run_cell(stack.backend, shard_count, replicas, args.policy, args.steps)
        for shard_count in args.shards
        for replicas in args.replicas
    ]
    _print_table(results)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_replica_failover",
                    "rows": [result.json_row() for result in results],
                },
                indent=2,
                sort_keys=True,
            )
        )
        print(f"\nwrote {args.json}")
    return results


def test_replica_failover_smoke():
    """pytest entry point: failover fully masks dead replicas, no-replica
    clusters are down, and every failure is attributed."""
    results = main(["--steps", "8"])
    assert results
    for result in results:
        if result.replicas == 1:
            # The dead copy is the only copy: the shard (and with faults on
            # every shard, the cluster) cannot answer.
            assert result.success_rate == 0.0
        else:
            assert result.success_rate == 1.0, (
                f"failover left requests unanswered at {result.shard_count} "
                f"shards x {result.replicas} replicas"
            )
            assert result.replica0_failures > 0
            assert result.failovers > 0


if __name__ == "__main__":
    main()
