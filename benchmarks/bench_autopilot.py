"""Autopilot convergence under a skew-shifting hotspot: does it self-heal?

Builds a sharded cluster over the *Skewed* dots dataset with a static grid
partitioning and replays a **moving** hotspot: several epochs of traffic
confined to one fixed region of the canvas, then the hotspot jumps to the
opposite region mid-run (the "everyone pans over Manhattan, then a storm
hits Boston" traffic shape).  Each epoch is replayed by ``CLIENTS``
concurrent sessions.  One run drives a
:class:`repro.cluster.autopilot.ClusterAutopilot` between epochs (on a
virtual clock, so every epoch is a full cooldown window); a control run
serves the identical schedule with no autopilot.  Per cell (shards ×
threads/processes) it reports:

* ``migrations`` — shard-table swaps the autopilot performed across the
  whole run.  Hysteresis must keep this *bounded* (a couple per hotspot
  location, not one per epoch): the expected shape is one split for the
  first hotspot, one reactive split right after the shift (driven by a
  histogram the old hotspot still dominates), and one ``rearm_windows``
  retry that lands the boundary inside the new hotspot.
* ``skew_shift`` / ``skew_end`` — per-epoch max/mean shard load right
  after the hotspot jumps vs. at the end of the run: convergence means
  the autopilot re-splits the new hotspot and skew falls back toward 1.
  **Skew is the primary convergence signal** — it is what maps to tail
  latency once shards live on separate nodes.
* ``skew_static_end`` — the control run's final skew (stays pinned at the
  shard count: a static partitioning never recovers on its own).
* ``p50_shift_ms`` / ``p50_end_ms`` — median request latency in the epoch
  right after the shift (every session piled onto one cold shard) vs. the
  final epoch (warm, re-split, settled).  The median must fall; it is the
  robust statistic this bench gates on.
* ``p99_shift_ms`` / ``p99_end_ms`` — same epochs, 99th percentile.
  Reported but **not** gated: with every shard in one process the tail
  measures GIL scheduling and fan-out overhead, not queueing — the
  serving-side p99 payoff of a re-split only exists once shards stop
  sharing a core.
* ``wall_ms_per_step`` — mean wall-clock per request in the final epoch
  (the regression-gate metric).
* ``parity_violations`` — probe requests whose payload bytes ever
  differed from the pre-run baseline (must be zero: migrations and
  repairs may never change served bytes).

Run directly::

    python benchmarks/bench_autopilot.py                  # smoke scale
    python benchmarks/bench_autopilot.py --quick          # CI-sized
    python benchmarks/bench_autopilot.py --json out.json  # machine-readable

or through pytest (bounded migrations, recovered skew, falling median
latency, zero parity violations)::

    PYTHONPATH=src python -m pytest benchmarks/bench_autopilot.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.experiments import build_stack, hotspot_box_requests  # noqa: E402
from repro.cluster import ClusterAutopilot, LoadRebalancer, build_cluster  # noqa: E402
from repro.metrics.timer import VirtualClock  # noqa: E402
from repro.net.protocol import DataRequest  # noqa: E402

#: The skew trigger the autopilot runs with here.  The default threshold
#: (2.0) is the *theoretical maximum* for a two-shard cluster — reachable
#: only when every single request hits one shard.  The parity probes are
#: deliberately balanced background traffic, so the measured skew tops out
#: just below the maximum; an operator facing real mixed traffic tunes
#: the trigger below the ceiling exactly like this.
SKEW_TRIGGER = 1.6

#: Concurrent replay sessions per epoch — concurrency is what makes a
#: hotspot hurt (sessions pile up behind the hot shard's serialised
#: stack).  The scatter pool is sized for ``CLIENTS`` simultaneous
#: fan-outs (see ``main``), not for one scatter at a time.
CLIENTS = 8


def percentile(values: list[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (nearest-rank, 0.0-1.0)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def payload_bytes(response) -> bytes:
    return json.dumps(response.objects, sort_keys=True).encode("utf-8")


@dataclass
class AutopilotBenchResult:
    """One (shards, workers) cell of the skew-shifting hotspot run."""

    dataset: str
    shard_count: int
    workers: str
    steps: int
    epochs: int
    migrations: int
    skew_shift: float
    skew_end: float
    skew_static_end: float
    p50_shift_ms: float
    p50_end_ms: float
    p99_shift_ms: float
    p99_end_ms: float
    wall_ms_per_step: float
    parity_violations: int

    def row(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "shards": self.shard_count,
            "workers": self.workers,
            "steps": self.steps,
            "epochs": self.epochs,
            "migrations": self.migrations,
            "skew_shift": round(self.skew_shift, 3),
            "skew_end": round(self.skew_end, 3),
            "skew_static_end": round(self.skew_static_end, 3),
            "p50_shift_ms": round(self.p50_shift_ms, 3),
            "p50_end_ms": round(self.p50_end_ms, 3),
            "p99_shift_ms": round(self.p99_shift_ms, 3),
            "p99_end_ms": round(self.p99_end_ms, 3),
            "wall_ms_per_step": round(self.wall_ms_per_step, 3),
            "parity_violations": self.parity_violations,
        }


def _replay(
    router, requests: list[DataRequest], *, clients: int = CLIENTS
) -> list[float]:
    """Replay the trace cold with ``clients`` concurrent sessions.

    The cache is cleared once up front (every pan step is a distinct
    box, so each request scatters and counts).  Concurrency is what
    makes a hotspot *hurt*: a hot shard serialises its clients behind
    one shard lock, so per-request p99 rises with skew — and falls once
    a re-split spreads the sessions across shards.
    """
    router.cache.clear()

    def timed(request: DataRequest) -> float:
        started = time.perf_counter()
        router.handle(request)
        return (time.perf_counter() - started) * 1000.0

    with ThreadPoolExecutor(max_workers=clients) as pool:
        return list(pool.map(timed, requests))


def _epoch_skew(loads_before: dict[int, int], loads_after: dict[int, int]) -> float:
    """max/mean of this epoch's per-shard traffic (swap-aware diff)."""
    if any(loads_after.get(k, 0) < v for k, v in loads_before.items()):
        window = dict(loads_after)  # a swap cleared the counters mid-epoch
    else:
        window = {
            k: v - loads_before.get(k, 0) for k, v in loads_after.items()
        }
    total = sum(window.values())
    if not window or total <= 0:
        return 1.0
    return max(window.values()) / (total / len(window))


def _shift_schedule(cluster, canvas_id: str) -> tuple:
    """The two fixed hotspot rectangles: first and last initial region."""
    partitioning = cluster.partitionings[canvas_id]
    return (
        partitioning.region(0).rect,
        partitioning.region(partitioning.shard_count - 1).rect,
    )


def run_cell(
    source_backend,
    shard_count: int,
    worker_mode: str,
    steps: int,
    epochs: int,
) -> AutopilotBenchResult:
    compiled = source_backend.compiled
    app_name = compiled.app_name

    def run(with_autopilot: bool):
        cluster = build_cluster(
            source_backend,
            shard_count=shard_count,
            strategy="grid",
            worker_mode=worker_mode,
            rebalance=True,
        )
        clock = VirtualClock()
        autopilot = (
            ClusterAutopilot(
                cluster,
                clock=clock,
                rebalancer=LoadRebalancer(cluster, skew_threshold=SKEW_TRIGGER),
            )
            if with_autopilot
            else None
        )
        try:
            canvas_id = next(iter(cluster.partitionings))
            region_a, region_b = _shift_schedule(cluster, canvas_id)
            # Probes span the whole canvas; their payloads are the byte
            # parity baseline re-checked after every epoch.
            probes = hotspot_box_requests(
                app_name, canvas_id, 0, region_a, steps=4
            ) + hotspot_box_requests(app_name, canvas_id, 0, region_b, steps=4)
            cluster.router.cache.clear()
            baseline = [
                payload_bytes(cluster.router.handle(p)) for p in probes
            ]
            violations = 0
            epoch_p50: list[float] = []
            epoch_p99: list[float] = []
            epoch_skew: list[float] = []
            shift_index = epochs  # first epoch served from region B

            for index in range(epochs * 2):
                region = region_a if index < epochs else region_b
                trace = hotspot_box_requests(
                    app_name, canvas_id, 0, region, steps=steps
                )
                loads_before = dict(cluster.rebalancer.shard_loads())
                latencies = _replay(cluster.router, trace)
                loads_after = dict(cluster.rebalancer.shard_loads())
                epoch_p50.append(percentile(latencies, 0.50))
                epoch_p99.append(percentile(latencies, 0.99))
                epoch_skew.append(_epoch_skew(loads_before, loads_after))
                if autopilot is not None:
                    autopilot.tick()
                    clock.advance(autopilot.config.cooldown_s * 1000.0 + 1.0)
                cluster.router.cache.clear()
                for probe, expected in zip(probes, baseline):
                    if payload_bytes(cluster.router.handle(probe)) != expected:
                        violations += 1

            migrations = 0
            if autopilot is not None:
                migrations = sum(
                    1
                    for action in autopilot.actions
                    if action.report is not None and action.report.swapped
                )
            return {
                "p50_shift": epoch_p50[shift_index],
                "p50_end": epoch_p50[-1],
                "p99_shift": epoch_p99[shift_index],
                "p99_end": epoch_p99[-1],
                "skew_shift": epoch_skew[shift_index],
                "skew_end": epoch_skew[-1],
                "violations": violations,
                "migrations": migrations,
                "final_latencies": latencies,
            }
        finally:
            cluster.close()

    piloted = run(with_autopilot=True)
    static = run(with_autopilot=False)
    final = piloted["final_latencies"]
    return AutopilotBenchResult(
        dataset="skewed",
        shard_count=shard_count,
        workers=worker_mode,
        steps=steps,
        epochs=epochs,
        migrations=piloted["migrations"],
        skew_shift=piloted["skew_shift"],
        skew_end=piloted["skew_end"],
        skew_static_end=static["skew_end"],
        p50_shift_ms=piloted["p50_shift"],
        p50_end_ms=piloted["p50_end"],
        p99_shift_ms=piloted["p99_shift"],
        p99_end_ms=piloted["p99_end"],
        wall_ms_per_step=sum(final) / len(final) if final else 0.0,
        parity_violations=piloted["violations"] + static["violations"],
    )


def _print_table(results: list[AutopilotBenchResult]) -> None:
    rows = [result.row() for result in results]
    if not rows:
        print("no results")
        return
    headers = list(rows[0].keys())
    widths = {
        header: max(len(header), *(len(str(row[header])) for row in rows))
        for header in headers
    }
    line = "  ".join(header.ljust(widths[header]) for header in headers)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(row[header]).ljust(widths[header]) for header in headers))


def main(argv: list[str] | None = None) -> list[AutopilotBenchResult]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("tiny", "smoke", "bench"),
        help="skewed-dataset scale (see repro.bench.experiments)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=(2,), help="shard counts"
    )
    parser.add_argument(
        "--workers",
        nargs="+",
        default=("threads", "processes"),
        choices=("threads", "processes"),
        help="shard execution topologies to measure",
    )
    parser.add_argument(
        "--steps", type=int, default=120, help="pan steps per epoch"
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=5,
        help="epochs per hotspot location (the hotspot shifts once); needs "
        "to leave room for the rearm_windows retry plus a settled epoch",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny scale, 2 shards, threads only, short trace",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the result rows as a JSON artifact",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = "smoke"
        args.shards = (2,)
        args.workers = ("threads",)
        args.steps = 80
        args.epochs = 5

    stack = build_stack("skewed", scale=args.scale, tile_sizes=())
    # Size the scatter pool for CLIENTS concurrent sessions each fanning
    # out, not for one scatter at a time — otherwise the pool itself is
    # the bottleneck and every latency column measures queue convoy.
    stack.backend.config.cluster.max_parallel_shards = CLIENTS * 2
    results = [
        run_cell(stack.backend, shard_count, worker_mode, args.steps, args.epochs)
        for worker_mode in args.workers
        for shard_count in args.shards
    ]
    _print_table(results)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_autopilot",
                    "rows": [result.row() for result in results],
                },
                indent=2,
                sort_keys=True,
            )
        )
        print(f"\nwrote {args.json}")
    return results


def test_autopilot_converges_on_shifting_hotspot():
    """pytest entry point: the autopilot must converge on each hotspot
    location with a bounded number of migrations, recover the load skew
    the static control run never recovers, serve the shifted hotspot
    faster once settled than in the epoch it landed, and serve
    byte-identical payloads throughout."""
    results = main(["--quick"])
    assert results
    for result in results:
        # Migrations are bounded by cooldown + hysteresis: a couple per
        # hotspot location (split A, reactive split at the shift, rearm
        # retry that lands it), never one per epoch.
        assert 2 <= result.migrations <= 5, result.row()
        # Convergence: skew right after the shift is hotspot-shaped; by
        # the final epoch the autopilot has re-split it away, while the
        # static control run stays pinned at maximal skew.
        assert result.skew_end < result.skew_shift, result.row()
        assert result.skew_end < result.skew_static_end, result.row()
        assert result.skew_static_end >= float(result.shard_count) - 0.01
        # Median latency falls once the re-split settles (p99 is reported
        # but not gated — see the module docstring).
        assert result.p50_end_ms < result.p50_shift_ms, result.row()
        # The law: migrations never change served bytes.
        assert result.parity_violations == 0, result.row()
        assert result.p99_end_ms >= 0.0 and result.p99_shift_ms >= 0.0


if __name__ == "__main__":
    main()
