"""Ablation E7: caching and momentum prefetching on top of dynamic boxes.

Section 3.1 notes Kyrix keeps a frontend and a backend cache; Section 4
plans momentum-based prefetching for dynamic boxes.  This benchmark measures
a back-and-forth pan trace under three variants: caches off, caches on, and
caches plus momentum prefetching.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import prefetch_cache_ablation

VARIANTS = ("no-cache", "cache", "cache+momentum")


@pytest.mark.parametrize("variant", VARIANTS)
def test_cache_prefetch_variant(benchmark, uniform_stack, variant):
    def run_once():
        results = prefetch_cache_ablation(stack=uniform_stack, trace_name="a")
        return {r.variant: r for r in results}[variant]

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["avg_response_ms_per_step"] = round(result.average_response_ms, 2)
    benchmark.extra_info["cache_hit_rate"] = round(result.cache_hit_rate, 3)
    benchmark.extra_info["prefetch_requests"] = result.prefetch_requests
    assert result.average_response_ms < 500.0


def test_prefetching_issues_requests_and_caching_hits(uniform_stack):
    results = {r.variant: r for r in prefetch_cache_ablation(stack=uniform_stack)}
    assert results["cache+momentum"].prefetch_requests > 0
    assert results["cache"].cache_hit_rate >= results["no-cache"].cache_hit_rate
