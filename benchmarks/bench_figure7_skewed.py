"""Figure 7: average response time per fetching scheme on the Skewed dataset.

Identical measurement loop to Figure 6 but over the Skewed dataset (80 % of
the dots in 20 % of the canvas area), where the paper expects dynamic boxes
to widen their lead because they "can adjust their sizes and locations based
on data sparsity".
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_scheme_on_trace
from repro.server.schemes import paper_schemes

SCHEMES = {scheme.name: scheme for scheme in paper_schemes()}


@pytest.mark.parametrize("trace_name", ["a", "b", "c"])
@pytest.mark.parametrize("scheme_name", list(SCHEMES))
def test_figure7_response_time(benchmark, skewed_stack, skewed_traces, scheme_name, trace_name):
    """One bar of Figure 7: ``scheme_name`` on trace ``trace_name``."""
    scheme = SCHEMES[scheme_name]
    trace = skewed_traces[trace_name]

    def run_once():
        result = run_scheme_on_trace(skewed_stack, scheme, trace)
        return result.average_response_ms

    average_ms = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = "skewed"
    benchmark.extra_info["scheme"] = scheme_name
    benchmark.extra_info["trace"] = trace_name
    benchmark.extra_info["avg_response_ms_per_step"] = round(average_ms, 2)
    assert average_ms < 500.0


def test_figure7_dbox_beats_every_tile_scheme_overall(skewed_stack, skewed_traces):
    """The headline claim of the figure, checked once without timing."""
    from repro.bench.harness import run_experiment

    experiment = run_experiment(
        skewed_stack, list(SCHEMES.values()), list(skewed_traces.values()), name="figure7"
    )
    dbox_mean = experiment.scheme_average("dbox")
    for scheme_name in SCHEMES:
        if scheme_name.startswith("tile"):
            assert dbox_mean < experiment.scheme_average(scheme_name)
