"""Ablation E6: the two database designs of Section 3.1 at a fixed tile size.

Compares answering 1024-pixel tile requests through the spatial design (bbox
column + R-tree probe) against the tuple–tile mapping design (B-tree lookup
on ``tile_id`` joined to the record table on ``tuple_id``).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_scheme_on_trace
from repro.server.schemes import tile_mapping_scheme, tile_spatial_scheme

TILE_SIZE = 1024
DESIGNS = {
    "spatial": tile_spatial_scheme(TILE_SIZE),
    "mapping": tile_mapping_scheme(TILE_SIZE),
}


@pytest.mark.parametrize("trace_name", ["a", "b", "c"])
@pytest.mark.parametrize("design", list(DESIGNS))
def test_database_design(benchmark, uniform_stack, uniform_traces, design, trace_name):
    scheme = DESIGNS[design]
    trace = uniform_traces[trace_name]

    def run_once():
        return run_scheme_on_trace(uniform_stack, scheme, trace).average_response_ms

    average_ms = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["design"] = design
    benchmark.extra_info["trace"] = trace_name
    benchmark.extra_info["avg_response_ms_per_step"] = round(average_ms, 2)
    assert average_ms < 500.0
