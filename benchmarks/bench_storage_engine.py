"""Experiment E9: storage-engine microbenchmarks.

Raw access-path costs of the embedded engine that stands in for PostgreSQL:
B-tree point lookups, R-tree intersection probes, heap scans and mini-SQL
query execution.  These are the terms the fetching-scheme results are built
out of; tracking them separately makes regressions attributable.
"""

from __future__ import annotations

import random

import pytest

from repro.minisql import SQLEngine
from repro.storage import BTreeIndex, Database, HashIndex, RecordId, Rect, RTreeIndex

N_ROWS = 20_000


@pytest.fixture(scope="module")
def loaded_database():
    database = Database()
    engine = SQLEngine(database)
    table = database.create_table(
        "dots", [("tuple_id", "int"), ("x", "float"), ("y", "float"), ("bbox", "bbox")]
    )
    rng = random.Random(0)
    rows = []
    for i in range(N_ROWS):
        x, y = rng.uniform(0, 10_000), rng.uniform(0, 5_000)
        rows.append((i, x, y, (x - 0.5, y - 0.5, x + 0.5, y + 0.5)))
    table.bulk_load(rows)
    table.create_index("dots_id", "tuple_id", "btree", unique=True)
    table.create_index("dots_bbox", "bbox", "rtree")
    return database, engine, table


def test_btree_insert_throughput(benchmark):
    def build():
        index = BTreeIndex("bench")
        for i in range(5_000):
            index.insert(i, RecordId(0, i % 100))
        return index

    index = benchmark(build)
    assert len(index) == 5_000


def test_btree_point_lookup(benchmark, loaded_database):
    _, _, table = loaded_database
    index = table.get_index("dots_id").index
    keys = list(range(0, N_ROWS, 97))

    def lookup():
        return sum(len(index.search(key)) for key in keys)

    assert benchmark(lookup) == len(keys)


def test_hash_point_lookup(benchmark):
    index = HashIndex("bench")
    for i in range(N_ROWS):
        index.insert(i, RecordId(0, i % 100))
    keys = list(range(0, N_ROWS, 97))

    def lookup():
        return sum(len(index.search(key)) for key in keys)

    assert benchmark(lookup) == len(keys)


def test_rtree_bulk_load(benchmark):
    rng = random.Random(1)
    entries = []
    for i in range(N_ROWS):
        x, y = rng.uniform(0, 10_000), rng.uniform(0, 5_000)
        entries.append((Rect(x, y, x + 1, y + 1), RecordId(0, i % 100)))

    def build():
        tree = RTreeIndex("bench")
        tree.bulk_load(entries)
        return tree

    tree = benchmark(build)
    assert len(tree) == N_ROWS


def test_rtree_viewport_probe(benchmark, loaded_database):
    _, _, table = loaded_database
    tree = table.get_index("dots_bbox").index
    query = Rect(4_000, 2_000, 5_024, 3_024)

    def probe():
        return len(tree.search(query))

    hits = benchmark(probe)
    assert hits > 0


def test_heap_full_scan(benchmark, loaded_database):
    _, _, table = loaded_database

    def scan():
        return sum(1 for _ in table.scan_rows())

    assert benchmark(scan) == N_ROWS


def test_sql_spatial_query(benchmark, loaded_database):
    _, engine, _ = loaded_database
    sql = "SELECT tuple_id, x, y FROM dots WHERE intersects(bbox, 4000, 2000, 5024, 3024)"

    def query():
        return len(engine.execute(sql))

    assert benchmark(query) > 0


def test_sql_key_join_query(benchmark, loaded_database):
    database, engine, _ = loaded_database
    if not database.has_table("mapping"):
        mapping = database.create_table("mapping", [("tuple_id", "int"), ("tile_id", "int")])
        mapping.bulk_load([(i, i // 1000) for i in range(N_ROWS)])
        mapping.create_index("mapping_tile", "tile_id", "btree")
        mapping.create_index("mapping_tuple", "tuple_id", "btree")
    sql = (
        "SELECT d.tuple_id FROM mapping m JOIN dots d ON m.tuple_id = d.tuple_id "
        "WHERE m.tile_id = 3"
    )

    def query():
        return len(engine.execute(sql))

    assert benchmark(query) == 1000
