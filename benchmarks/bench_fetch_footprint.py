"""Figure 4 (measured): data fetched and requests issued per granularity.

Figure 4 of the paper is an illustration; this benchmark quantifies it.  For
each trace it counts, per fetching granularity, how many requests are issued
and how much canvas area is fetched relative to what the viewports strictly
need, verifying the paper's three arguments for dynamic boxes:

1. compared to large tiles, dynamic boxes fetch less data,
2. compared to small tiles, dynamic boxes require fewer requests,
3. on skewed data they adapt to sparsity (checked in Figure 7's benches).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import fetch_footprint


@pytest.fixture(scope="module")
def footprint(uniform_stack):
    return fetch_footprint(stack=uniform_stack, tile_sizes=(256, 1024, 4096))


def test_footprint_computation(benchmark, uniform_stack):
    """Time the footprint analysis itself (pure tile/box arithmetic)."""
    results = benchmark(fetch_footprint, stack=uniform_stack, tile_sizes=(256, 1024, 4096))
    assert len(results) == 5 * 3  # five granularities, three traces


def test_dbox_fetches_less_area_than_large_tiles(footprint):
    by_key = {(r.scheme, r.trace): r for r in footprint}
    for trace in ("a", "b", "c"):
        assert by_key[("dbox", trace)].fetched_area < by_key[("tile 4096", trace)].fetched_area


def test_dbox_issues_fewer_requests_than_small_tiles(footprint):
    by_key = {(r.scheme, r.trace): r for r in footprint}
    for trace in ("a", "b", "c"):
        assert by_key[("dbox", trace)].requests < by_key[("tile 256", trace)].requests


def test_overfetch_ratios_ordered_by_tile_size(footprint):
    by_key = {(r.scheme, r.trace): r for r in footprint}
    for trace in ("a", "b", "c"):
        assert (
            by_key[("dbox", trace)].overfetch_ratio
            <= by_key[("tile 1024", trace)].overfetch_ratio
            <= by_key[("tile 4096", trace)].overfetch_ratio
        )
