"""Experiment E10: sharded-cluster scaling under concurrent pan workloads.

Measures throughput (pan steps per second) and per-step latency percentiles
of the scatter-gather cluster at 1/2/4/8 shards, with several concurrent
sessions replaying the Figure 5 traces over the Uniform and Skewed datasets.
Reading the table:

* ``throughput_steps_s`` / ``wall_ms_per_step`` — measured end-to-end
  wall-clock.  Shard queries execute on the router's thread pool
  (``--sequential`` turns that off to measure the old baseline), and each
  shard only searches its own slice of the data, so wall-clock per step
  drops as shards are added.
* ``p50_ms`` / ``p95_ms`` — percentiles of the per-step response-time
  *model* (scatter-gather critical path — slowest shard plus merge — plus
  simulated link time), which the parallel executor makes the measured
  shape of a request too.
* ``sim_query_ms`` — the query component of the same model, isolating the
  database-side speedup from the network term.
* ``wire_bytes_per_step`` — bytes that actually crossed the shard
  transport (payload plus frame headers, both directions) per pan step;
  ``--codec`` picks the shard-boundary wire codec (``auto`` negotiates
  the binary columnar codec with JSON fallback, ``json`` pins the legacy
  envelope), so the codec's byte cut is directly measurable.

Shard calls cross the wire-level transport (`repro.serving.transport`) by
default, exactly like a multi-node deployment; ``--no-wire`` keeps them
in-process.  ``--workers processes`` forks one worker process per shard
replica (`repro.serving.worker`) speaking the same envelope over
length-prefixed frames on localhost TCP — pure-Python shard queries then
execute on real parallel cores instead of time-slicing one GIL.  The
``eeg`` dataset replays time sweeps over a synthetic EEG recording, the
workload whose sessions naturally spread across time-partitioned shards.

Run directly::

    python benchmarks/bench_cluster_scaling.py                      # smoke scale
    python benchmarks/bench_cluster_scaling.py --quick              # CI-sized
    python benchmarks/bench_cluster_scaling.py --datasets eeg \
        --workers processes                                         # multi-core

or through pytest (one scaling assertion per dataset)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_scaling.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.experiments import ClusterScalingResult, cluster_scaling  # noqa: E402


def _print_table(results: list[ClusterScalingResult]) -> None:
    rows = [result.row() for result in results]
    if not rows:
        print("no results")
        return
    # Telemetry runs add per-stage percentile columns that can differ
    # between cells; print the union and leave absent cells blank.
    headers: list[str] = []
    for row in rows:
        for header in row:
            if header not in headers:
                headers.append(header)
    widths = {
        header: max(len(header), *(len(str(row.get(header, ""))) for row in rows))
        for header in headers
    }
    line = "  ".join(header.ljust(widths[header]) for header in headers)
    print(line)
    print("-" * len(line))
    for row in rows:
        print(
            "  ".join(
                str(row.get(header, "")).ljust(widths[header]) for header in headers
            )
        )


def _print_shard_balance(results: list[ClusterScalingResult]) -> None:
    print("\nper-shard request balance (dataset @ shards -> requests per shard):")
    for result in results:
        if result.shard_count == 1:
            continue
        counts = [
            result.per_shard_requests.get(shard_id, 0)
            for shard_id in range(result.shard_count)
        ]
        print(f"  {result.dataset} @ {result.shard_count}: {counts}")


def main(argv: list[str] | None = None) -> list[ClusterScalingResult]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=("tiny", "smoke", "bench"),
        help="dataset scale (see repro.bench.experiments.dataset_for_scale)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=(1, 2, 4, 8),
        help="shard counts to measure",
    )
    parser.add_argument("--sessions", type=int, default=4, help="concurrent sessions")
    parser.add_argument(
        "--strategy", default="grid", choices=("grid", "kd"), help="partitioning strategy"
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=("uniform", "skewed"),
        choices=("uniform", "skewed", "eeg"),
        help="datasets to run (eeg = time sweeps over a synthetic recording)",
    )
    parser.add_argument(
        "--workers",
        default="threads",
        choices=("threads", "processes"),
        help="shard execution topology: in-process threads or worker processes",
    )
    parser.add_argument(
        "--codec",
        default="auto",
        choices=("auto", "json", "binary"),
        help="shard-boundary wire codec: auto negotiates the binary "
        "columnar codec with JSON fallback, json pins the legacy envelope",
    )
    parser.add_argument(
        "--no-coalescing", action="store_true", help="disable request coalescing"
    )
    parser.add_argument(
        "--sequential",
        action="store_true",
        help="execute shard queries sequentially (the pre-parallel baseline)",
    )
    parser.add_argument(
        "--no-wire",
        action="store_true",
        help="call shard backends in-process instead of over the wire transport",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="trace every request and add per-stage percentile columns",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny scale, 1/2 shards, 4 sessions, uniform only",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the result rows as a JSON artifact",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.scale = "tiny"
        args.shards = (1, 2)
        # Four sessions over the three traces: every trace runs and one is
        # shared by two sessions, exercising the coalescer.
        args.sessions = 4
        if tuple(args.datasets) == ("uniform", "skewed"):
            args.datasets = ("uniform",)

    results = cluster_scaling(
        scale=args.scale,
        shard_counts=tuple(args.shards),
        sessions=args.sessions,
        datasets=tuple(args.datasets),
        strategy=args.strategy,
        coalescing=not args.no_coalescing,
        parallel=not args.sequential,
        wire_shards=False if args.no_wire else None,
        worker_mode=args.workers,
        wire_codec=args.codec,
        telemetry=args.telemetry,
    )
    _print_table(results)
    _print_shard_balance(results)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_cluster_scaling",
                    "rows": [result.row() for result in results],
                },
                indent=2,
                sort_keys=True,
            )
        )
        print(f"\nwrote {args.json}")
    return results


def test_cluster_scaling_smoke():
    """pytest entry point: the quick workload runs end-to-end and scales out."""
    results = main(["--quick"])
    assert results, "cluster scaling produced no results"
    for result in results:
        assert result.steps > 0
        assert result.throughput_steps_per_s > 0
        assert result.latency.p95 >= result.latency.median >= 0
    by_shards = {result.shard_count: result for result in results}
    # Sharding must not lose or duplicate data: the sessions replayed the
    # same traces, so they must have received exactly the same object totals.
    assert by_shards[1].objects_fetched > 0
    assert by_shards[1].objects_fetched == by_shards[2].objects_fetched
    # Scaling out must not cost wall-clock: with parallel shard workers and
    # per-shard indexes half the size, the measured wall-clock per step at 2
    # shards stays at or below the single-shard baseline.  The margin covers
    # scheduler noise on shared CI runners (the trend is visible in the
    # printed table; a real regression — e.g. serialising the fan-out —
    # costs far more than 25%).
    assert by_shards[2].measured_step_ms <= by_shards[1].measured_step_ms * 1.25, (
        f"wall-clock per step regressed when scaling out: "
        f"{by_shards[1].measured_step_ms:.3f} ms @ 1 shard -> "
        f"{by_shards[2].measured_step_ms:.3f} ms @ 2 shards"
    )


def test_process_workers_scale_on_eeg():
    """pytest entry point: the process topology scales out on the EEG workload.

    Worker processes must (a) lose no data relative to a single shard,
    (b) keep wall-clock per step from regressing as shards are added (the
    per-shard indexes shrink and, on multi-core hosts, shard queries run on
    separate cores), and (c) on hosts with at least two cores, beat the
    GIL-bound thread topology at 4 shards.  The margins cover scheduler
    noise on shared CI runners; the trend is visible in the printed table.
    """
    import os

    process_results = main(
        ["--scale", "tiny", "--shards", "1", "2", "4", "--datasets", "eeg",
         "--workers", "processes"]
    )
    by_shards = {result.shard_count: result for result in process_results}
    assert by_shards[1].objects_fetched > 0
    assert (
        by_shards[1].objects_fetched
        == by_shards[2].objects_fetched
        == by_shards[4].objects_fetched
    )

    thread_results = main(
        ["--scale", "tiny", "--shards", "4", "--datasets", "eeg",
         "--workers", "threads"]
    )
    threads_at_4 = thread_results[0]
    processes_at_4 = by_shards[4]
    assert threads_at_4.objects_fetched == processes_at_4.objects_fetched
    if (os.cpu_count() or 1) >= 2:
        # The whole point of the topology — but only observable when the
        # host actually has parallel cores.  On a single-core host the
        # worker processes merely context-switch, so these wall-clock
        # assertions would measure the scheduler, not the scatter path
        # (the data-integrity asserts above still run everywhere).
        assert by_shards[2].measured_step_ms <= by_shards[1].measured_step_ms * 1.35, (
            f"process workers regressed when scaling out: "
            f"{by_shards[1].measured_step_ms:.3f} ms @ 1 shard -> "
            f"{by_shards[2].measured_step_ms:.3f} ms @ 2 shards"
        )
        # Margins are generous because the tiny workload keeps per-query
        # work small relative to fork/framing overhead and shared runners
        # are noisy; a real regression (serialising the fan-out, a worker
        # answering through the GIL-bound parent) costs far more.
        assert by_shards[4].measured_step_ms <= by_shards[1].measured_step_ms * 1.35, (
            f"process workers regressed when scaling out: "
            f"{by_shards[1].measured_step_ms:.3f} ms @ 1 shard -> "
            f"{by_shards[4].measured_step_ms:.3f} ms @ 4 shards"
        )
        assert processes_at_4.measured_step_ms <= threads_at_4.measured_step_ms * 1.25, (
            f"process workers slower than threads at 4 shards: "
            f"{processes_at_4.measured_step_ms:.3f} ms vs "
            f"{threads_at_4.measured_step_ms:.3f} ms"
        )


def test_binary_codec_cuts_wire_bytes_on_eeg():
    """pytest entry point: the columnar codec beats JSON on wide EEG rows.

    Byte-identical payloads are asserted elsewhere (the codec parity
    suite); this gate measures the codec's reason to exist — the same EEG
    responses must cost strictly fewer bytes on the wire — and keeps the
    wall-clock per step from regressing (the margin covers scheduler noise
    on shared runners; the cut itself is visible in the printed tables and
    the gated ``wire_bytes_per_step`` artifact column).
    """
    base_args = ["--scale", "tiny", "--shards", "2", "--datasets", "eeg"]
    (via_json,) = main(base_args + ["--codec", "json"])
    (via_binary,) = main(base_args + ["--codec", "binary"])
    assert via_binary.objects_fetched == via_json.objects_fetched > 0
    assert 0 < via_binary.wire_bytes_total < via_json.wire_bytes_total, (
        f"binary codec moved {via_binary.wire_bytes_total} wire bytes vs "
        f"{via_json.wire_bytes_total} for JSON on the same EEG workload"
    )
    assert via_binary.measured_step_ms <= via_json.measured_step_ms * 1.25, (
        f"binary codec regressed wall-clock per step: "
        f"{via_binary.measured_step_ms:.3f} ms vs "
        f"{via_json.measured_step_ms:.3f} ms for JSON"
    )


if __name__ == "__main__":
    main()
