"""Ablation E8: the separability optimisation of Section 3.2.

When object placement reads raw x/y attributes directly, Kyrix can skip
placement precomputation and query the raw table's spatial index.  This
benchmark measures the setup (precompute) cost of the separable shortcut
versus full placement precomputation, and checks that query latency is
unaffected.
"""

from __future__ import annotations

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.bench.experiments import dataset_for_scale
from repro.bench.harness import run_scheme_on_trace
from repro.datagen.traces import paper_traces
from repro.server.schemes import dbox_scheme


@pytest.mark.parametrize("variant", ["separable", "precomputed"])
def test_setup_cost(benchmark, variant):
    """Time building the whole backend (load + precompute) per variant."""
    spec = dataset_for_scale("uniform", "tiny")

    def build():
        return build_dots_backend(
            spec,
            config=default_config(),
            precompute_placement=(variant == "precomputed"),
        )

    stack = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    # Both variants must answer queries with the same latency profile.
    traces = paper_traces(spec.canvas_width, spec.canvas_height)
    result = run_scheme_on_trace(stack, dbox_scheme(), traces["a"])
    benchmark.extra_info["avg_response_ms_per_step"] = round(result.average_response_ms, 2)
    assert result.average_response_ms < 500.0
