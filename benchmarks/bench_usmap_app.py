"""Experiment E5: the US crime-map example application end to end.

Reproduces the interaction sequence of Figure 2 — load the state map, click
a state to jump into the county map, pan on the county map — and reports the
response time of each interaction.
"""

from __future__ import annotations

import pytest

from usmap_crime import build_usmap_application

from repro.client import KyrixFrontend
from repro.compiler import compile_application
from repro.datagen import USMapSpec
from repro.server import dbox50_scheme
from repro.serving import build_service


@pytest.fixture(scope="module")
def usmap_backend():
    app, database = build_usmap_application(USMapSpec())
    compiled = compile_application(app)
    return build_service(app.config, database=database, compiled=compiled)


def _fresh_frontend(backend) -> KyrixFrontend:
    backend.cache.clear()
    return KyrixFrontend(backend, dbox50_scheme())


def test_initial_state_map_load(benchmark, usmap_backend):
    def load_once():
        frontend = _fresh_frontend(usmap_backend)
        return frontend.load_initial_canvas().total_ms

    latency_ms = benchmark(load_once)
    assert latency_ms < 500.0


def test_state_to_county_jump(benchmark, usmap_backend):
    def jump_once():
        frontend = _fresh_frontend(usmap_backend)
        frontend.load_initial_canvas()
        state = frontend.visible_objects[1][0]
        return frontend.click(state, layer_index=1).total_ms

    latency_ms = benchmark(jump_once)
    assert latency_ms < 500.0


def test_pan_on_county_map(benchmark, usmap_backend):
    def pan_once():
        frontend = _fresh_frontend(usmap_backend)
        frontend.load_initial_canvas()
        state = frontend.visible_objects[1][0]
        frontend.click(state, layer_index=1)
        return frontend.pan_by(2048, 0).total_ms

    latency_ms = benchmark(pan_once)
    assert latency_ms < 500.0
