"""Link-check the docs suite: every cross-reference must resolve.

Scans ``README.md`` and ``docs/*.md`` for

* markdown links to local files (``[text](docs/operations.md#anchor)``)
  — the target file must exist relative to the citing document;
* inline-backtick code paths (`` `src/repro/cluster/autopilot.py` ``,
  `` `net/protocol.py` ``, `` `benchmarks/baselines/` `` …) — the path
  must exist relative to the repo root, or (for the short module forms
  the prose uses) under ``src/repro/``.

Fenced code blocks are skipped: they hold example output and
hypothetical snippets, not citations. A doc that names a file which
later gets moved or deleted fails CI here instead of rotting silently.

Run with::

    python docs/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — target captured up to the closing paren.
_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
#: Inline code spans (single backticks; fenced blocks are stripped first).
_INLINE_CODE = re.compile(r"`([^`\n]+)`")
#: A word inside a code span that cites a checkable path: contains a
#: slash and ends in a known file extension or a trailing slash
#: (directory citation). Everything else — dotted module names, config
#: knobs, HTTP endpoints, metric labels — is not a filesystem claim.
_PATH_WORD = re.compile(
    r"^[A-Za-z0-9_][A-Za-z0-9_.\-/]*(?:\.(?:py|md|json|jsonl|ya?ml|txt|ini)|/)$"
)


def _strip_fenced_blocks(text: str) -> str:
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def _candidates(word: str) -> list[Path]:
    return [ROOT / word, ROOT / "src" / "repro" / word]


def check_document(doc: Path) -> list[str]:
    text = _strip_fenced_blocks(doc.read_text(encoding="utf-8"))
    problems = []

    for match in _MD_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        if not (doc.parent / target).exists():
            problems.append(f"{doc.relative_to(ROOT)}: broken link -> {target}")

    for span in _INLINE_CODE.finditer(text):
        for word in span.group(1).split():
            if "/" not in word or not _PATH_WORD.match(word):
                continue
            if not any(path.exists() for path in _candidates(word)):
                problems.append(
                    f"{doc.relative_to(ROOT)}: cited path does not exist -> {word}"
                )
    return problems


def main() -> int:
    documents = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    problems = [p for doc in documents for p in check_document(doc)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"docs link-check: {len(documents)} documents, "
        f"{len(problems)} broken references"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
