"""Tests for JSON (de)serialisation of application specifications."""

import pytest

from repro.compiler import collect_issues
from repro.core import CallablePlacement, dot_renderer, legend_renderer
from repro.core.spec import (
    FunctionRegistry,
    application_from_dict,
    application_from_json,
    application_to_dict,
    application_to_json,
)
from repro.errors import SpecError

from .test_compiler import make_valid_app


@pytest.fixture()
def registry() -> FunctionRegistry:
    registry = FunctionRegistry()
    registry.register_renderer("dots", dot_renderer())
    registry.register_renderer("legend", legend_renderer())
    registry.register("pick_layer_one", lambda row, layer_id: layer_id == 1)
    registry.register("center_on_row", lambda row: (row["x"], row["y"]))
    return registry


class TestFunctionRegistry:
    def test_register_and_lookup(self, registry):
        assert callable(registry.function("pick_layer_one"))
        assert registry.renderer("dots").name.startswith("dot")

    def test_unknown_names_raise(self, registry):
        with pytest.raises(SpecError):
            registry.function("missing")
        with pytest.raises(SpecError):
            registry.renderer("missing")

    def test_non_callable_rejected(self, registry):
        with pytest.raises(SpecError):
            registry.register("bad", 42)
        with pytest.raises(SpecError):
            registry.register_renderer("bad", lambda row: [])

    def test_reverse_lookup(self, registry):
        func = registry.function("pick_layer_one")
        assert registry.name_of(func) == "pick_layer_one"
        assert registry.name_of(lambda: None) is None


class TestRoundTrip:
    def _attach_registry_pieces(self, app, registry):
        """Swap the app's anonymous renderers for registered ones so the
        round trip is loss-free."""
        for canvas in app.canvases.values():
            for layer in canvas.layers:
                layer.renderer = (
                    registry.renderer("legend") if layer.static else registry.renderer("dots")
                )
        for jump in app.jumps:
            jump.selector = registry.function("pick_layer_one")
        return app

    def test_dict_round_trip_preserves_structure(self, registry):
        app = self._attach_registry_pieces(make_valid_app(), registry)
        data = application_to_dict(app, registry)
        rebuilt = application_from_dict(data, registry)
        assert rebuilt.name == app.name
        assert set(rebuilt.canvases) == set(app.canvases)
        assert rebuilt.initial_canvas_id == app.initial_canvas_id
        assert len(rebuilt.jumps) == len(app.jumps)
        rebuilt_layer = rebuilt.canvas("overview").layer(0)
        original_layer = app.canvas("overview").layer(0)
        assert rebuilt_layer.static == original_layer.static
        assert rebuilt_layer.placement.x_column == original_layer.placement.x_column

    def test_round_trip_still_validates(self, registry):
        app = self._attach_registry_pieces(make_valid_app(), registry)
        rebuilt = application_from_dict(application_to_dict(app, registry), registry)
        assert collect_issues(rebuilt) == []

    def test_json_round_trip(self, registry):
        app = self._attach_registry_pieces(make_valid_app(), registry)
        text = application_to_json(app, registry)
        rebuilt = application_from_json(text, registry)
        assert rebuilt.describe()["name"] == "demo"

    def test_jump_functions_resolved_from_registry(self, registry):
        app = self._attach_registry_pieces(make_valid_app(), registry)
        app.jumps[0].new_viewport = registry.function("center_on_row")
        rebuilt = application_from_dict(application_to_dict(app, registry), registry)
        jump = rebuilt.jumps_from("overview")[0]
        assert jump.triggered_by({}, 1) is True
        assert jump.triggered_by({}, 0) is False
        assert jump.destination_viewport_center({"x": 3, "y": 4}) == (3, 4)

    def test_callable_placement_serialised_by_name(self, registry):
        registry.register("pie", lambda row: (row["x"], row["y"], 10, 10))
        app = self._attach_registry_pieces(make_valid_app(), registry)
        app.canvas("overview").layer(0).placement = CallablePlacement(
            func=registry.function("pie"), name="pie"
        )
        rebuilt = application_from_dict(application_to_dict(app, registry), registry)
        placement = rebuilt.canvas("overview").layer(0).placement
        assert isinstance(placement, CallablePlacement)
        assert placement.place({"x": 5, "y": 5}).center == (5, 5)

    def test_unregistered_callables_export_as_none(self):
        app = make_valid_app()
        data = application_to_dict(app)  # empty registry
        layer = data["canvases"][0]["layers"][0]
        assert layer["renderer"] is None

    def test_unknown_placement_kind_rejected_on_import(self, registry):
        app = self._attach_registry_pieces(make_valid_app(), registry)
        data = application_to_dict(app, registry)
        data["canvases"][0]["layers"][0]["placement"] = {"kind": "hologram"}
        with pytest.raises(SpecError):
            application_from_dict(data, registry)
