"""Tests for configuration objects and the metrics utilities."""

import json

import pytest

from repro.config import (
    CacheConfig,
    INTERACTIVITY_BUDGET_MS,
    KyrixConfig,
    NetworkConfig,
    PrefetchConfig,
    StorageConfig,
)
from repro.errors import KyrixError
from repro.metrics.collector import LatencyBreakdown, MetricsCollector, summarize
from repro.metrics.timer import Timer, VirtualClock


class TestConfig:
    def test_defaults_validate(self):
        KyrixConfig().validate()

    def test_interactivity_budget_is_500ms(self):
        assert INTERACTIVITY_BUDGET_MS == 500.0
        assert KyrixConfig().interactivity_budget_ms == 500.0

    def test_round_trip_dict(self):
        config = KyrixConfig(app_name="demo", viewport_width=640)
        config.network.rtt_ms = 7.5
        restored = KyrixConfig.from_dict(config.to_dict())
        assert restored.app_name == "demo"
        assert restored.viewport_width == 640
        assert restored.network.rtt_ms == 7.5

    def test_round_trip_json_and_file(self, tmp_path):
        config = KyrixConfig(app_name="demo")
        path = tmp_path / "config.json"
        config.save(path)
        restored = KyrixConfig.from_file(path)
        assert restored.app_name == "demo"
        assert json.loads(config.to_json())["app_name"] == "demo"

    def test_partial_dict_uses_defaults(self):
        config = KyrixConfig.from_dict({"app_name": "x", "cache": {"enabled": False}})
        assert config.cache.enabled is False
        assert config.network.rtt_ms == NetworkConfig().rtt_ms

    @pytest.mark.parametrize(
        "bad",
        [
            {"app_name": ""},
            {"viewport_width": 0},
            {"interactivity_budget_ms": -1},
            {"storage": {"page_size": 10}},
            {"network": {"bandwidth_mbps": 0}},
            {"prefetch": {"strategy": "psychic"}},
            {"cache": {"backend_entries": -1}},
        ],
    )
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(KyrixError):
            KyrixConfig.from_dict(bad)

    def test_storage_config_validation(self):
        with pytest.raises(KyrixError):
            StorageConfig(buffer_pool_pages=2).validate()

    def test_prefetch_config_validation(self):
        PrefetchConfig(strategy="momentum").validate()
        with pytest.raises(KyrixError):
            PrefetchConfig(lookahead_steps=-1).validate()


class TestTimers:
    def test_timer_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed_ms >= 0.0

    def test_timer_misuse_raises(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.stop()
        with pytest.raises(RuntimeError):
            timer.lap_ms()

    def test_virtual_clock_advances(self):
        clock = VirtualClock()
        clock.advance(5.0)
        checkpoint = clock.checkpoint()
        clock.advance(2.5)
        assert clock.now_ms == 7.5
        assert clock.since(checkpoint) == 2.5

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_virtual_clock_reset(self):
        clock = VirtualClock()
        clock.advance(3)
        clock.reset()
        assert clock.now_ms == 0.0


class TestMetricsCollector:
    def _step(self, query=1.0, network=2.0, render=0.5, **kwargs):
        return LatencyBreakdown(
            query_ms=query, network_ms=network, render_ms=render, **kwargs
        )

    def test_total_ms(self):
        assert self._step().total_ms == 3.5

    def test_merge_accumulates(self):
        step = self._step(requests=1, objects_fetched=10, cache_hit=True)
        step.merge(self._step(requests=2, objects_fetched=5, cache_hit=False))
        assert step.requests == 3
        assert step.objects_fetched == 15
        assert step.cache_hit is False

    def test_average_and_summary(self):
        collector = MetricsCollector()
        for query in (1.0, 2.0, 3.0):
            collector.record(self._step(query=query, network=0, render=0))
        assert collector.average_response_ms() == pytest.approx(2.0)
        summary = collector.summary()
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_component_averages(self):
        collector = MetricsCollector()
        collector.record(self._step(query=2.0, network=4.0, render=0.0))
        averages = collector.component_averages()
        assert averages["query_ms"] == 2.0
        assert averages["network_ms"] == 4.0

    def test_cache_hit_rate(self):
        collector = MetricsCollector()
        collector.record(self._step(cache_hit=True))
        collector.record(self._step(cache_hit=False))
        assert collector.cache_hit_rate() == 0.5

    def test_counters(self):
        collector = MetricsCollector()
        collector.bump("prefetch", 3)
        collector.bump("prefetch")
        assert collector.counters["prefetch"] == 4

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.average_response_ms() == 0.0
        assert collector.cache_hit_rate() == 0.0
        with pytest.raises(ValueError):
            collector.summary()

    def test_summarize_percentiles(self):
        # Nearest-rank percentiles: for samples 1..100 the p-th percentile
        # is exactly the sample at rank ceil(p * 100).
        summary = summarize(range(1, 101))
        assert summary.median == 50
        assert summary.p95 == 95
        assert summary.p99 == 99
        assert summary.p999 == 100
        assert summary.within_budget(500.0)
        assert not summary.within_budget(50.0)

    def test_percentile_is_nearest_rank_on_small_n(self):
        from repro.metrics.collector import percentile

        data = [10.0, 20.0, 30.0]
        assert percentile(data, 0.5) == 20.0
        assert percentile(data, 0.95) == 30.0
        assert percentile(data, 0.0) == 10.0
        assert percentile([7.0], 0.999) == 7.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
