"""Tests for viewports and canvas-space geometry."""

import pytest

from repro.core.viewport import Viewport
from repro.errors import ViewportError
from repro.storage.rtree import Rect


class TestViewport:
    def test_non_positive_dimensions_rejected(self):
        with pytest.raises(ViewportError):
            Viewport(0, 0, 0, 100)
        with pytest.raises(ViewportError):
            Viewport(0, 0, 100, -1)

    def test_center_and_rect(self):
        viewport = Viewport(10, 20, 100, 50)
        assert viewport.center == (60, 45)
        assert viewport.to_rect() == Rect(10, 20, 110, 70)
        assert viewport.area() == 5000

    def test_panned(self):
        assert Viewport(0, 0, 10, 10).panned(5, -3) == Viewport(5, -3, 10, 10)

    def test_moved_to_and_centered_at(self):
        viewport = Viewport(0, 0, 100, 100)
        assert viewport.moved_to(50, 60).x == 50
        centered = viewport.centered_at(500, 500)
        assert centered.center == (500, 500)

    def test_clamped_to_keeps_size(self):
        viewport = Viewport(-50, 990, 100, 100).clamped_to(1000, 1000)
        assert viewport.x == 0
        assert viewport.y == 900
        assert viewport.width == 100

    def test_clamped_when_viewport_bigger_than_canvas(self):
        viewport = Viewport(10, 10, 500, 500).clamped_to(100, 100)
        assert (viewport.x, viewport.y) == (0, 0)

    def test_within(self):
        assert Viewport(0, 0, 100, 100).within(100, 100)
        assert not Viewport(1, 0, 100, 100).within(100, 100)

    def test_intersects_and_overlap_fraction(self):
        a = Viewport(0, 0, 100, 100)
        b = Viewport(50, 0, 100, 100)
        assert a.intersects(b)
        assert a.overlap_fraction(b) == pytest.approx(0.5)
        assert a.overlap_fraction(Viewport(500, 500, 10, 10)) == 0.0

    def test_from_rect_roundtrip(self):
        viewport = Viewport(5, 6, 7, 8)
        assert Viewport.from_rect(viewport.to_rect()) == viewport
