"""Tests for the declarative model: transforms, placements, renderers,
layers, canvases, jumps and the application object."""

import pytest

from repro.config import KyrixConfig
from repro.core import (
    App,
    Application,
    CallablePlacement,
    Canvas,
    ColumnPlacement,
    Jump,
    JumpType,
    Layer,
    Transform,
    Viewport,
    choropleth_renderer,
    dot_renderer,
    legend_renderer,
)
from repro.errors import SpecError
from repro.storage.rtree import Rect


class TestTransform:
    def test_requires_id(self):
        with pytest.raises(SpecError):
            Transform(transform_id="")

    def test_separable_requires_columns(self):
        with pytest.raises(SpecError):
            Transform(transform_id="t", query="SELECT x FROM t", separable=True)

    def test_empty_transform(self):
        transform = Transform.empty()
        assert transform.is_empty
        assert transform.apply({"a": 1}) == {"a": 1}

    def test_apply_runs_function(self):
        transform = Transform(
            transform_id="t",
            query="SELECT x FROM t",
            transform_func=lambda row: {**row, "double": row["x"] * 2},
        )
        assert transform.apply({"x": 3}) == {"x": 3, "double": 6}

    def test_apply_rejects_non_dict_result(self):
        transform = Transform(
            transform_id="t", query="SELECT x FROM t", transform_func=lambda row: [row]
        )
        with pytest.raises(SpecError):
            transform.apply({"x": 1})

    def test_describe(self):
        transform = Transform(
            transform_id="t", query="SELECT x, y FROM t",
            separable=True, x_column="x", y_column="y",
        )
        description = transform.describe()
        assert description["separable"] is True
        assert description["x_column"] == "x"


class TestPlacements:
    def test_column_placement_centers_box(self):
        placement = ColumnPlacement(x_column="x", y_column="y", width=4, height=2)
        rect = placement.place({"x": 10, "y": 20})
        assert rect == Rect(8, 19, 12, 21)
        assert placement.separable is True

    def test_column_placement_scaling_and_offset(self):
        placement = ColumnPlacement(
            x_column="x", y_column="y", x_scale=5, y_scale=5, x_offset=-1000, y_offset=-500
        )
        rect = placement.place({"x": 300, "y": 200})
        assert rect.center == (500, 500)

    def test_column_placement_width_from_column(self):
        placement = ColumnPlacement(x_column="x", y_column="y", width="w", height="h")
        rect = placement.place({"x": 0, "y": 0, "w": 10, "h": 20})
        assert rect.width == 10
        assert rect.height == 20

    def test_column_placement_missing_column_raises(self):
        placement = ColumnPlacement(x_column="x", y_column="y")
        with pytest.raises(SpecError):
            placement.place({"y": 1})

    def test_callable_placement(self):
        placement = CallablePlacement(func=lambda row: (row["a"] * 2, 5, 10, 10))
        rect = placement.place({"a": 50})
        assert rect.center == (100, 5)
        assert placement.separable is False

    def test_callable_placement_bad_return_raises(self):
        placement = CallablePlacement(func=lambda row: (1, 2))
        with pytest.raises(SpecError):
            placement.place({})

    def test_callable_placement_negative_size_raises(self):
        placement = CallablePlacement(func=lambda row: (0, 0, -1, 1))
        with pytest.raises(SpecError):
            placement.place({})


class TestRenderers:
    def test_dot_renderer(self):
        renderer = dot_renderer("x", "y", radius=2.0)
        primitives = renderer.render({"x": 1, "y": 2})
        assert primitives[0]["kind"] == "dot"
        assert primitives[0]["radius"] == 2.0

    def test_choropleth_renderer_scales_intensity(self):
        renderer = choropleth_renderer(value_range=(0, 10))
        primitives = renderer.render(
            {"x": 0, "y": 0, "width": 10, "height": 10, "rate": 5, "name": "A"}
        )
        rect = primitives[0]
        assert rect["intensity"] == pytest.approx(0.5)
        assert primitives[1]["kind"] == "label"

    def test_legend_renderer_is_viewport_anchored(self):
        primitives = legend_renderer("crime rate").render({})
        assert primitives[0]["viewport_anchored"] is True

    def test_renderer_rejects_non_list_output(self):
        from repro.core.rendering import Renderer

        renderer = Renderer(name="bad", func=lambda row: {"kind": "dot"})
        with pytest.raises(SpecError):
            renderer.render({})


class TestLayerCanvas:
    def test_layer_requires_transform_id(self):
        with pytest.raises(SpecError):
            Layer(transform_id="")

    def test_layer_js_style_builders(self):
        layer = Layer("t", False)
        layer.addPlacement(ColumnPlacement(x_column="x", y_column="y"))
        layer.addRenderingFunc(dot_renderer())
        assert layer.placement is not None
        assert layer.renderer is not None

    def test_layer_add_placement_type_checked(self):
        with pytest.raises(SpecError):
            Layer("t").add_placement("not a placement")

    def test_empty_layer_needs_no_placement(self):
        layer = Layer("empty", True)
        assert layer.is_empty
        assert not layer.needs_placement

    def test_canvas_rejects_bad_dimensions(self):
        with pytest.raises(SpecError):
            Canvas(canvas_id="c", width=0, height=10)

    def test_canvas_duplicate_transform_rejected(self):
        canvas = Canvas(canvas_id="c", width=100, height=100)
        canvas.add_transform(Transform(transform_id="t", query=""))
        with pytest.raises(SpecError):
            canvas.add_transform(Transform(transform_id="t", query=""))

    def test_canvas_layer_naming_and_lookup(self):
        canvas = Canvas(canvas_id="c", width=100, height=100)
        canvas.add_layer(Layer("empty", True))
        assert canvas.layer(0).name == "c_layer0"
        with pytest.raises(SpecError):
            canvas.layer(5)

    def test_transform_for_unknown_reference_raises(self):
        canvas = Canvas(canvas_id="c", width=100, height=100)
        layer = Layer("missing", False)
        canvas.add_layer(layer)
        with pytest.raises(SpecError):
            canvas.transform_for(layer)

    def test_dynamic_layers_excludes_static_and_empty(self):
        canvas = Canvas(canvas_id="c", width=100, height=100)
        canvas.add_transform(Transform(transform_id="data", query="SELECT x FROM t"))
        canvas.add_layer(Layer("empty", True))
        canvas.add_layer(Layer("data", False))
        assert [index for index, _ in canvas.dynamic_layers] == [1]


class TestJump:
    def test_jump_type_parsing(self):
        assert JumpType.parse("semantic_zoom") is JumpType.SEMANTIC_ZOOM
        assert JumpType.parse(JumpType.PAN) is JumpType.PAN
        with pytest.raises(SpecError):
            JumpType.parse("teleport")

    def test_jump_requires_canvases(self):
        with pytest.raises(SpecError):
            Jump(source="", destination="b")

    def test_selector_and_label(self):
        jump = Jump(
            source="a",
            destination="b",
            jump_type="geometric_semantic_zoom",
            selector=lambda row, layer_id: layer_id == 1,
            name=lambda row: f"County map of {row['name']}",
        )
        assert jump.triggered_by({"name": "MA"}, 1)
        assert not jump.triggered_by({"name": "MA"}, 0)
        assert jump.label_for({"name": "MA"}) == "County map of MA"

    def test_new_viewport_two_and_three_element_forms(self):
        jump2 = Jump("a", "b", new_viewport=lambda row: (row["x"], row["y"]))
        jump3 = Jump("a", "b", new_viewport=lambda row: (0, row["x"] * 5, row["y"] * 5))
        assert jump2.destination_viewport_center({"x": 1, "y": 2}) == (1, 2)
        assert jump3.destination_viewport_center({"x": 1, "y": 2}) == (5, 10)

    def test_new_viewport_bad_return_raises(self):
        jump = Jump("a", "b", new_viewport=lambda row: "nope")
        with pytest.raises(SpecError):
            jump.destination_viewport_center({})

    def test_default_viewport_center_is_none(self):
        assert Jump("a", "b").destination_viewport_center({}) is None


class TestApplication:
    def test_app_alias(self):
        assert App is Application

    def test_duplicate_canvas_rejected(self):
        app = App(name="demo")
        app.add_canvas(Canvas(canvas_id="c", width=100, height=100))
        with pytest.raises(SpecError):
            app.add_canvas(Canvas(canvas_id="c", width=100, height=100))

    def test_jumps_from_and_to(self):
        app = App(name="demo")
        app.add_jump(Jump("a", "b"))
        app.add_jump(Jump("b", "a"))
        assert len(app.jumps_from("a")) == 1
        assert app.jumps_to("a")[0].source == "b"

    def test_initial_viewport_requires_initial_canvas(self):
        app = App(name="demo", config=KyrixConfig(viewport_width=100, viewport_height=100))
        with pytest.raises(SpecError):
            app.initial_viewport()
        app.initialCanvas("c", 10, 20)
        viewport = app.initial_viewport()
        assert viewport == Viewport(10, 20, 100, 100)

    def test_unknown_canvas_lookup_raises(self):
        app = App(name="demo")
        with pytest.raises(SpecError):
            app.canvas("missing")

    def test_describe_lists_canvases_and_jumps(self):
        app = App(name="demo")
        app.add_canvas(Canvas(canvas_id="c", width=100, height=100))
        app.add_jump(Jump("c", "c", jump_type="pan"))
        description = app.describe()
        assert "c" in description["canvases"]
        assert description["jumps"][0]["type"] == "pan"

    def test_config_app_name_is_synced(self):
        app = App(name="demo")
        assert app.config.app_name == "demo"
