"""Tests for the compiler: constraint checking and plan generation."""

import pytest

from repro.bench.apps import build_dots_application, default_config
from repro.compiler import collect_issues, compile_application, validate
from repro.core import (
    App,
    Canvas,
    ColumnPlacement,
    Jump,
    Layer,
    Transform,
    dot_renderer,
    legend_renderer,
)
from repro.datagen.synthetic import tiny_spec
from repro.errors import ValidationError


def make_valid_app() -> App:
    """A minimal valid two-canvas application."""
    config = default_config(viewport=256)
    app = App(name="demo", config=config)
    for canvas_id in ("overview", "detail"):
        canvas = Canvas(canvas_id=canvas_id, width=4096, height=4096)
        canvas.add_transform(
            Transform(
                transform_id="data",
                query="SELECT tuple_id, x, y, bbox FROM dots",
                columns=("tuple_id", "x", "y", "bbox"),
            )
        )
        layer = Layer("data", False)
        layer.add_placement(ColumnPlacement(x_column="x", y_column="y"))
        layer.add_rendering_func(dot_renderer())
        canvas.add_layer(layer)
        legend = Layer("empty", True)
        legend.add_rendering_func(legend_renderer())
        canvas.add_layer(legend)
        app.add_canvas(canvas)
    app.add_jump(Jump("overview", "detail", "semantic_zoom"))
    app.add_jump(Jump("detail", "overview", "semantic_zoom"))
    app.set_initial_canvas("overview", 0, 0)
    return app


class TestValidator:
    def test_valid_app_has_no_issues(self):
        assert collect_issues(make_valid_app()) == []
        validate(make_valid_app())

    def test_no_canvases(self):
        app = App(name="demo")
        issues = collect_issues(app)
        assert any("no canvases" in issue for issue in issues)

    def test_missing_initial_canvas(self):
        app = make_valid_app()
        app.initial_canvas_id = None
        assert any("initial canvas" in issue for issue in collect_issues(app))

    def test_initial_viewport_outside_canvas(self):
        app = make_valid_app()
        app.set_initial_canvas("overview", 5000, 0)
        assert any("does not fit" in issue for issue in collect_issues(app))

    def test_unknown_transform_reference(self):
        app = make_valid_app()
        app.canvas("overview").add_layer(Layer("nope", False))
        assert any("unknown transform" in issue for issue in collect_issues(app))

    def test_dynamic_layer_without_placement(self):
        app = make_valid_app()
        app.canvas("overview").layers[0].placement = None
        assert any("no placement" in issue for issue in collect_issues(app))

    def test_layer_without_renderer(self):
        app = make_valid_app()
        app.canvas("overview").layers[0].renderer = None
        assert any("no rendering function" in issue for issue in collect_issues(app))

    def test_bad_layer_query(self):
        app = make_valid_app()
        app.canvas("overview").transforms["data"].query = "SELEC x FRM t"
        assert any("does not parse" in issue for issue in collect_issues(app))

    def test_non_select_layer_query(self):
        app = make_valid_app()
        app.canvas("overview").transforms["data"].query = "DELETE FROM dots"
        assert any("must be a SELECT" in issue for issue in collect_issues(app))

    def test_jump_to_unknown_canvas(self):
        app = make_valid_app()
        app.add_jump(Jump("overview", "missing"))
        assert any("destination canvas is not defined" in i for i in collect_issues(app))

    def test_self_jump_must_be_pan(self):
        app = make_valid_app()
        app.add_jump(Jump("overview", "overview", "semantic_zoom"))
        assert any("self-jumps" in issue for issue in collect_issues(app))

    def test_unreachable_canvas_detected(self):
        app = make_valid_app()
        orphan = Canvas(canvas_id="orphan", width=4096, height=4096)
        legend = Layer("empty", True)
        legend.add_rendering_func(legend_renderer())
        orphan.add_layer(legend)
        app.add_canvas(orphan)
        assert any("unreachable" in issue for issue in collect_issues(app))

    def test_canvas_smaller_than_viewport(self):
        app = make_valid_app()
        app.canvases["overview"].width = 100
        assert any("smaller than" in issue for issue in collect_issues(app))

    def test_bad_fetching_override(self):
        app = make_valid_app()
        app.canvas("overview").layers[0].fetching = "magic"
        assert any("fetching granularity" in issue for issue in collect_issues(app))

    def test_validation_error_carries_all_issues(self):
        app = App(name="demo")
        with pytest.raises(ValidationError) as exc_info:
            validate(app)
        assert len(exc_info.value.issues) >= 1


class TestCompiler:
    def test_compile_valid_app(self):
        compiled = compile_application(make_valid_app())
        assert set(compiled.canvases) == {"overview", "detail"}
        overview = compiled.canvas_plan("overview")
        assert len(overview.layers) == 2
        assert overview.layers[1].static is True

    def test_invalid_app_raises(self):
        with pytest.raises(ValidationError):
            compile_application(App(name="demo"))

    def test_placement_table_names_are_distinct(self):
        compiled = compile_application(make_valid_app())
        tables = {
            layer.placement_table
            for layer in compiled.all_layer_plans()
            if layer.placement_table
        }
        assert len(tables) == 2  # one dynamic layer per canvas

    def test_separable_layer_detected_for_dots_app(self):
        spec = tiny_spec("uniform", num_points=10)
        app = build_dots_application(spec, default_config(viewport=512))
        compiled = compile_application(app)
        layer = compiled.layer_plan("dots", 0)
        assert layer.separable is True
        assert layer.source_table == spec.name
        assert layer.placement_table is None

    def test_non_separable_when_transform_func_present(self):
        app = make_valid_app()
        transform = app.canvas("overview").transforms["data"]
        transform.separable = True
        transform.x_column = "x"
        transform.y_column = "y"
        transform.transform_func = lambda row: row
        compiled = compile_application(app)
        assert compiled.layer_plan("overview", 0).separable is False

    def test_mapping_table_name_per_tile_size(self):
        compiled = compile_application(make_valid_app())
        layer = compiled.layer_plan("overview", 0)
        assert layer.mapping_table_for(1024).endswith("_map_1024")
        assert layer.mapping_table_for(256) != layer.mapping_table_for(1024)

    def test_describe(self):
        compiled = compile_application(make_valid_app())
        description = compiled.describe()
        assert description["app"] == "demo"
        assert "overview" in description["canvases"]
