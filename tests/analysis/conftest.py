"""Helpers for the repro.analysis test suite.

Rule fixtures are Python *source strings*, never real files in the tree:
the linter walks ``tests/`` too, and a checked-in violation fixture would
flag itself.  ``lint_source`` fabricates a :class:`ModuleSource` at an
arbitrary virtual path and runs one rule (or all of them) over it.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Finding, ModuleSource, all_rules
from repro.analysis.core import check_module


@pytest.fixture
def lint_source():
    def lint(
        source: str,
        *,
        path: str = "src/repro/example.py",
        rule: str | None = None,
    ) -> list[Finding]:
        module = ModuleSource(
            Path("/virtual") / path, path, text=textwrap.dedent(source)
        )
        registry = all_rules()
        if rule is not None:
            checkers = [registry[rule]()]
        else:
            checkers = [checker() for checker in registry.values()]
        findings, _ = check_module(module, checkers)
        return findings

    return lint
