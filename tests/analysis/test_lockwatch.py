"""Runtime lock-order and guarded-mutation checks (`repro.analysis.lockwatch`)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockwatch
from repro.analysis.lockwatch import (
    LockOrderError,
    LockWatch,
    UnguardedWriteError,
    guard_attributes,
)


def two_locks(watch):
    return watch.wrap(threading.Lock(), "A"), watch.wrap(threading.Lock(), "B")


class TestLockOrderGraph:
    def test_consistent_order_is_clean(self):
        watch = LockWatch()
        lock_a, lock_b = two_locks(watch)
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        watch.verify()
        assert watch.edges() == [("A", "B")]

    def test_inverted_order_raises(self):
        watch = LockWatch()
        lock_a, lock_b = two_locks(watch)
        with lock_a:
            with lock_b:
                pass
        with pytest.raises(LockOrderError, match="A -> B|B -> A"):
            with lock_b:
                with lock_a:
                    pass

    def test_record_mode_defers_to_verify(self):
        watch = LockWatch(raise_on_violation=False)
        lock_a, lock_b = two_locks(watch)
        with lock_a, lock_b:
            pass
        with lock_b, lock_a:
            pass
        assert watch.violations
        with pytest.raises(LockOrderError):
            watch.verify()

    def test_three_lock_cycle_detected(self):
        watch = LockWatch(raise_on_violation=False)
        lock_a, lock_b = two_locks(watch)
        lock_c = watch.wrap(threading.Lock(), "C")
        with lock_a, lock_b:
            pass
        with lock_b, lock_c:
            pass
        with lock_c, lock_a:
            pass
        with pytest.raises(LockOrderError):
            watch.verify()

    def test_rlock_reentry_is_not_a_cycle(self):
        watch = LockWatch()
        rlock = watch.wrap(threading.RLock(), "R")
        with rlock:
            with rlock:
                pass
        watch.verify()

    def test_cross_thread_orders_merge_into_one_graph(self):
        watch = LockWatch(raise_on_violation=False)
        lock_a, lock_b = two_locks(watch)

        def forwards():
            with lock_a, lock_b:
                pass

        def backwards():
            with lock_b, lock_a:
                pass

        t1 = threading.Thread(target=forwards)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backwards)
        t2.start()
        t2.join()
        with pytest.raises(LockOrderError):
            watch.verify()

    def test_condition_wait_releases_the_held_stack(self):
        watch = LockWatch()
        inner = watch.wrap(threading.Lock(), "cond-lock")
        condition = threading.Condition(inner)
        other = watch.wrap(threading.Lock(), "other")
        ready = threading.Event()

        def waiter():
            with condition:
                ready.set()
                condition.wait(timeout=5)
                # Acquiring inside the condition is ordered after cond-lock.
                with other:
                    pass

        thread = threading.Thread(target=waiter)
        thread.start()
        ready.wait(timeout=5)
        # While the waiter sleeps it must NOT count as holding cond-lock:
        # this thread can take other -> cond-lock without closing a cycle
        # against the waiter's (released) hold.
        with condition:
            condition.notify_all()
        thread.join(timeout=5)
        assert not thread.is_alive()
        watch.verify()


class TestGuardedAttributes:
    class Shared:
        def __init__(self):
            self.counter = 0
            self.label = "x"

    def test_guarded_write_without_lock_raises(self):
        watch = LockWatch()
        lock = watch.wrap(threading.Lock(), "guard")
        shared = guard_attributes(self.Shared(), lock, ["counter"])
        with pytest.raises(UnguardedWriteError, match="counter"):
            shared.counter = 1

    def test_guarded_write_under_lock_passes(self):
        watch = LockWatch()
        lock = watch.wrap(threading.Lock(), "guard")
        shared = guard_attributes(self.Shared(), lock, ["counter"])
        with lock:
            shared.counter = 1
        assert shared.counter == 1

    def test_unflagged_attributes_stay_free(self):
        watch = LockWatch()
        lock = watch.wrap(threading.Lock(), "guard")
        shared = guard_attributes(self.Shared(), lock, ["counter"])
        shared.label = "y"
        assert shared.label == "y"

    def test_record_mode_collects_instead_of_raising(self):
        watch = LockWatch(raise_on_violation=False)
        lock = watch.wrap(threading.Lock(), "guard")
        shared = guard_attributes(self.Shared(), lock, ["counter"])
        shared.counter = 5
        assert shared.counter == 5
        assert any("counter" in v for v in watch.violations)


class TestInstall:
    def test_install_wraps_new_locks_and_uninstall_restores(self):
        assert not lockwatch.installed()
        watch = lockwatch.install()
        try:
            lock = threading.Lock()
            assert isinstance(lock, lockwatch.InstrumentedLock)
            assert "test_lockwatch.py" in lock.name
            with lock:
                pass
            assert lockwatch.current() is watch
        finally:
            lockwatch.uninstall()
        assert not lockwatch.installed()
        assert not isinstance(threading.Lock(), lockwatch.InstrumentedLock)

    def test_installed_watch_survives_conditions_and_pools(self):
        lockwatch.install()
        try:
            condition = threading.Condition()
            with condition:
                condition.notify_all()
            event = threading.Event()
            event.set()
            assert event.is_set()
        finally:
            lockwatch.uninstall()

    def test_install_is_idempotent(self):
        first = lockwatch.install()
        try:
            assert lockwatch.install() is first
        finally:
            lockwatch.uninstall()

    def test_watching_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKWATCH", raising=False)
        assert not lockwatch.watching_requested()
        monkeypatch.setenv("REPRO_LOCKWATCH", "1")
        assert lockwatch.watching_requested()
        monkeypatch.setenv("REPRO_LOCKWATCH", "0")
        assert not lockwatch.watching_requested()


class TestServingStackUnderWatch:
    def test_replicated_wire_cluster_hammered_under_watch_is_acyclic(self):
        from repro.bench.apps import build_dots_backend, default_config
        from repro.datagen.synthetic import tiny_spec
        from repro.net.protocol import DataRequest
        from repro.serving import build_service

        watch = lockwatch.install()
        try:
            spec = tiny_spec("uniform", num_points=300, seed=5)
            stack = build_dots_backend(spec, config=default_config(viewport=256))
            service = build_service(
                stack.backend.config,
                backend=stack.backend,
                precompute=False,
                shard_count=2,
                replicas=2,
                wire_shards=True,
            )
            try:
                request = DataRequest(
                    app_name="dots",
                    canvas_id="dots",
                    layer_index=0,
                    granularity="box",
                    design="spatial",
                    xmin=0.0,
                    ymin=0.0,
                    xmax=128.0,
                    ymax=128.0,
                )
                threads = [
                    threading.Thread(
                        target=lambda: [service.handle(request) for _ in range(5)]
                    )
                    for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            finally:
                service.close()
            watch.verify()
            # The stack's own locks were really instrumented: the replica
            # caches, serialization locks and router locks all registered.
            names = " ".join(watch.watched_lock_names())
            assert "src/repro/server/cache.py" in names
            assert "src/repro/cluster/router.py" in names
        finally:
            lockwatch.uninstall()
