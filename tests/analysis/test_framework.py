"""Framework behaviour: suppressions, baseline matching, runner and CLI."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, run_analysis
from repro.analysis.core import BASELINE_PATH, find_repo_root

REPO_ROOT = find_repo_root()

VIOLATION = """
    from repro.server.backend import KyrixBackend

    def make():
        return KyrixBackend(db, compiled, config)
"""

SUPPRESSED_LINE = """
    from repro.server.backend import KyrixBackend

    def make():
        return KyrixBackend(db, compiled, config)  # repolint: disable=factory-only
"""

SUPPRESSED_DEF = """
    from repro.server.backend import KyrixBackend

    def make():  # repolint: disable=factory-only
        backend = KyrixBackend(db, compiled, config)
        return KyrixBackend(db, compiled, config)
"""


def write_tree(root: Path, rel_path: str, source: str) -> Path:
    path = root / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


@pytest.fixture
def fake_repo(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    return tmp_path


class TestSuppressions:
    def test_inline_line_suppression(self, fake_repo):
        write_tree(fake_repo, "src/repro/a.py", SUPPRESSED_LINE)
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert result.fresh == []
        assert result.suppressed_count == 1

    def test_def_line_suppression_covers_the_whole_body(self, fake_repo):
        write_tree(fake_repo, "src/repro/a.py", SUPPRESSED_DEF)
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert result.fresh == []
        assert result.suppressed_count == 2

    def test_unsuppressed_finding_survives(self, fake_repo):
        write_tree(fake_repo, "src/repro/a.py", VIOLATION)
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert len(result.fresh) == 1
        assert not result.ok

    def test_disable_all_token(self, fake_repo):
        source = """
            from repro.server.backend import KyrixBackend
            b = KyrixBackend(db, c, cfg)  # repolint: disable=all
        """
        write_tree(fake_repo, "src/repro/a.py", source)
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert result.fresh == []


class TestBaseline:
    def test_baselined_finding_does_not_fail(self, fake_repo):
        write_tree(fake_repo, "src/repro/a.py", VIOLATION)
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert len(result.fresh) == 1
        baseline = {
            "version": 1,
            "entries": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                    "reason": "grandfathered for the test",
                }
                for finding in result.fresh
            ],
        }
        baseline_path = fake_repo / "baseline.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        rerun = run_analysis(
            fake_repo, rules=["factory-only"], baseline_path=baseline_path
        )
        assert rerun.ok
        assert len(rerun.baselined) == 1
        assert rerun.stale_baseline == []

    def test_baseline_matching_ignores_line_numbers(self, fake_repo):
        path = write_tree(fake_repo, "src/repro/a.py", VIOLATION)
        result = run_analysis(fake_repo, rules=["factory-only"])
        baseline_path = fake_repo / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {"entries": [dict(result.fresh[0].to_dict(), reason="r")]}
            ),
            encoding="utf-8",
        )
        # Shift the violation down: the entry must still match.
        path.write_text("\n\n\n" + path.read_text(), encoding="utf-8")
        rerun = run_analysis(
            fake_repo, rules=["factory-only"], baseline_path=baseline_path
        )
        assert rerun.ok and len(rerun.baselined) == 1

    def test_stale_entries_are_reported(self, fake_repo):
        write_tree(fake_repo, "src/repro/a.py", "x = 1\n")
        baseline_path = fake_repo / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "factory-only",
                            "path": "src/repro/gone.py",
                            "message": "no longer exists",
                        }
                    ]
                }
            ),
            encoding="utf-8",
        )
        result = run_analysis(fake_repo, baseline_path=baseline_path)
        assert result.ok
        assert len(result.stale_baseline) == 1


class TestRunner:
    def test_unknown_rule_id_raises(self, fake_repo):
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis(fake_repo, rules=["no-such-rule"])

    def test_parse_error_is_a_finding(self, fake_repo):
        write_tree(fake_repo, "src/repro/bad.py", "def broken(:\n")
        result = run_analysis(fake_repo)
        assert [finding.rule for finding in result.fresh] == ["parse-error"]

    def test_walker_skips_caches(self, fake_repo):
        write_tree(fake_repo, "src/repro/__pycache__/junk.py", VIOLATION)
        write_tree(fake_repo, "src/repro/a.py", "x = 1\n")
        result = run_analysis(fake_repo, rules=["factory-only"])
        assert result.ok
        assert result.files_checked == 1

    def test_registry_exposes_the_five_rules(self):
        assert set(all_rules()) == {
            "factory-only",
            "fault-seam",
            "lock-discipline",
            "span-discipline",
            "protocol-drift",
        }


class TestCLI:
    def run_cli(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=cwd or REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_rules_listing(self):
        proc = self.run_cli("--rules")
        assert proc.returncode == 0
        for rule in all_rules():
            assert rule in proc.stdout

    def test_clean_tree_exits_zero(self):
        proc = self.run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_output_shape(self):
        proc = self.run_cli("--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 100

    def test_violation_exits_nonzero(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        write_tree(tmp_path, "src/repro/a.py", VIOLATION)
        proc = self.run_cli("--root", str(tmp_path))
        assert proc.returncode == 1
        assert "factory-only" in proc.stdout

    def test_explicit_paths_are_checked(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        bad = write_tree(tmp_path, "src/repro/a.py", VIOLATION)
        proc = self.run_cli("--root", str(tmp_path), str(bad))
        assert proc.returncode == 1


class TestTreeIsClean:
    def test_repository_lints_clean_against_checked_in_baseline(self):
        result = run_analysis(REPO_ROOT)
        rendered = "\n".join(finding.render() for finding in result.fresh)
        assert result.ok, f"repolint findings:\n{rendered}"
        assert result.stale_baseline == [], result.stale_baseline

    def test_checked_in_baseline_stays_near_empty(self):
        from repro.analysis import load_baseline

        entries = load_baseline(REPO_ROOT / BASELINE_PATH)
        assert len(entries) <= 3
        for entry in entries:
            assert entry.get("reason"), f"baseline entry needs a reason: {entry}"
