"""Fixture tests for the built-in rule pack: every rule fires on its
violation and stays silent on the sanctioned pattern."""

from __future__ import annotations


def rules_fired(findings):
    return sorted({finding.rule for finding in findings})


class TestFactoryOnly:
    VIOLATION = """
        from repro.server.backend import KyrixBackend

        def make():
            return KyrixBackend(db, compiled, config)
    """

    def test_fires_outside_sanctioned_zones(self, lint_source):
        for path in (
            "src/repro/bench/somewhere.py",
            "tests/x/test_y.py",
            "benchmarks/bench_z.py",
            "examples/demo.py",
        ):
            findings = lint_source(self.VIOLATION, path=path, rule="factory-only")
            assert [f.rule for f in findings] == ["factory-only"], path
            assert "build_service" in findings[0].message

    def test_fires_on_cluster_router_too(self, lint_source):
        source = """
            from repro.cluster.router import ClusterRouter
            router = ClusterRouter(shards, parts, compiled, config)
        """
        findings = lint_source(source, path="src/repro/bench/b.py", rule="factory-only")
        assert len(findings) == 1

    def test_silent_inside_serving_and_cluster(self, lint_source):
        for path in ("src/repro/serving/factory.py", "src/repro/cluster/builder.py"):
            assert lint_source(self.VIOLATION, path=path, rule="factory-only") == []

    def test_silent_on_factory_use_and_bare_references(self, lint_source):
        source = """
            from repro.server.backend import KyrixBackend
            from repro.serving import build_service, unwrap

            def make():
                service = build_service(config, database=db, compiled=compiled)
                return unwrap(service, KyrixBackend)  # reference, not a call

            def check(obj):
                return isinstance(obj, KyrixBackend)
        """
        assert lint_source(source, path="src/repro/bench/b.py", rule="factory-only") == []


class TestFaultSeam:
    def test_fires_on_string_monkeypatch_of_internals(self, lint_source):
        source = """
            def test_kill(monkeypatch):
                monkeypatch.setattr("repro.serving.transport.TransportService.handle", boom)
        """
        findings = lint_source(source, path="tests/serving/test_x.py", rule="fault-seam")
        assert rules_fired(findings) == ["fault-seam"]
        assert "repro.serving.faults" in findings[0].message

    def test_fires_on_object_monkeypatch_of_imported_internals(self, lint_source):
        source = """
            from repro.net import socket_transport

            def test_kill(monkeypatch):
                monkeypatch.setattr(socket_transport, "SocketTransport", Fake)
        """
        findings = lint_source(source, path="tests/net/test_x.py", rule="fault-seam")
        assert len(findings) == 1

    def test_fires_on_mock_patch(self, lint_source):
        source = """
            from unittest import mock

            def test_kill():
                with mock.patch("repro.cluster.router.ClusterRouter.handle"):
                    pass
        """
        findings = lint_source(source, path="tests/cluster/test_x.py", rule="fault-seam")
        assert len(findings) == 1

    def test_silent_on_the_sanctioned_fault_seam(self, lint_source):
        source = """
            from repro.serving import FaultSchedule, fault_replica

            def test_failover(replicated_service):
                schedule = FaultSchedule()
                schedule.add(fault_replica(0, after=2))
        """
        assert lint_source(source, path="tests/serving/test_x.py", rule="fault-seam") == []

    def test_silent_on_non_internal_patching(self, lint_source):
        source = """
            def test_env(monkeypatch):
                monkeypatch.setenv("REPRO_LOCKWATCH", "1")
                monkeypatch.setattr("repro.bench.apps.default_config", fake)
        """
        assert lint_source(source, path="tests/x/test_y.py", rule="fault-seam") == []

    def test_silent_outside_tests(self, lint_source):
        source = """
            def install(monkeypatch):
                monkeypatch.setattr("repro.serving.transport.X", Y)
        """
        assert lint_source(source, path="src/repro/tooling.py", rule="fault-seam") == []


class TestLockDiscipline:
    def test_fires_on_unguarded_write(self, lint_source):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    self.value += 1
        """
        findings = lint_source(source, rule="lock-discipline")
        assert rules_fired(findings) == ["lock-discipline"]
        assert "Counter.bump" in findings[0].message

    def test_fires_on_nested_attribute_and_subscript_writes(self, lint_source):
        source = """
            import threading

            class Table:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.stats = Stats()
                    self._entries = {}

                def record(self, key):
                    self.stats.hits += 1
                    self._entries[key] = True
        """
        findings = lint_source(source, rule="lock-discipline")
        assert len(findings) == 2

    def test_silent_when_guarded(self, lint_source):
        source = """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def rename(self, name):
                    with self._other, self._lock:
                        self.name = name
        """
        assert lint_source(source, rule="lock-discipline") == []

    def test_silent_without_a_lock(self, lint_source):
        source = """
            class Plain:
                def __init__(self):
                    self.value = 0

                def bump(self):
                    self.value += 1
        """
        assert lint_source(source, rule="lock-discipline") == []

    def test_condition_counts_as_a_guard(self, lint_source):
        source = """
            import threading

            class Drain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._drained = threading.Condition(self._lock)
                    self.pending = 0

                def note(self):
                    with self._drained:
                        self.pending -= 1
        """
        assert lint_source(source, rule="lock-discipline") == []

    def test_init_writes_are_exempt(self, lint_source):
        source = """
            import threading

            class Built:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.ready = True
        """
        assert lint_source(source, rule="lock-discipline") == []


class TestSpanDiscipline:
    def test_fires_on_bare_time_time(self, lint_source):
        source = """
            import time

            def measure():
                start = time.time()
                return time.time() - start
        """
        findings = lint_source(source, rule="span-discipline")
        assert len(findings) == 2

    def test_fires_on_from_import_alias(self, lint_source):
        source = """
            from time import time

            def now():
                return time()
        """
        findings = lint_source(source, rule="span-discipline")
        assert len(findings) == 1

    def test_fires_on_tracer_construction_outside_telemetry(self, lint_source):
        source = """
            from repro.telemetry.tracer import Tracer

            def make():
                return Tracer()
        """
        findings = lint_source(
            source, path="src/repro/serving/x.py", rule="span-discipline"
        )
        assert len(findings) == 1
        assert "get_tracer" in findings[0].message

    def test_silent_on_monotonic_and_get_tracer(self, lint_source):
        source = """
            import time
            from repro.telemetry import get_tracer

            def measure():
                start = time.perf_counter()
                with get_tracer().span("stage"):
                    pass
                return time.monotonic(), time.perf_counter() - start
        """
        assert lint_source(source, path="src/repro/serving/x.py", rule="span-discipline") == []

    def test_tracer_construction_allowed_in_telemetry_and_tests(self, lint_source):
        source = """
            from repro.telemetry.tracer import Tracer
            tracer = Tracer()
        """
        for path in ("src/repro/telemetry/setup.py", "tests/telemetry/test_t.py"):
            assert lint_source(source, path=path, rule="span-discipline") == []


class TestProtocolDrift:
    def test_fires_on_dropped_field(self, lint_source):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Message:
                kind: str
                payload: str

                def to_dict(self):
                    return {"kind": self.kind}

                @classmethod
                def from_dict(cls, data):
                    return cls(kind=data["kind"], payload=data.get("payload", ""))
        """
        findings = lint_source(source, rule="protocol-drift")
        assert len(findings) == 1
        assert "payload" in findings[0].message and "to_dict" in findings[0].message

    def test_silent_on_full_literal_coverage(self, lint_source):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Message:
                kind: str
                payload: str

                def to_dict(self):
                    return {"kind": self.kind, "payload": self.payload}

                @classmethod
                def from_dict(cls, data):
                    return cls(kind=data["kind"], payload=data["payload"])
        """
        assert lint_source(source, rule="protocol-drift") == []

    def test_silent_on_blanket_asdict_and_kwargs(self, lint_source):
        source = """
            import json
            from dataclasses import asdict, dataclass

            @dataclass
            class Message:
                kind: str
                payload: str

                def to_dict(self):
                    return asdict(self)

                def to_json(self):
                    return json.dumps(self.to_dict())

                @classmethod
                def from_json(cls, text):
                    return cls(**json.loads(text))
        """
        assert lint_source(source, rule="protocol-drift") == []

    def test_silent_without_codec_pair(self, lint_source):
        source = """
            from dataclasses import dataclass

            @dataclass
            class ViewOnly:
                kind: str

                def to_dict(self):
                    return {}
        """
        assert lint_source(source, rule="protocol-drift") == []

    def test_silent_outside_src(self, lint_source):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Message:
                kind: str

                def to_dict(self):
                    return {}

                @classmethod
                def from_dict(cls, data):
                    return cls("x")
        """
        assert lint_source(source, path="tests/x/test_y.py", rule="protocol-drift") == []


class TestProtocolDriftCodecCompanion:
    """The registered codec module must cover its sibling dataclass fields.

    These fixtures need *real* files: the checker reads the sibling
    ``protocol.py`` from disk next to the codec module, so the usual
    virtual-path ``lint_source`` fixture exercises only the graceful-skip
    path (see the last test).
    """

    PROTOCOL = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class DataRequest:
            app_name: str
            shard_id: int | None = None

        @dataclass(frozen=True)
        class DataResponse:
            query_ms: float = 0.0
    """

    def _lint_codec(self, tmp_path, codec_source):
        import textwrap

        from repro.analysis import ModuleSource, all_rules
        from repro.analysis.core import check_module

        (tmp_path / "protocol.py").write_text(
            textwrap.dedent(self.PROTOCOL), encoding="utf-8"
        )
        module = ModuleSource(
            tmp_path / "columnar.py",
            "src/repro/net/columnar.py",
            text=textwrap.dedent(codec_source),
        )
        findings, _ = check_module(module, [all_rules()["protocol-drift"]()])
        return findings

    FULL_COVERAGE = """
        def _pack_request(request):
            return [request.app_name, request.shard_id]

        def _unpack_request(row):
            return dict(app_name=row[0], shard_id=row[1])

        def encode_response(response):
            return [response.query_ms]

        def decode_response(body):
            return dict(query_ms=body[0])
    """

    def test_silent_on_full_coverage(self, tmp_path):
        assert self._lint_codec(tmp_path, self.FULL_COVERAGE) == []

    def test_fires_on_field_missing_from_the_codec(self, tmp_path):
        dropped = self.FULL_COVERAGE.replace(
            "return [request.app_name, request.shard_id]",
            "return [request.app_name]",
        )
        findings = self._lint_codec(tmp_path, dropped)
        assert len(findings) == 1
        assert "_pack_request" in findings[0].message
        assert "shard_id" in findings[0].message

    def test_fires_on_missing_codec_function(self, tmp_path):
        missing = self.FULL_COVERAGE.replace("def decode_response", "def _renamed")
        findings = self._lint_codec(tmp_path, missing)
        assert len(findings) == 1
        assert "must define decode_response()" in findings[0].message

    def test_unreadable_sibling_skips_instead_of_fabricating(self, lint_source):
        # Virtual paths have no protocol.py on disk: the companion check
        # must skip, not invent findings about an unknown dataclass.
        findings = lint_source(
            "x = 1", path="src/repro/net/columnar.py", rule="protocol-drift"
        )
        assert findings == []


class TestAutopilotCoverage:
    """The control loop's module is covered by the concurrency rules.

    The autopilot owns the lock every decision runs under; these tests
    pin both directions: the real module lints clean *without a single
    suppression*, and the exact shapes a careless edit would introduce
    (control state written outside the lock, wall-clock cooldown
    arithmetic) are caught by the existing rules.
    """

    def _lint_real_module(self, rule):
        from pathlib import Path

        from repro.analysis import ModuleSource, all_rules
        from repro.analysis.core import check_module

        rel_path = "src/repro/cluster/autopilot.py"
        module = ModuleSource(Path(rel_path), rel_path)
        findings, suppressed = check_module(module, [all_rules()[rule]()])
        return findings, suppressed

    def test_autopilot_module_is_lock_discipline_clean(self):
        findings, suppressed = self._lint_real_module("lock-discipline")
        assert findings == []
        assert suppressed == 0, "autopilot must not need suppressions"

    def test_autopilot_module_is_span_discipline_clean(self):
        findings, suppressed = self._lint_real_module("span-discipline")
        assert findings == []
        assert suppressed == 0, "autopilot must not need suppressions"

    def test_fires_on_control_state_written_outside_the_lock(self, lint_source):
        source = """
            import threading

            class Pilot:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._armed = True
                    self._tick_count = 0

                def tick(self):
                    with self._lock:
                        self._tick_count += 1
                    self._armed = False  # decision state, lock released
        """
        findings = lint_source(
            source, path="src/repro/cluster/autopilot.py", rule="lock-discipline"
        )
        assert [f.rule for f in findings] == ["lock-discipline"]
        assert "_armed" in findings[0].message

    def test_fires_on_wall_clock_cooldown_arithmetic(self, lint_source):
        source = """
            import time

            class Pilot:
                def cooled(self, cooldown_s):
                    return time.time() - self.last_ms >= cooldown_s
        """
        findings = lint_source(
            source, path="src/repro/cluster/autopilot.py", rule="span-discipline"
        )
        assert [f.rule for f in findings] == ["span-discipline"]
