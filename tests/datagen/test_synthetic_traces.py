"""Tests for the synthetic dot datasets and the Figure 5 traces."""

import numpy as np
import pytest

from repro.datagen.synthetic import (
    PAPER_DENSITY,
    DotDatasetSpec,
    generate_points,
    generate_rows,
    load_dots,
    paper_scale_spec,
    skewed_spec,
    tiny_spec,
    uniform_spec,
)
from repro.datagen.traces import (
    Trace,
    paper_traces,
    random_walk_trace,
    trace_a,
    trace_b,
    trace_c,
)
from repro.errors import KyrixError
from repro.storage.database import Database
from repro.storage.rtree import Rect


class TestDatasetSpecs:
    def test_paper_density_constant(self):
        assert PAPER_DENSITY == pytest.approx(1e-3)

    def test_paper_scale_matches_section_33(self):
        spec = paper_scale_spec("uniform")
        assert spec.num_points == 100_000_000
        assert spec.canvas_width == 1_000_000
        assert spec.canvas_height == 100_000
        assert spec.density == pytest.approx(PAPER_DENSITY)
        assert paper_scale_spec("skewed").skewed is True

    def test_default_benchmark_scale_keeps_paper_density(self):
        spec = uniform_spec()
        assert spec.density == pytest.approx(PAPER_DENSITY, rel=0.1)

    def test_skewed_dense_region_is_20_percent_of_area(self):
        spec = skewed_spec()
        xmin, ymin, xmax, ymax = spec.dense_rect
        dense_area = (xmax - xmin) * (ymax - ymin)
        assert dense_area / (spec.canvas_width * spec.canvas_height) == pytest.approx(0.2)

    def test_invalid_specs_rejected(self):
        with pytest.raises(KyrixError):
            DotDatasetSpec(name="bad", num_points=0)
        with pytest.raises(KyrixError):
            DotDatasetSpec(name="bad", canvas_width=-1)
        with pytest.raises(KyrixError):
            DotDatasetSpec(name="bad", skewed=True, dense_fraction=1.5)

    def test_expected_objects_per_viewport(self):
        spec = uniform_spec()
        expected = spec.expected_objects_per_viewport(1024, 1024)
        assert expected == pytest.approx(spec.density * 1024 * 1024)


class TestGeneration:
    def test_generation_is_deterministic(self):
        spec = tiny_spec(num_points=100)
        assert np.array_equal(generate_points(spec), generate_points(spec))

    def test_different_seeds_differ(self):
        a = generate_points(tiny_spec(num_points=100, seed=1))
        b = generate_points(tiny_spec(num_points=100, seed=2))
        assert not np.array_equal(a, b)

    def test_points_within_canvas(self):
        spec = tiny_spec(num_points=500)
        points = generate_points(spec)
        assert points.shape == (500, 2)
        assert points[:, 0].min() >= 0 and points[:, 0].max() <= spec.canvas_width
        assert points[:, 1].min() >= 0 and points[:, 1].max() <= spec.canvas_height

    def test_skewed_dataset_concentrates_points(self):
        spec = skewed_spec(num_points=5_000)
        points = generate_points(spec)
        xmin, ymin, xmax, ymax = spec.dense_rect
        inside = np.sum(
            (points[:, 0] >= xmin) & (points[:, 0] <= xmax)
            & (points[:, 1] >= ymin) & (points[:, 1] <= ymax)
        )
        fraction = inside / spec.num_points
        # 80% directed there plus ~20% * 20% of the uniform remainder.
        assert fraction == pytest.approx(0.84, abs=0.03)

    def test_rows_have_bbox_around_point(self):
        spec = tiny_spec(num_points=10)
        for tuple_id, x, y, bbox in generate_rows(spec):
            assert bbox == (
                x - spec.half_extent, y - spec.half_extent,
                x + spec.half_extent, y + spec.half_extent,
            )

    def test_load_dots_creates_indexed_table(self):
        database = Database()
        spec = tiny_spec(num_points=200)
        table = load_dots(database, spec)
        assert table.row_count == 200
        assert table.find_index_on("bbox", kinds=("rtree",)) is not None
        assert table.find_index_on("tuple_id") is not None

    def test_load_dots_without_indexes(self):
        database = Database()
        table = load_dots(database, tiny_spec(num_points=50), with_indexes=False)
        assert table.indexes == {}


class TestTraces:
    CANVAS = (32_768.0, 8_192.0)

    def test_trace_a_is_tile_aligned(self):
        trace = trace_a(*self.CANVAS)
        assert all(x % 1024 == 0 and y % 1024 == 0 for x, y in trace.positions)
        assert trace.steps == 12

    def test_trace_a_moves_left_then_up(self):
        trace = trace_a(*self.CANVAS)
        xs = [p[0] for p in trace.positions]
        ys = [p[1] for p in trace.positions]
        assert xs[:7] == sorted(xs[:7], reverse=True)      # six steps left
        assert len(set(ys[:7])) == 1                        # constant y
        assert ys[6:] == sorted(ys[6:], reverse=True)       # six steps up

    def test_trace_b_is_never_tile_aligned(self):
        trace = trace_b(*self.CANVAS)
        assert all(x % 1024 != 0 and y % 1024 != 0 for x, y in trace.positions)
        assert trace.steps == 12

    def test_trace_b_is_trace_a_shifted_by_half_a_tile(self):
        a = trace_a(*self.CANVAS)
        b = trace_b(*self.CANVAS)
        for (ax, ay), (bx, by) in zip(a.positions, b.positions):
            assert bx - ax == 512
            assert by - ay == 512

    def test_trace_c_is_diagonal_with_six_steps(self):
        trace = trace_c(*self.CANVAS)
        assert trace.steps == 6
        xs = [p[0] for p in trace.positions]
        ys = [p[1] for p in trace.positions]
        assert xs == sorted(xs)                    # rightwards
        assert ys == sorted(ys, reverse=True)      # upwards

    def test_traces_fit_on_canvas(self):
        for trace in paper_traces(*self.CANVAS).values():
            xmin, ymin, xmax, ymax = trace.bounding_box(1024, 1024)
            assert xmin >= 0 and ymin >= 0
            assert xmax <= self.CANVAS[0] and ymax <= self.CANVAS[1]

    def test_traces_cross_the_skewed_dense_region(self):
        spec = skewed_spec()
        dense = Rect.from_tuple(spec.dense_rect)
        for trace in paper_traces(spec.canvas_width, spec.canvas_height).values():
            touches = any(
                dense.intersects(Rect(x, y, x + 1024, y + 1024))
                for x, y in trace.positions
            )
            assert touches, f"trace {trace.name} never touches the dense region"

    def test_trace_on_too_small_canvas_raises(self):
        with pytest.raises(KyrixError):
            trace_a(4096, 2048)

    def test_paper_traces_keys(self):
        assert set(paper_traces(*self.CANVAS)) == {"a", "b", "c"}

    def test_random_walk_trace_stays_on_canvas(self):
        trace = random_walk_trace(*self.CANVAS, steps=20, seed=3)
        assert len(trace) == 21
        for x, y in trace.positions:
            assert 0 <= x <= self.CANVAS[0] - 1024
            assert 0 <= y <= self.CANVAS[1] - 1024
