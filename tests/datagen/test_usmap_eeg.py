"""Tests for the US crime-map and EEG data generators."""

import numpy as np
import pytest

from repro.datagen.eeg import (
    EEGSpec,
    generate_channel,
    generate_epoch_features,
    generate_samples,
    load_eeg,
)
from repro.datagen.usmap import USMapSpec, generate_counties, generate_states, load_usmap
from repro.storage.database import Database
from repro.storage.rtree import Rect


class TestUSMap:
    def test_state_count_and_bounds(self):
        spec = USMapSpec()
        states = list(generate_states(spec))
        assert len(states) == spec.state_count == 49
        for state in states:
            bbox = Rect.from_tuple(state[-1])
            assert 0 <= bbox.xmin and bbox.xmax <= spec.state_canvas_width
            assert 0 <= bbox.ymin and bbox.ymax <= spec.state_canvas_height
            assert 0.5 <= state[6] <= 9.5  # crime rate range

    def test_county_count_and_containment_in_state_cell(self):
        spec = USMapSpec()
        counties = list(generate_counties(spec))
        assert len(counties) == spec.county_count
        cell_w = spec.county_canvas_width / spec.state_grid
        cell_h = spec.county_canvas_height / spec.state_grid
        for county in counties[:100]:
            state_id = county[1]
            col = state_id % spec.state_grid
            row = state_id // spec.state_grid
            cell = Rect(col * cell_w, row * cell_h, (col + 1) * cell_w, (row + 1) * cell_h)
            assert cell.contains(Rect.from_tuple(county[-1]))

    def test_county_canvas_is_zoomed_state_canvas(self):
        spec = USMapSpec(county_zoom=5.0)
        assert spec.county_canvas_width == spec.state_canvas_width * 5

    def test_generation_deterministic(self):
        spec = USMapSpec(seed=9)
        assert list(generate_states(spec)) == list(generate_states(spec))

    def test_load_usmap_builds_indexed_tables(self):
        database = Database()
        states, counties = load_usmap(database, USMapSpec())
        assert states.row_count == 49
        assert counties.row_count == 49 * 25
        assert states.find_index_on("bbox", kinds=("rtree",)) is not None
        assert counties.find_index_on("state_id") is not None


class TestEEG:
    SPEC = EEGSpec(channels=2, sample_rate_hz=32.0, duration_s=60.0, epoch_s=30.0)

    def test_channel_length_and_amplitude(self):
        signal = generate_channel(self.SPEC, 0)
        assert len(signal) == self.SPEC.samples_per_channel
        assert np.abs(signal).max() <= self.SPEC.amplitude_uv + 1e-9

    def test_channels_differ(self):
        assert not np.array_equal(
            generate_channel(self.SPEC, 0), generate_channel(self.SPEC, 1)
        )

    def test_samples_rows_shape(self):
        rows = list(generate_samples(self.SPEC))
        assert len(rows) == self.SPEC.channels * self.SPEC.samples_per_channel
        sample = rows[0]
        assert len(sample) == 5
        assert isinstance(sample[-1], tuple) and len(sample[-1]) == 4

    def test_epoch_features_counts_and_positive_power(self):
        rows = list(generate_epoch_features(self.SPEC))
        assert len(rows) == self.SPEC.channels * self.SPEC.epochs
        for row in rows:
            delta, theta, alpha, spindle = row[3:7]
            assert delta >= 0 and theta >= 0 and alpha >= 0 and spindle >= 0
            # Sleep-like synthetic signal: delta dominates the mixture.
            assert delta >= alpha

    def test_load_eeg_builds_tables(self):
        database = Database()
        samples, epochs = load_eeg(database, self.SPEC)
        assert samples.row_count == self.SPEC.channels * self.SPEC.samples_per_channel
        assert epochs.row_count == self.SPEC.channels * self.SPEC.epochs
        assert samples.find_index_on("bbox", kinds=("rtree",)) is not None
