"""`unwrap` / `stack_layers` traversal over every serving topology.

The static analyser (`repro.analysis`) and every debugging session reason
about composed stacks through :func:`repro.serving.stack_layers` and
:func:`repro.serving.unwrap`; these tests pin the traversal order for each
topology the factory can build — threads/wire/processes × replicas — to the
layer diagram in ROADMAP.md, so the linter's model of the stack and the
stack itself cannot drift apart silently.
"""

from __future__ import annotations

from repro.bench.apps import build_dots_backend, default_config
from repro.cluster import ClusterRouter
from repro.datagen.synthetic import tiny_spec
from repro.server.backend import KyrixBackend
from repro.serving import (
    MetricsService,
    build_service,
    stack_layers,
    unwrap,
)
from repro.serving.middleware import CachingService, SerializedService
from repro.serving.replica import ReplicaService
from repro.serving.transport import RemoteBackendStub, TransportService

SHARDS = 2
REPLICAS = 2


def _cluster_stack(**overrides):
    spec = tiny_spec("uniform", num_points=400, seed=11)
    config = default_config(viewport=256)
    stack = build_dots_backend(spec, config=config)
    service = build_service(
        config,
        backend=stack.backend,
        precompute=False,
        shard_count=SHARDS,
        **overrides,
    )
    return service


def _layer_types(service):
    return [type(layer).__name__ for layer in stack_layers(service)]


class TestSingleBackendTopology:
    def test_plain_backend_is_the_terminal_stack(self):
        spec = tiny_spec("uniform", num_points=400, seed=11)
        stack = build_dots_backend(spec, config=default_config(viewport=256))
        assert _layer_types(stack.service) == ["KyrixBackend"]
        assert unwrap(stack.service) is stack.backend
        assert unwrap(stack.service, KyrixBackend) is stack.backend
        assert unwrap(stack.service, ClusterRouter) is None

    def test_metrics_wrapper_sits_outermost(self):
        spec = tiny_spec("uniform", num_points=400, seed=11)
        stack = build_dots_backend(spec, config=default_config(viewport=256))
        service = build_service(
            stack.backend.config, backend=stack.backend, precompute=False, metrics=True
        )
        assert _layer_types(service) == ["MetricsService", "KyrixBackend"]
        assert isinstance(unwrap(service, MetricsService), MetricsService)
        assert unwrap(service, KyrixBackend) is stack.backend


class TestThreadTopologies:
    def test_threads_single_replica_without_wire(self):
        service = _cluster_stack(wire_shards=False)
        try:
            # ROADMAP: ClusterRouter -> per shard SerializedService -> engine.
            assert _layer_types(service) == (
                ["ClusterRouter"] + ["SerializedService", "KyrixBackend"] * SHARDS
            )
            assert unwrap(service, ClusterRouter) is service
            assert unwrap(service, TransportService) is None
        finally:
            service.close()

    def test_threads_single_replica_with_wire(self):
        service = _cluster_stack(wire_shards=True)
        try:
            # The wire hop sits above each shard's serialization lock.
            assert _layer_types(service) == (
                ["ClusterRouter"]
                + ["TransportService", "SerializedService", "KyrixBackend"] * SHARDS
            )
        finally:
            service.close()

    def test_threads_replicated_per_replica_stacks(self):
        service = _cluster_stack(wire_shards=True, replicas=REPLICAS)
        try:
            per_replica = ["TransportService", "CachingService", "SerializedService",
                           "_BackendQueryService"]
            assert _layer_types(service) == (
                ["ClusterRouter"]
                + (["ReplicaService"] + per_replica * REPLICAS) * SHARDS
            )
            replica_layer = unwrap(service, ReplicaService)
            assert isinstance(replica_layer, ReplicaService)
            assert len(replica_layer.children) == REPLICAS
            # Digging *through* the replica set reaches a replica's cache.
            assert isinstance(unwrap(service, CachingService), CachingService)
        finally:
            service.close()

    def test_replicas_share_the_shard_engine(self):
        service = _cluster_stack(wire_shards=False, replicas=REPLICAS)
        try:
            router = unwrap(service, ClusterRouter)
            for shard, branch in zip(router.shards, router.children):
                serialized = [
                    layer
                    for layer in stack_layers(branch)
                    if isinstance(layer, SerializedService)
                ]
                assert len(serialized) == REPLICAS
                # Replica branches are independent stacks over one index.
                engines = {id(layer.inner.backend) for layer in serialized}
                assert engines == {id(shard.backend)}
        finally:
            service.close()


class TestProcessTopologies:
    def test_processes_single_replica(self):
        service = _cluster_stack(worker_mode="processes")
        try:
            # The stub is the terminal parent-side layer: the rest of the
            # stack (LocalTransport -> CachingService -> SerializedService
            # over the worker's own rebuilt KyrixBackend) lives across the
            # process boundary and is invisible to traversal by design.
            assert _layer_types(service) == (
                ["ClusterRouter"] + ["RemoteBackendStub"] * SHARDS
            )
            assert unwrap(service, RemoteBackendStub) is service.children[0]
            assert unwrap(service, KyrixBackend) is None
        finally:
            service.close()

    def test_processes_replicated(self):
        service = _cluster_stack(worker_mode="processes", replicas=REPLICAS)
        try:
            assert _layer_types(service) == (
                ["ClusterRouter"]
                + (["ReplicaService"] + ["RemoteBackendStub"] * REPLICAS) * SHARDS
            )
        finally:
            service.close()


class TestTraversalContract:
    def test_stack_layers_is_preorder_first_branch_first(self):
        service = _cluster_stack(wire_shards=True)
        try:
            layers = stack_layers(service)
            assert layers[0] is service
            router = unwrap(service, ClusterRouter)
            first_branch = router.children[0]
            assert layers[1] is first_branch
            # unwrap(kind=None) lands on the first branch's terminal layer.
            terminal = unwrap(service)
            assert isinstance(terminal, KyrixBackend)
            assert terminal is stack_layers(first_branch)[-1]
        finally:
            service.close()
