"""Thread-safety regressions: cache, link and clock accounting under load.

Before the serving redesign, ``LRUCache`` and ``SimulatedLink`` updated
their counters without locks; concurrent sessions (the cluster's normal
traffic) silently lost increments.  These tests hammer the shared objects
from many threads and assert the counter identities hold *exactly* — a
single lost update fails them.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import NetworkConfig
from repro.metrics.timer import VirtualClock
from repro.net.link import SimulatedLink
from repro.net.protocol import DataRequest
from repro.server.cache import LRUCache
from repro.serving import (
    CachingService,
    FaultSchedule,
    MetricsService,
    SerializedService,
    fault_replica,
)


THREADS = 8
ROUNDS = 400


def _hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors[0]


class TestLRUCacheConcurrency:
    def test_hit_miss_accounting_is_exact(self):
        cache: LRUCache[int] = LRUCache(capacity=32)

        def worker(index):
            for round_ in range(ROUNDS):
                key = (index * ROUNDS + round_) % 48  # more keys than capacity
                if cache.get(key) is None:
                    cache.put(key, round_)

        _hammer(worker)
        lookups = THREADS * ROUNDS
        assert cache.stats.hits + cache.stats.misses == lookups
        assert len(cache) <= 32
        # Every insert either still resides in the cache or was evicted.
        assert cache.stats.inserts - cache.stats.evictions == len(cache)

    def test_concurrent_resize_keeps_capacity_invariant(self):
        cache: LRUCache[int] = LRUCache(capacity=64)

        def worker(index):
            for round_ in range(ROUNDS):
                cache.put((index, round_), round_)
                if round_ % 97 == 0:
                    cache.capacity = 16 + (round_ % 3) * 16
        _hammer(worker)
        assert len(cache) <= cache.capacity
        assert cache.stats.inserts - cache.stats.evictions == len(cache)


class TestSimulatedLinkConcurrency:
    def test_traffic_counters_are_exact(self):
        link = SimulatedLink(NetworkConfig(rtt_ms=1.0, bandwidth_mbps=1000.0))
        payload = 1024

        def worker(index):
            for _ in range(ROUNDS):
                link.charge_request(payload)

        _hammer(worker)
        total = THREADS * ROUNDS
        assert link.stats.requests == total
        assert link.stats.bytes_transferred == total * (
            payload + link.config.request_overhead_bytes
        )
        expected_ms = link.round_trip_ms(payload) * total
        assert link.stats.simulated_ms == pytest.approx(expected_ms)
        # The virtual clock saw every charge, too.
        assert link.clock.now_ms == pytest.approx(expected_ms)


class TestVirtualClockConcurrency:
    def test_advances_never_lost(self):
        clock = VirtualClock()

        def worker(index):
            for _ in range(ROUNDS):
                clock.advance(0.25)

        _hammer(worker)
        assert clock.now_ms == pytest.approx(0.25 * THREADS * ROUNDS)


class TestConcurrentSessionsThroughSharedStack:
    def test_shared_caching_service_accounts_every_request(self, dots_stack, box_request):
        """The satellite regression: concurrent sessions over one shared stack."""
        backend = dots_stack.backend
        backend.cache.clear()
        backend.cache.stats.reset()
        shared = CachingService(
            SerializedService(backend.query_service()), entries=64
        )
        responses_per_thread = 50

        def worker(index):
            for _ in range(responses_per_thread):
                response = shared.handle(box_request)
                assert response.objects, "shared stack returned an empty payload"

        _hammer(worker)
        lookups = THREADS * responses_per_thread
        stats = shared.cache.stats
        assert stats.hits + stats.misses == lookups
        # At least one miss (the first fetch); at most one fetch per thread
        # can race past the cache before the first insert lands.
        assert 1 <= stats.misses <= THREADS
        assert stats.hits >= lookups - THREADS


class TestReplicatedClusterConcurrency:
    """The replica satellite: hammer a 2-shard × 2-replica cluster with
    faults injected and assert in-flight accounting, payload integrity and
    exact counter identities all survive."""

    def test_faulted_cluster_under_concurrent_sessions(self, dots_stack):
        from repro.cluster import build_cluster

        cluster = build_cluster(
            dots_stack.backend,
            shard_count=2,
            replicas=2,
            replica_policy="least_inflight",
            # Per-request identities below need every request to really
            # scatter: no router cache, no coalescing.
            coalescing=False,
        )
        cluster.router.cache.capacity = 0
        service = MetricsService(cluster.router)
        try:
            # Replica 0 of every shard fails each request (dead replicas).
            for layer in cluster.router.replica_sets().values():
                fault_replica(layer, 0, FaultSchedule.fail_always())
            plan = dots_stack.compiled.canvas_plan("dots")
            requests = [
                DataRequest(
                    app_name=dots_stack.compiled.app_name, canvas_id="dots",
                    layer_index=0, granularity="box",
                    xmin=7.0 * i, ymin=5.0 * i,
                    xmax=min(7.0 * i + 420.0, plan.width),
                    ymax=min(5.0 * i + 420.0, plan.height),
                )
                for i in range(6)
            ]
            expected = {
                req.cache_key(): sorted(
                    o["tuple_id"] for o in dots_stack.backend.handle(req).objects
                )
                for req in requests
            }
            rounds = 12

            def worker(index):
                for _ in range(rounds):
                    for req in requests:
                        response = service.handle(req)
                        got = sorted(o["tuple_id"] for o in response.objects)
                        # Interleaving corruption would show up as another
                        # request's (or a partial) payload.
                        assert got == expected[req.cache_key()]

            _hammer(worker)

            issued = THREADS * rounds * len(requests)
            # Exact MetricsCollector totals: no lost increments anywhere.
            assert service.metrics.requests == issued
            assert len(service.metrics.collector) == issued
            assert cluster.router.stats.requests == issued
            for shard_id, layer in cluster.router.replica_sets().items():
                # All in-flight counters drained back to zero.
                assert layer.inflight == [0, 0]
                stats = layer.stats
                # The dead replica never answered; every scatter that
                # reached this shard succeeded on replica 1, exactly once.
                assert stats.failures_for(0) == stats.requests_for(0)
                assert stats.failures_for(1) == 0
                assert stats.requests_for(1) == (
                    cluster.router.stats.per_shard_requests.get(shard_id, 0)
                )
                # The router's attribution mirrors the replica set's own.
                router_stats = cluster.router.stats
                assert router_stats.per_replica_requests.get(
                    f"shard{shard_id}/replica1", 0
                ) == stats.requests_for(1)
                assert router_stats.per_replica_failures.get(
                    f"shard{shard_id}/replica0", 0
                ) == stats.failures_for(0)
        finally:
            cluster.close()
