"""Fixtures for the serving-API tests: one small precomputed dots stack."""

from __future__ import annotations

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.datagen.synthetic import tiny_spec
from repro.net.protocol import DataRequest


@pytest.fixture(scope="module")
def dots_stack():
    return build_dots_backend(
        tiny_spec("uniform", num_points=2_000, seed=7),
        config=default_config(viewport=512),
    )


@pytest.fixture()
def box_request(dots_stack):
    return DataRequest(
        app_name=dots_stack.compiled.app_name,
        canvas_id="dots",
        layer_index=0,
        granularity="box",
        xmin=0.0,
        ymin=0.0,
        xmax=700.0,
        ymax=700.0,
    )
