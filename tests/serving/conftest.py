"""Fixtures for the serving-API tests: one small precomputed dots stack.

With ``REPRO_LOCKWATCH=1`` in the environment (CI sets it on the smoke
jobs) the whole suite — notably the concurrency hammers in
``test_concurrency.py`` — runs under :mod:`repro.analysis.lockwatch`:
every lock created after session start is instrumented, the global
lock-acquisition-order graph accumulates across tests, and each test ends
by verifying the graph is acyclic with no unguarded-write violations.
"""

from __future__ import annotations

import pytest

from repro.analysis import lockwatch
from repro.bench.apps import build_dots_backend, default_config
from repro.datagen.synthetic import tiny_spec
from repro.net.protocol import DataRequest


@pytest.fixture(scope="session", autouse=True)
def _lockwatch_session():
    if not lockwatch.watching_requested() or lockwatch.installed():
        yield None
        return
    watch = lockwatch.install()
    try:
        yield watch
    finally:
        lockwatch.uninstall()
        watch.verify()


@pytest.fixture(autouse=True)
def _lockwatch_verify(_lockwatch_session):
    yield
    if _lockwatch_session is not None:
        _lockwatch_session.verify()


@pytest.fixture(scope="module")
def dots_stack():
    return build_dots_backend(
        tiny_spec("uniform", num_points=2_000, seed=7),
        config=default_config(viewport=512),
    )


@pytest.fixture()
def box_request(dots_stack):
    return DataRequest(
        app_name=dots_stack.compiled.app_name,
        canvas_id="dots",
        layer_index=0,
        granularity="box",
        xmin=0.0,
        ymin=0.0,
        xmax=700.0,
        ymax=700.0,
    )
