"""Replica sets under injected faults: failover, breaker, attribution.

Every failure in this suite is injected through the first-class fault seam
(``repro.serving.faults``) — deterministic schedules, virtual-clock latency
— so the failure paths are exercised without monkeypatching or sleeping.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster import build_cluster
from repro.errors import AllReplicasFailedError, ReplicaTimeoutError
from repro.metrics.timer import VirtualClock
from repro.net.protocol import DataRequest, DataResponse
from repro.serving import (
    FaultInjectingService,
    FaultInjectingTransport,
    FaultRule,
    FaultSchedule,
    InjectedFaultError,
    ReplicaService,
    fault_replica,
    unwrap,
)


class ScriptedService:
    """A deterministic in-memory replica: objects derived from the request."""

    def __init__(self, marker: str = "scripted") -> None:
        self.marker = marker
        self.calls = 0
        self.closed = False

    compiled = None
    config = None
    stats = None

    def _objects(self, request: DataRequest) -> list[dict]:
        return [
            {"tuple_id": i, "xmin": request.xmin, "source": "replica"}
            for i in range(3)
        ]

    def handle(self, request: DataRequest) -> DataResponse:
        self.calls += 1
        return DataResponse(
            request=request, objects=self._objects(request), query_ms=1.0,
            queries_issued=1,
        )

    def warm(self, request: DataRequest) -> None:
        self.calls += 1

    def canvas_info(self, canvas_id: str) -> dict:
        self.calls += 1
        return {"canvas_id": canvas_id, "marker": self.marker}

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        self.calls += 1
        return 0.5

    def close(self) -> None:
        self.closed = True


def _box(i: int = 0) -> DataRequest:
    return DataRequest(
        app_name="scripted", canvas_id="c", layer_index=0, granularity="box",
        xmin=float(i), ymin=0.0, xmax=float(i) + 10.0, ymax=10.0,
    )


from tests.cluster.conftest import payload_bytes as _payload_bytes  # noqa: E402


class TestFaultSchedule:
    def test_fail_nth_hits_exactly_one_call(self):
        schedule = FaultSchedule.fail_nth(2)
        hits = [bool(schedule.consult("handle")) for _ in range(5)]
        assert hits == [False, False, True, False, False]
        assert schedule.injected == 1

    def test_fail_first_clears_after_count(self):
        schedule = FaultSchedule.fail_first(3)
        hits = [bool(schedule.consult("handle")) for _ in range(5)]
        assert hits == [True, True, True, False, False]

    def test_per_op_counters_are_independent(self):
        schedule = FaultSchedule.fail_nth(0, op="handle")
        assert not schedule.consult("warm")
        assert schedule.consult("handle")
        assert schedule.calls("handle") == 1
        assert schedule.calls("warm") == 1

    def test_rule_validation(self):
        from repro.errors import KyrixError

        with pytest.raises(KyrixError):
            FaultRule(kind="explode")
        with pytest.raises(KyrixError):
            FaultRule(kind="error", start=-1)


class TestFaultInjectingService:
    def test_error_fault_raises_without_touching_inner(self):
        inner = ScriptedService()
        faulty = FaultInjectingService(inner, FaultSchedule.fail_always())
        with pytest.raises(InjectedFaultError):
            faulty.handle(_box())
        assert inner.calls == 0

    def test_latency_fault_advances_the_virtual_clock(self):
        clock = VirtualClock()
        faulty = FaultInjectingService(
            ScriptedService(), FaultSchedule.slow(120.0), clock=clock
        )
        response = faulty.handle(_box())
        assert clock.now_ms == pytest.approx(120.0)
        assert response.objects  # slow, but correct

    def test_corruption_fault_returns_wrong_payload(self):
        faulty = FaultInjectingService(ScriptedService(), FaultSchedule.corrupt_nth(0))
        corrupted = faulty.handle(_box())
        assert corrupted.objects == [{"tuple_id": -1, "corrupted": True}]
        clean = faulty.handle(_box())
        assert clean.objects[0]["source"] == "replica"


class TestFaultInjectingTransport:
    def test_error_fault_raises_before_delivery(self):
        from repro.serving.transport import LocalTransport

        class _Recorder:
            def __init__(self):
                self.delivered = 0

            def roundtrip(self, payload):
                self.delivered += 1
                return '{"ok": true, "result": null}'

            def close(self):
                pass

        inner = _Recorder()
        faulty = FaultInjectingTransport(inner, FaultSchedule.fail_always(op="roundtrip"))
        with pytest.raises(InjectedFaultError):
            faulty.roundtrip("{}")
        assert inner.delivered == 0

    def test_corruption_fault_garbles_the_reply(self):
        class _Echo:
            def roundtrip(self, payload):
                return '{"ok": true, "result": 1}'

            def close(self):
                pass

        faulty = FaultInjectingTransport(
            _Echo(), FaultSchedule([FaultRule(kind="corrupt", op="roundtrip")])
        )
        reply = faulty.roundtrip("{}")
        with pytest.raises(ValueError):
            json.loads(reply)


class TestFailover:
    def test_failover_masks_a_dead_replica(self):
        replicas = [ScriptedService("r0"), ScriptedService("r1")]
        service = ReplicaService(replicas, policy="round_robin")
        fault_replica(service, 0, FaultSchedule.fail_always())
        baseline = ReplicaService([ScriptedService("solo")])
        for i in range(6):
            assert _payload_bytes(service.handle(_box(i))) == _payload_bytes(
                baseline.handle(_box(i))
            )
        assert service.stats.failures_for(1) == 0
        assert service.stats.requests_for(1) == 6
        # Every attempt on the dead replica failed; the rest failed over.
        assert service.stats.failures_for(0) == service.stats.requests_for(0) > 0
        assert service.stats.failovers == service.stats.requests_for(0)

    def test_all_replicas_failed_carries_every_cause(self):
        replicas = [ScriptedService(), ScriptedService(), ScriptedService()]
        service = ReplicaService(replicas)
        for index in range(3):
            fault_replica(service, index, FaultSchedule.fail_always())
        with pytest.raises(AllReplicasFailedError) as excinfo:
            service.handle(_box())
        error = excinfo.value
        assert sorted(error.causes) == [0, 1, 2]
        assert all(isinstance(c, InjectedFaultError) for c in error.causes.values())
        assert error.attempts == 3
        for index in range(3):
            assert f"replica{index}" in str(error)
        assert service.stats.snapshot()["exhausted"] == 1

    def test_retry_limit_caps_attempts(self):
        replicas = [ScriptedService() for _ in range(4)]
        service = ReplicaService(replicas, retry_limit=2)
        for index in range(4):
            fault_replica(service, index, FaultSchedule.fail_always())
        with pytest.raises(AllReplicasFailedError) as excinfo:
            service.handle(_box())
        assert excinfo.value.attempts == 2
        assert len(excinfo.value.causes) == 2

    def test_timeout_counts_as_failure_and_fails_over(self):
        from repro.serving.replica import _affinity_hash

        clock = VirtualClock()
        replicas = [ScriptedService("slow"), ScriptedService("fast")]
        service = ReplicaService(
            replicas, policy="per_key_affinity", timeout_ms=50.0, clock=clock
        )
        # A key homed on replica 0, which the fault then makes slow.
        request = next(
            _box(i) for i in range(64)
            if _affinity_hash(_box(i).cache_key()) % 2 == 0
        )
        fault_replica(service, 0, FaultSchedule.slow(100.0), clock=clock)
        response = service.handle(request)
        assert response.objects[0]["source"] == "replica"
        assert service.stats.failures_for(0) == 1
        assert service.stats.requests_for(1) == 1
        # The slow attempt surfaced as a timeout, not a generic error.
        fault_replica(service, 1, FaultSchedule.fail_always())
        with pytest.raises(AllReplicasFailedError) as excinfo:
            service.handle(request)
        assert isinstance(excinfo.value.causes[0], ReplicaTimeoutError)

    def test_transport_level_faults_fail_over_too(self):
        from repro.bench.apps import build_dots_backend, default_config
        from repro.datagen.synthetic import tiny_spec
        from repro.serving.transport import TransportService

        stack = build_dots_backend(
            tiny_spec("uniform", num_points=300, seed=3),
            config=default_config(viewport=256),
        )
        request = DataRequest(
            app_name=stack.compiled.app_name, canvas_id="dots", layer_index=0,
            granularity="box", xmin=0.0, ymin=0.0, xmax=200.0, ymax=200.0,
        )
        healthy = TransportService(stack.backend.query_service())
        broken = TransportService(stack.backend.query_service())
        broken.stub.transport = FaultInjectingTransport(
            broken.transport, FaultSchedule([FaultRule(kind="corrupt", op="roundtrip")])
        )
        service = ReplicaService([broken, healthy], policy="round_robin")
        expected = stack.backend.handle(request)
        # Wire corruption on replica 0 is caught and failed over, every time.
        for _ in range(2):
            assert _payload_bytes(service.handle(request)) == _payload_bytes(expected)
        assert service.stats.failures_for(0) == service.stats.requests_for(0) > 0
        assert service.stats.failures_for(1) == 0


class TestCircuitBreaker:
    def _service(self, clock, threshold=2, reset_s=5.0):
        replicas = [ScriptedService("r0"), ScriptedService("r1")]
        service = ReplicaService(
            replicas,
            policy="round_robin",
            breaker_threshold=threshold,
            breaker_reset_s=reset_s,
            clock=clock,
        )
        injector = fault_replica(service, 0, FaultSchedule.fail_always(), clock=clock)
        return service, injector

    def test_breaker_opens_after_threshold_consecutive_failures(self):
        clock = VirtualClock()
        service, _ = self._service(clock, threshold=2)
        for i in range(8):
            service.handle(_box(i))
        assert service.breaker_open(0)
        # Exactly `threshold` attempts reached the dead replica; once the
        # breaker opened, traffic stopped.
        assert service.stats.requests_for(0) == 2
        assert service.stats.failures_for(0) == 2
        assert service.stats.snapshot()["breaker_opens"] == 1

    def test_breaker_admits_a_trial_after_reset_elapses(self):
        clock = VirtualClock()
        service, injector = self._service(clock, threshold=2, reset_s=5.0)
        for i in range(6):
            service.handle(_box(i))
        attempts_while_open = service.stats.requests_for(0)
        assert service.breaker_open(0)
        clock.advance(5_000.0)
        # The reset window elapsed on the virtual clock: exactly one trial
        # probe runs (and fails), re-opening the breaker with a fresh timer.
        service.handle(_box(100))
        service.handle(_box(101))
        assert service.stats.requests_for(0) == attempts_while_open + 1
        assert service.breaker_open(0)
        service.handle(_box(102))
        service.handle(_box(103))
        assert service.stats.requests_for(0) == attempts_while_open + 1

    def test_successful_trial_closes_the_breaker(self):
        clock = VirtualClock()
        service, injector = self._service(clock, threshold=2, reset_s=5.0)
        for i in range(4):
            service.handle(_box(i))
        assert service.breaker_open(0)
        # Heal the replica, let the reset window pass: the trial succeeds
        # and replica 0 rejoins the rotation.
        service.replicas[0] = injector.inner
        clock.advance(5_000.0)
        before = service.stats.requests_for(0)
        for i in range(6):
            service.handle(_box(200 + i))
        assert not service.breaker_open(0)
        assert service.stats.requests_for(0) > before
        # No new failures after the heal: the only failures on record are
        # the two that opened the breaker.
        assert service.stats.failures_for(0) == 2

    def test_open_breaker_admits_only_one_inflight_trial(self):
        clock = VirtualClock()
        service, injector = self._service(clock, threshold=1, reset_s=5.0)
        # One failure on the dead replica 0 opens its breaker (threshold=1);
        # the request itself is masked by failover to replica 1.
        service.handle(_box())
        assert service.breaker_open(0)

        started, release = threading.Event(), threading.Event()

        class _BlockingReplica(ScriptedService):
            def handle(self, request):
                started.set()
                assert release.wait(timeout=5.0)
                return super().handle(request)

        # Heal replica 0 behind a replica whose trial probe hangs mid-flight.
        blocking = _BlockingReplica("trial")
        service.replicas[0] = blocking
        clock.advance(5_000.0)

        trial = threading.Thread(target=service.handle, args=(_box(2),))
        trial.start()
        assert started.wait(timeout=5.0)
        # The trial probe is out: concurrent requests must keep avoiding the
        # open replica instead of piling more probes onto it.
        response = service.handle(_box(3))
        assert all(o["source"] == "replica" for o in response.objects)
        assert service.inflight == [1, 0]
        release.set()
        trial.join(timeout=5.0)
        assert not trial.is_alive()
        assert blocking.calls == 1
        # The probe settled successfully: the breaker closed.
        assert not service.breaker_open(0)

    def test_all_breakers_open_still_probes_instead_of_starving(self):
        clock = VirtualClock()
        replicas = [ScriptedService(), ScriptedService()]
        service = ReplicaService(
            replicas, breaker_threshold=1, breaker_reset_s=60.0, clock=clock
        )
        injectors = [
            fault_replica(service, index, FaultSchedule.fail_always(), clock=clock)
            for index in range(2)
        ]
        with pytest.raises(AllReplicasFailedError):
            service.handle(_box())
        assert service.breaker_open(0) and service.breaker_open(1)
        # Both breakers are open and cold, but a request must not be
        # rejected without any attempt: the set is probed as a last resort.
        service.replicas[0] = injectors[0].inner
        response = service.handle(_box(1))
        assert response.objects


class TestKillReplicaMidSession:
    """The satellite: kill replica 0 mid-session, payloads stay identical."""

    def test_byte_identical_to_single_replica_run(self, dots_stack):
        baseline = build_cluster(dots_stack.backend, shard_count=2, replicas=1)
        replicated = build_cluster(
            dots_stack.backend, shard_count=2, replicas=2,
            replica_policy="least_inflight",
        )
        try:
            requests = [
                DataRequest(
                    app_name=dots_stack.compiled.app_name, canvas_id="dots",
                    layer_index=0, granularity="box",
                    xmin=30.0 * i, ymin=20.0 * i,
                    xmax=30.0 * i + 400.0, ymax=20.0 * i + 400.0,
                )
                for i in range(10)
            ]
            # First half of the session: all replicas healthy.
            for request in requests[:5]:
                assert _payload_bytes(replicated.router.handle(request)) == (
                    _payload_bytes(baseline.router.handle(request))
                )
            # Kill replica 0 of every shard mid-session.
            for layer in replicated.router.replica_sets().values():
                fault_replica(layer, 0, FaultSchedule.fail_always())
            for request in requests[5:]:
                assert _payload_bytes(replicated.router.handle(request)) == (
                    _payload_bytes(baseline.router.handle(request))
                )
            stats = replicated.router.stats
            # Failures are attributed to replica 0 only.
            assert all(
                key.endswith("/replica0") for key in stats.per_replica_failures
            )
            assert sum(stats.per_replica_failures.values()) > 0
        finally:
            baseline.close()
            replicated.close()

    def test_unwrap_reaches_the_replica_layer(self, dots_stack):
        replicated = build_cluster(dots_stack.backend, shard_count=2, replicas=2)
        try:
            layer = unwrap(replicated.router, ReplicaService)
            assert isinstance(layer, ReplicaService)
            assert len(layer.replicas) == 2
            assert layer.children == tuple(layer.replicas)
        finally:
            replicated.close()
