"""The DataService protocol, the middleware stack and the build_service factory."""

from __future__ import annotations

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.cluster import ClusterRouter, build_cluster
from repro.client import ExplorationSession, KyrixFrontend
from repro.datagen.synthetic import tiny_spec
from repro.errors import KyrixError
from repro.serving import (
    CachingService,
    CoalescingService,
    DataService,
    MetricsService,
    ReplicaService,
    SerializedService,
    TransportService,
    build_service,
    stack_layers,
    unwrap,
)


class TestProtocol:
    def test_every_serving_endpoint_satisfies_the_protocol(self, dots_stack):
        backend = dots_stack.backend
        cluster = build_cluster(backend, shard_count=2)
        try:
            endpoints = [
                backend,
                cluster.router,
                CachingService(backend, entries=4),
                CoalescingService(backend),
                MetricsService(backend),
                SerializedService(backend),
                TransportService(backend),
                ReplicaService([backend.query_service(), backend.query_service()]),
            ]
            for endpoint in endpoints:
                assert isinstance(endpoint, DataService), type(endpoint).__name__
        finally:
            cluster.close()

    def test_middleware_forwards_metadata(self, dots_stack):
        stacked = MetricsService(CachingService(dots_stack.backend, entries=4))
        assert stacked.compiled is dots_stack.backend.compiled
        assert stacked.config is dots_stack.backend.config
        info = stacked.canvas_info("dots")
        assert info["canvas_id"] == "dots"
        assert stacked.layer_density("dots", 0) == dots_stack.backend.layer_density(
            "dots", 0
        )

    def test_unwrap_and_stack_layers(self, dots_stack):
        caching = CachingService(dots_stack.backend, entries=4)
        outer = MetricsService(caching)
        assert unwrap(outer, CachingService) is caching
        assert unwrap(outer, MetricsService) is outer
        assert unwrap(outer) is dots_stack.backend
        assert stack_layers(outer) == [outer, caching, dots_stack.backend]
        assert unwrap(outer, TransportService) is None

    def test_unwrap_traverses_into_multi_child_layers(self, dots_stack):
        # A replica layer holds several children; unwrap must both find the
        # layer itself and dig *through* it into a replica's stack.
        replica_a = CachingService(dots_stack.backend.query_service(), entries=2)
        replica_b = TransportService(dots_stack.backend.query_service())
        replica_layer = ReplicaService([replica_a, replica_b])
        outer = MetricsService(replica_layer)
        assert unwrap(outer, ReplicaService) is replica_layer
        assert replica_layer.replicas == [replica_a, replica_b]
        assert unwrap(outer, CachingService) is replica_a
        # The second branch is traversed too, not just the first.
        assert unwrap(outer, TransportService) is replica_b
        # kind=None still returns a terminal service (first branch).
        assert unwrap(outer) is unwrap(replica_a)

    def test_unwrap_negative_path_on_absent_layer_kinds(self, dots_stack):
        replica_layer = ReplicaService(
            [dots_stack.backend.query_service(), dots_stack.backend.query_service()]
        )
        outer = MetricsService(CachingService(replica_layer, entries=2))
        # Kinds absent from every branch of the stack come back as None.
        assert unwrap(outer, TransportService) is None
        assert unwrap(outer, SerializedService) is None
        assert unwrap(dots_stack.backend, ReplicaService) is None


class TestCachingService:
    def test_hit_returns_fresh_response_with_cached_objects(self, dots_stack, box_request):
        service = CachingService(dots_stack.backend.query_service(), entries=8)
        first = service.handle(box_request)
        assert first.from_cache is False
        second = service.handle(box_request)
        assert second.from_cache is True
        assert second.query_ms == 0.0
        assert second.queries_issued == 0
        assert second.objects == first.objects
        assert service.cache.stats.hits == 1

    def test_zero_entries_disables_caching(self, dots_stack, box_request):
        service = CachingService(dots_stack.backend.query_service(), entries=0)
        assert service.handle(box_request).from_cache is False
        assert service.handle(box_request).from_cache is False
        assert service.cache.stats.hits == 0

    def test_warm_populates_without_double_fetch(self, dots_stack, box_request):
        service = CachingService(dots_stack.backend.query_service(), entries=8)
        service.warm(box_request)
        assert service.cache.stats.inserts == 1
        service.warm(box_request)
        assert service.cache.stats.inserts == 1
        assert service.handle(box_request).from_cache is True


class TestMetricsService:
    def test_records_requests_and_hits(self, dots_stack, box_request):
        service = MetricsService(CachingService(dots_stack.backend.query_service(), entries=8))
        service.handle(box_request)
        service.handle(box_request)
        assert service.metrics.requests == 2
        assert service.metrics.cache_hits == 1
        assert len(service.metrics.collector) == 2
        snapshot = service.metrics.snapshot()
        assert snapshot["requests"] == 2
        # Measured wall-clock of handle(): strictly positive and in ms
        # (two sub-second calls can never sum past a minute).
        assert 0.0 < snapshot["handle_ms_total"] < 60_000.0
        assert snapshot["average_handle_ms"] == pytest.approx(
            snapshot["handle_ms_total"] / 2
        )
        # Modelled query time is reported separately from measured time.
        assert "average_query_ms" in snapshot
        service.metrics.reset()
        assert service.metrics.snapshot()["handle_ms_total"] == 0.0


class TestBackendFacade:
    def test_handle_composes_caching_middleware(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        backend.cache.stats.reset()
        before = backend.stats.requests
        fresh = backend.handle(box_request)
        hit = backend.handle(box_request)
        assert fresh.from_cache is False
        assert hit.from_cache is True
        assert backend.stats.requests == before + 2
        # The public cache attribute IS the middleware's cache.
        caching = unwrap(backend._service, CachingService)
        assert caching.cache is backend.cache

    def test_execute_bypasses_the_cache(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.handle(box_request)  # populate
        raw = backend.execute(box_request)
        assert raw.from_cache is False


class TestBuildService:
    def test_single_backend_when_cluster_disabled(self, dots_stack):
        service = build_service(dots_stack.backend.config, backend=dots_stack.backend)
        assert service is dots_stack.backend

    def test_cluster_router_when_enabled(self):
        spec = tiny_spec("uniform", num_points=1_000, seed=5)
        config = default_config(viewport=512)
        config.cluster.enabled = True
        config.cluster.shard_count = 2
        stack = build_dots_backend(spec, config=config)
        router = unwrap(stack.service, ClusterRouter)
        assert router is not None
        assert router.shard_count == 2
        assert stack.cluster is not None
        assert stack.cluster.router is router
        router.close()

    def test_shard_count_override_turns_sharding_on(self, dots_stack):
        service = build_service(
            dots_stack.backend.config, backend=dots_stack.backend, shard_count=2
        )
        router = unwrap(service, ClusterRouter)
        assert router is not None and router.shard_count == 2
        router.close()

    def test_replicas_override_builds_replica_sets(self, dots_stack):
        service = build_service(
            dots_stack.backend.config,
            backend=dots_stack.backend,
            shard_count=2,
            replicas=2,
            replica_policy="per_key_affinity",
        )
        router = unwrap(service, ClusterRouter)
        assert router is not None
        layer = unwrap(service, ReplicaService)
        assert layer is not None
        assert layer.replica_count == 2
        assert layer.policy == "per_key_affinity"
        assert set(router.replica_sets()) == {0, 1}
        assert router.describe()["replicas"] == 2
        router.close()

    def test_metrics_wrap(self, dots_stack, box_request):
        service = build_service(
            dots_stack.backend.config, backend=dots_stack.backend, metrics=True
        )
        assert isinstance(service, MetricsService)
        service.handle(box_request)
        assert service.metrics.requests == 1

    def test_requires_backend_or_database(self):
        with pytest.raises(KyrixError):
            build_service(default_config())

    def test_builds_and_precomputes_from_database_and_compiled(self):
        from repro.bench.apps import build_dots_application
        from repro.compiler import compile_application
        from repro.datagen.synthetic import load_dots
        from repro.storage.database import Database

        spec = tiny_spec("uniform", num_points=500, seed=9)
        config = default_config(viewport=256)
        database = Database(config.storage)
        load_dots(database, spec)
        compiled = compile_application(build_dots_application(spec, config))
        service = build_service(config, database=database, compiled=compiled)
        frontend = KyrixFrontend(service)
        frontend.load_initial_canvas()
        assert frontend.metrics.steps[0].requests >= 1
        # The factory precomputed the backend: a full-canvas box sees every dot.
        from repro.net.protocol import DataRequest

        full = service.handle(
            DataRequest(
                app_name=compiled.app_name,
                canvas_id="dots",
                layer_index=0,
                granularity="box",
                xmin=0.0,
                ymin=0.0,
                xmax=spec.canvas_width,
                ymax=spec.canvas_height,
            )
        )
        assert len(full.objects) == spec.num_points


class TestDeprecationShims:
    def test_frontend_backend_alias(self, dots_stack):
        frontend = KyrixFrontend(dots_stack.backend)
        with pytest.warns(DeprecationWarning, match="KyrixFrontend.backend"):
            alias = frontend.backend
        assert alias is frontend.service is dots_stack.backend

    def test_session_from_backend_alias(self, dots_stack):
        with pytest.warns(DeprecationWarning, match="from_backend"):
            session = ExplorationSession.from_backend(dots_stack.backend)
        assert session.frontend.service is dots_stack.backend

    def test_stack_serving_alias(self, dots_stack):
        with pytest.warns(DeprecationWarning, match="DotsStack.serving"):
            alias = dots_stack.serving
        assert alias is dots_stack.service

    def test_factory_built_endpoints_construct_silently(self, dots_stack):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            KyrixFrontend(dots_stack.backend)

    def test_hand_built_endpoint_warns(self, dots_stack):
        from repro.server.backend import KyrixBackend

        raw = KyrixBackend(  # repolint: disable=factory-only
            dots_stack.database, dots_stack.compiled, dots_stack.backend.config
        )
        raw.precompute()
        with pytest.warns(DeprecationWarning, match="hand-constructed KyrixBackend"):
            KyrixFrontend(raw)
