"""Chaos tests for process-based shard workers: kill them for real.

Unlike every other failure suite, nothing here is simulated: the worker is
an actual forked OS process and ``kill_worker`` (the
:mod:`repro.serving.faults` seam — no monkeypatching) sends it a real
SIGKILL.  The failure the stack must mask is a dead TCP endpoint —
connection refused / reset — surfacing as
:class:`~repro.errors.WorkerConnectionError`, which the replica layer
treats as fatal: the breaker opens on the first failed attempt and the
request fails over to a healthy replica with a byte-identical payload.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.errors import WorkerConnectionError, WorkerSpawnError
from repro.net.protocol import DataRequest
from repro.serving import ReplicaService, WorkerPool, kill_worker, unwrap
from repro.serving.worker import build_shard_spec

from tests.cluster.conftest import payload_bytes


def _box(stack, nudge: float = 0.0) -> DataRequest:
    """A full-canvas box (touches every shard); ``nudge`` defeats caches."""
    return DataRequest(
        app_name=stack.compiled.app_name,
        canvas_id="dots",
        layer_index=0,
        granularity="box",
        xmin=0.0,
        ymin=0.0,
        xmax=2000.0 + nudge,
        ymax=2000.0,
    )


@pytest.fixture()
def worker_cluster(dots_stack):
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, replicas=2, worker_mode="processes"
    )
    yield cluster
    cluster.close()


def test_killed_worker_fails_over_byte_identically(dots_stack, worker_cluster):
    # A fault-free single-replica thread cluster is the payload oracle (the
    # topology parity suite proves healthy topologies agree byte-for-byte).
    baseline = build_cluster(dots_stack.backend, shard_count=2, replicas=1)
    try:
        requests = [_box(dots_stack, i) for i in range(4)]
        expected = [payload_bytes(baseline.router.handle(r)) for r in requests]
        assert any(payload != b"[]" for payload in expected)

        handle = kill_worker(worker_cluster, shard_id=0, replica_index=0)
        assert not handle.alive

        degraded = [
            payload_bytes(worker_cluster.router.handle(r)) for r in requests
        ]
        assert degraded == expected, "failover changed the served payload"
    finally:
        baseline.close()


def test_worker_death_is_fatal_and_opens_the_breaker(dots_stack, worker_cluster):
    kill_worker(worker_cluster, shard_id=0, replica_index=0)
    # Drive traffic at shard 0 until the dead replica has been attempted.
    for i in range(4):
        worker_cluster.router.handle(_box(dots_stack, i + 1))
    replica_set = worker_cluster.router.replica_sets()[0]
    stats = worker_cluster.router.stats

    failures = stats.per_replica_failures.get("shard0/replica0", 0)
    # Fatal failure: the very first WorkerConnectionError opens the breaker
    # (breaker_threshold is 3, but a dead process earns no doomed retries),
    # and the open breaker shields the replica from further attempts.
    assert failures == 1, "expected exactly one fatal attempt at the dead worker"
    assert replica_set.breaker_open(0)
    # Every failure is attributed to the killed replica and nothing else.
    assert set(stats.per_replica_failures) == {"shard0/replica0"}
    assert replica_set.stats.failures_for(1) == 0


def test_single_replica_worker_death_surfaces_typed_error(dots_stack):
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, replicas=1, worker_mode="processes"
    )
    try:
        assert cluster.router.handle(_box(dots_stack)).objects
        kill_worker(cluster, shard_id=0)
        with pytest.raises(WorkerConnectionError):
            cluster.router.handle(_box(dots_stack, 1.0))
    finally:
        cluster.close()


def test_close_drains_after_a_kill(dots_stack, worker_cluster):
    worker_cluster.router.handle(_box(dots_stack))
    kill_worker(worker_cluster, shard_id=1, replica_index=1)
    worker_cluster.close()
    assert all(not handle.alive for handle in worker_cluster.worker_pool.handles)
    # Idempotent: a second close (the fixture's) must be a no-op.
    worker_cluster.close()


def test_unwrap_reaches_replica_sets_in_process_topology(worker_cluster):
    replica_layer = unwrap(worker_cluster.router, ReplicaService)
    assert isinstance(replica_layer, ReplicaService)
    assert replica_layer.replica_count == 2


def test_worker_spawn_failure_is_typed_and_cleans_up(dots_stack):
    shard = build_shard_spec(
        dots_stack.database,
        dots_stack.compiled,
        dots_stack.backend.config,
        shard_id=0,
    )
    # Two workers racing for the same fixed port: the second cannot bind,
    # reports the failure, and start() fails with a typed error after
    # tearing the first worker down again.
    import socket

    blocker = socket.create_server(("127.0.0.1", 0))
    port = blocker.getsockname()[1]
    try:
        pool = WorkerPool([shard], port_base=port, spawn_timeout_s=5.0)
        with pytest.raises(WorkerSpawnError):
            pool.start()
        assert pool.handles == []
    finally:
        blocker.close()
