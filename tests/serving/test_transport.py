"""Wire-level transport: encode -> decode -> handle -> encode -> decode parity."""

from __future__ import annotations

import json

import pytest

from repro.net.link import SimulatedLink
from repro.net.protocol import DataRequest
from repro.serving import (
    LocalTransport,
    RemoteBackendStub,
    TransportError,
    TransportService,
)
from repro.serving.transport import encode_envelope


class TestTransportParity:
    def test_cached_roundtrip_equals_in_process_exactly(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        backend.handle(box_request)  # populate the backend cache
        in_process = backend.handle(box_request)
        assert in_process.from_cache is True  # deterministic (query_ms == 0)
        wire = TransportService(backend).handle(box_request)
        assert wire == in_process

    def test_fresh_roundtrip_carries_identical_payload(self, dots_stack, box_request):
        backend = dots_stack.backend
        service = TransportService(backend)
        backend.cache.clear()
        wire = service.handle(box_request)
        backend.cache.clear()
        in_process = backend.handle(box_request)
        # Timings are measurements and may differ; the data-bearing fields
        # must be identical — including tuple-typed columns like bbox.
        assert wire.request == in_process.request
        assert wire.objects == in_process.objects
        assert wire.queries_issued == in_process.queries_issued
        assert json.dumps(wire.objects, sort_keys=True) == json.dumps(
            in_process.objects, sort_keys=True
        )

    def test_objects_keep_canonical_tuple_columns(self, dots_stack, box_request):
        dots_stack.backend.cache.clear()
        wire = TransportService(dots_stack.backend).handle(box_request)
        assert wire.objects, "the parity box should not be empty"
        for obj in wire.objects:
            assert isinstance(obj["bbox"], tuple)

    def test_metadata_calls_cross_the_wire(self, dots_stack):
        backend = dots_stack.backend
        service = TransportService(backend)
        assert service.canvas_info("dots") == backend.canvas_info("dots")
        assert service.layer_density("dots", 0) == pytest.approx(
            backend.layer_density("dots", 0)
        )

    def test_warm_populates_the_far_side_cache(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        TransportService(backend).warm(box_request)
        assert backend.cache.peek(box_request.cache_key()) is not None


class TestTransportFaults:
    def test_server_errors_reraise_client_side(self, dots_stack):
        service = TransportService(dots_stack.backend)
        bad = DataRequest(
            app_name="dots",
            canvas_id="no-such-canvas",
            layer_index=0,
            granularity="box",
            xmin=0.0,
            ymin=0.0,
            xmax=1.0,
            ymax=1.0,
        )
        with pytest.raises(TransportError, match="no-such-canvas"):
            service.handle(bad)

    def test_unknown_operation_is_a_wire_fault(self, dots_stack):
        transport = LocalTransport(dots_stack.backend)
        reply = json.loads(transport.roundtrip(encode_envelope("explode", {})))
        assert reply["ok"] is False
        assert "explode" in reply["error"]["message"]

    def test_garbage_payload_is_a_wire_fault(self, dots_stack):
        transport = LocalTransport(dots_stack.backend)
        reply = json.loads(transport.roundtrip("not json at all"))
        assert reply["ok"] is False


class TestStubAndLink:
    def test_stub_serves_a_frontend_end_to_end(self, dots_stack):
        from repro.client import KyrixFrontend

        backend = dots_stack.backend
        stub = RemoteBackendStub(
            LocalTransport(backend), backend.compiled, backend.config
        )
        frontend = KyrixFrontend(stub)
        frontend.load_initial_canvas()
        frontend.pan_by(256.0, 0.0)
        assert frontend.metrics.total_requests() >= 1

    def test_link_charges_shard_boundary_traffic(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        link = SimulatedLink(backend.config.network)
        service = TransportService(backend, link=link)
        response = service.handle(box_request)
        assert response.objects
        assert link.stats.requests == 1
        # The charged payload is the real reply encoding (binary columnar
        # under the default codec) plus the link's per-request overhead;
        # the stub's own wire accounting sees the same reply plus the
        # 4-byte frame header.
        wire = service.stub.wire_stats
        assert wire.calls == 1
        reply_bytes = wire.bytes_received - 4
        assert link.stats.bytes_transferred == (
            reply_bytes + backend.config.network.request_overhead_bytes
        )
        assert service.stats is link.stats

    def test_json_pinned_link_charges_the_json_reply(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        link = SimulatedLink(backend.config.network)
        service = TransportService(backend, link=link, codecs=("json",))
        response = service.handle(box_request)
        # Under the pinned JSON codec the charged reply wraps the full
        # serialized objects, so it is at least that large.
        assert link.stats.bytes_transferred > len(
            json.dumps(response.objects).encode()
        )

    def test_binary_reply_is_smaller_than_json(self, dots_stack, box_request):
        backend = dots_stack.backend
        backend.cache.clear()
        binary_link = SimulatedLink(backend.config.network)
        TransportService(backend, link=binary_link, codecs=("binary",)).handle(
            box_request
        )
        backend.cache.clear()
        json_link = SimulatedLink(backend.config.network)
        TransportService(backend, link=json_link, codecs=("json",)).handle(
            box_request
        )
        assert (
            binary_link.stats.bytes_transferred < json_link.stats.bytes_transferred
        )
