"""Injected faults must be visible in traces, not just in counters."""

from __future__ import annotations

import pytest

from repro.net.protocol import DataRequest, DataResponse
from repro.serving.faults import (
    FaultInjectingService,
    FaultInjectingTransport,
    FaultSchedule,
    InjectedFaultError,
)


def _request() -> DataRequest:
    return DataRequest(
        app_name="app", canvas_id="c", layer_index=0, granularity="box",
        xmin=0.0, ymin=0.0, xmax=1.0, ymax=1.0,
    )


class _EchoService:
    def handle(self, request):
        return DataResponse(request=request, objects=[], query_ms=0.0,
                            from_cache=False, queries_issued=0)


class _EchoTransport:
    def roundtrip(self, payload: str) -> str:
        return payload

    def close(self) -> None:
        pass


def _fault_events(tracer):
    events = []
    for trace in tracer.traces():
        for span in trace["spans"]:
            for event in span["events"]:
                if event["name"] == "fault_injected":
                    events.append((span["name"], event))
    return events


class TestServiceSeam:
    def test_error_fault_is_an_event_on_the_open_span(self, tracer):
        injector = FaultInjectingService(_EchoService(), FaultSchedule.fail_nth(0))
        with pytest.raises(InjectedFaultError):
            with tracer.span("replica_attempt", replica=0):
                injector.handle(_request())
        ((span_name, event),) = _fault_events(tracer)
        assert span_name == "replica_attempt"
        assert event["seam"] == "service"
        assert event["kind"] == "error"
        assert event["op"] == "handle"

    def test_latency_fault_records_its_milliseconds(self, tracer):
        class _Clock:
            def advance(self, ms):
                pass

        injector = FaultInjectingService(
            _EchoService(), FaultSchedule.slow(25.0), clock=_Clock()
        )
        with tracer.span("replica_attempt"):
            injector.handle(_request())
        ((_, event),) = _fault_events(tracer)
        assert event["kind"] == "latency"
        assert event["latency_ms"] == 25.0

    def test_no_fault_means_no_event(self, tracer):
        injector = FaultInjectingService(_EchoService(), FaultSchedule())
        with tracer.span("replica_attempt"):
            injector.handle(_request())
        assert _fault_events(tracer) == []


class TestTransportSeam:
    def test_transport_faults_are_events_too(self, tracer):
        injector = FaultInjectingTransport(
            _EchoTransport(), FaultSchedule.fail_nth(0, op="roundtrip")
        )
        with pytest.raises(InjectedFaultError):
            with tracer.span("rpc", op="handle"):
                injector.roundtrip("{}")
        ((span_name, event),) = _fault_events(tracer)
        assert span_name == "rpc"
        assert event["seam"] == "transport"
        assert event["kind"] == "error"

    def test_disabled_tracing_injects_without_events(self, disabled_tracer):
        injector = FaultInjectingTransport(
            _EchoTransport(), FaultSchedule.fail_nth(0, op="roundtrip")
        )
        with pytest.raises(InjectedFaultError):
            injector.roundtrip("{}")
        assert disabled_tracer.traces() == []
