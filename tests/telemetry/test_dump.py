"""Tests for the ``python -m repro.telemetry.dump`` trace viewer."""

from __future__ import annotations

import io
import json

from repro.telemetry.dump import (
    dump_slowest,
    format_trace,
    load_traces,
    main,
    root_spans,
    trace_duration_ms,
)


def _span(name, span_id, parent_id=None, duration_ms=1.0, start=0.0, **attrs):
    return {
        "name": name,
        "trace_id": "t1",
        "span_id": span_id,
        "parent_id": parent_id,
        "start_unix_ms": start,
        "duration_ms": duration_ms,
        "attributes": attrs,
        "events": [],
    }


def _trace(trace_id, root_ms):
    return {
        "trace_id": trace_id,
        "spans": [
            _span("request", "a", duration_ms=root_ms),
            _span("scatter", "b", parent_id="a", duration_ms=root_ms * 0.9,
                  start=1.0),
            _span("shard", "c", parent_id="b", duration_ms=root_ms * 0.8,
                  start=2.0, shard_id=0),
        ],
    }


class TestLoading:
    def test_load_skips_blank_and_malformed_lines(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        path.write_text(
            json.dumps(_trace("t1", 5.0))
            + "\n\nnot json at all\n"
            + json.dumps({"no": "spans"})
            + "\n"
            + json.dumps(_trace("t2", 1.0))
            + "\n"
        )
        traces = load_traces(str(path))
        assert [t["trace_id"] for t in traces] == ["t1", "t2"]

    def test_root_spans_and_duration(self):
        trace = _trace("t1", 7.5)
        roots = root_spans(trace)
        assert [s["name"] for s in roots] == ["request"]
        assert trace_duration_ms(trace) == 7.5


class TestRendering:
    def test_format_trace_indents_children_under_parents(self):
        text = format_trace(_trace("t1", 5.0))
        lines = text.splitlines()
        assert lines[0].startswith("trace t1")
        request_line = next(l for l in lines if "request" in l)
        scatter_line = next(l for l in lines if "scatter" in l)
        shard_line = next(l for l in lines if "shard" in l)
        indent = lambda line: len(line) - len(line.lstrip())
        assert indent(request_line) < indent(scatter_line) < indent(shard_line)
        assert "shard_id=0" in shard_line

    def test_events_render_under_their_span(self):
        trace = _trace("t1", 5.0)
        trace["spans"][2]["events"] = [
            {"name": "fault_injected", "offset_ms": 0.5, "kind": "error"}
        ]
        text = format_trace(trace)
        assert "* event fault_injected @ 0.5 ms" in text

    def test_dump_slowest_ranks_by_root_duration(self):
        stream = io.StringIO()
        traces = [_trace("fast", 1.0), _trace("slow", 9.0), _trace("mid", 5.0)]
        shown = dump_slowest(traces, top=2, stream=stream)
        output = stream.getvalue()
        assert shown == 2
        assert output.index("trace slow") < output.index("trace mid")
        assert "trace fast" not in output

    def test_dump_slowest_min_ms_filters(self):
        stream = io.StringIO()
        shown = dump_slowest(
            [_trace("fast", 1.0), _trace("slow", 9.0)], min_ms=5.0, stream=stream
        )
        assert shown == 1


class TestCLI:
    def test_main_reads_an_export(self, tmp_path, capsys):
        path = tmp_path / "traces.jsonl"
        path.write_text(json.dumps(_trace("t1", 5.0)) + "\n")
        assert main([str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 traces loaded" in out
        assert "trace t1" in out

    def test_main_fails_on_an_empty_export(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 1
