"""Fixtures for the telemetry tests.

The tracer and registry are process-wide singletons; every test in this
package gets them freshly enabled and leaves them disabled, so enabling
tracing here can never leak into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.telemetry import configure, get_registry, get_tracer


@pytest.fixture()
def tracer():
    """The process tracer, enabled at full sampling; disabled on teardown."""
    tracer = configure(enabled=True, sample_rate=1.0, trace_buffer=32)
    yield tracer
    configure(enabled=False)


@pytest.fixture()
def registry(tracer):
    return get_registry()


@pytest.fixture()
def disabled_tracer():
    """The process tracer, explicitly disabled (the default state)."""
    yield configure(enabled=False)
    configure(enabled=False)
