"""Unit tests for the tracer: spans, sampling, propagation, export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import KyrixConfig, TelemetryConfig
from repro.errors import KyrixError
from repro.telemetry import configure
from repro.telemetry.tracer import NULL_SPAN


class TestDisabled:
    def test_span_is_the_null_singleton(self, disabled_tracer):
        span = disabled_tracer.span("anything", attr=1)
        assert span is NULL_SPAN
        with span as inner:
            inner.set_attribute("ignored", True)
            inner.add_event("ignored")
        assert disabled_tracer.traces() == []

    def test_no_context_crosses_the_wire(self, disabled_tracer):
        assert disabled_tracer.current_context() is None
        with disabled_tracer.remote_trace({"trace_id": "x"}) as record:
            assert record is None


class TestSpans:
    def test_nested_spans_share_a_trace_and_parent_correctly(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        trace = tracer.last_trace()
        assert {s["name"] for s in trace["spans"]} == {"outer", "inner"}
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_sibling_roots_start_separate_traces(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        traces = tracer.traces()
        assert len(traces) == 2
        assert traces[0]["trace_id"] != traces[1]["trace_id"]

    def test_attributes_and_events_are_recorded(self, tracer):
        with tracer.span("op", shard=3) as span:
            span.set_attribute("hit", True)
            span.add_event("fault_injected", kind="error")
        (span_dict,) = tracer.last_trace()["spans"]
        assert span_dict["attributes"]["shard"] == 3
        assert span_dict["attributes"]["hit"] is True
        (event,) = span_dict["events"]
        assert event["name"] == "fault_injected"
        assert event["kind"] == "error"
        assert event["offset_ms"] >= 0

    def test_exception_stamps_an_error_attribute_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span_dict,) = tracer.last_trace()["spans"]
        assert span_dict["attributes"]["error"] == "ValueError"

    def test_current_span_tracks_the_innermost_open_span(self, tracer):
        assert tracer.current_span() is NULL_SPAN
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is NULL_SPAN


class TestSamplingAndBuffer:
    def test_sample_rate_keeps_exactly_the_right_fraction(self):
        tracer = configure(enabled=True, sample_rate=0.5, trace_buffer=64)
        for _ in range(10):
            with tracer.span("op"):
                pass
        assert len(tracer.traces()) == 5
        configure(enabled=False)

    def test_zero_rate_records_nothing(self):
        tracer = configure(enabled=True, sample_rate=0.0)
        with tracer.span("op"):
            pass
        assert tracer.traces() == []
        configure(enabled=False)

    def test_ring_buffer_keeps_the_newest_traces(self):
        tracer = configure(enabled=True, trace_buffer=3)
        for index in range(5):
            with tracer.span("op", index=index):
                pass
        traces = tracer.traces()
        assert len(traces) == 3
        kept = [t["spans"][0]["attributes"]["index"] for t in traces]
        assert kept == [2, 3, 4]
        configure(enabled=False)

    def test_get_trace_by_id(self, tracer):
        with tracer.span("op") as span:
            trace_id = span.trace_id
        assert tracer.get_trace(trace_id)["trace_id"] == trace_id
        assert tracer.get_trace("deadbeef") is None


class TestPropagation:
    def test_attach_joins_a_pool_thread_to_the_live_trace(self, tracer):
        seen: list[dict] = []

        def worker(context):
            with tracer.attach(context):
                with tracer.span("shard", shard_id=0):
                    pass

        with tracer.span("request") as root:
            context = tracer.current_context()
            assert context == {
                "trace_id": root.trace_id,
                "span_id": root.span_id,
                "sampled": True,
            }
            thread = threading.Thread(target=worker, args=(context,))
            thread.start()
            thread.join()
        trace = tracer.last_trace()
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["shard"]["trace_id"] == by_name["request"]["trace_id"]
        assert by_name["shard"]["parent_id"] == by_name["request"]["span_id"]

    def test_attach_to_a_finished_trace_is_a_noop(self, tracer):
        with tracer.span("request"):
            context = tracer.current_context()
        with tracer.attach(context):
            with tracer.span("late"):
                pass
        # The late span started its own trace instead of resurrecting the old.
        assert len(tracer.traces()) == 2

    def test_remote_trace_collects_spans_for_the_caller(self, tracer):
        context = {"trace_id": "cafe" * 8, "span_id": "beef" * 4, "sampled": True}
        with tracer.remote_trace(context) as collected:
            with tracer.span("execute"):
                pass
        assert collected is not None
        (span_dict,) = collected.spans
        assert span_dict["trace_id"] == context["trace_id"]
        assert span_dict["parent_id"] == context["span_id"]
        # Remote records never enter the local ring buffer.
        assert tracer.traces() == []

    def test_ingest_merges_remote_spans_into_the_open_trace(self, tracer):
        remote = [
            {"name": "execute", "trace_id": "t", "span_id": "s", "parent_id": "p",
             "start_unix_ms": 0.0, "duration_ms": 1.0, "attributes": {}, "events": []}
        ]
        with tracer.span("rpc"):
            tracer.ingest(remote)
        names = {s["name"] for s in tracer.last_trace()["spans"]}
        assert names == {"rpc", "execute"}


class TestExport:
    def test_completed_traces_append_jsonl(self, tmp_path):
        export = tmp_path / "traces.jsonl"
        tracer = configure(enabled=True, export_path=str(export))
        for index in range(3):
            with tracer.span("op", index=index):
                pass
        configure(enabled=False)
        lines = export.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            document = json.loads(line)
            assert document["spans"][0]["name"] == "op"


class TestConfig:
    def test_configure_reads_the_config_section(self, tmp_path):
        section = TelemetryConfig(
            enabled=True, sample_rate=0.25, trace_buffer=7,
            export_path=str(tmp_path / "t.jsonl"),
        )
        tracer = configure(section)
        assert tracer.enabled is True
        assert tracer.sample_rate == 0.25
        assert tracer.export_path == section.export_path
        configure(enabled=False)

    def test_telemetry_config_round_trips_through_dict(self):
        config = KyrixConfig()
        config.telemetry.enabled = True
        config.telemetry.sample_rate = 0.5
        restored = KyrixConfig.from_dict(config.to_dict())
        assert restored.telemetry.enabled is True
        assert restored.telemetry.sample_rate == 0.5

    def test_telemetry_config_validates(self):
        with pytest.raises(KyrixError):
            TelemetryConfig(sample_rate=1.5).validate()
        with pytest.raises(KyrixError):
            TelemetryConfig(trace_buffer=0).validate()
