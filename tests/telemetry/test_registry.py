"""Unit tests for the metrics side of telemetry: histograms + Prometheus text."""

from __future__ import annotations

import math

from repro.metrics.collector import percentile
from repro.telemetry.registry import DEFAULT_BUCKETS_MS, Histogram, TelemetryRegistry


class TestHistogram:
    def test_percentiles_agree_with_the_shared_nearest_rank(self):
        histogram = Histogram()
        values = [float(v) for v in range(1, 101)]
        for value in values:
            histogram.observe(value)
        for fraction in (0.5, 0.95, 0.99, 0.999):
            assert histogram.percentile(fraction) == percentile(values, fraction)

    def test_bucket_counts_are_cumulative_and_end_at_inf(self):
        histogram = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts == [(1.0, 1), (10.0, 2), (100.0, 3), (math.inf, 4)]

    def test_snapshot_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum_ms"] == 6.0
        assert snapshot["mean_ms"] == 2.0
        assert snapshot["p50"] == 2.0
        assert snapshot["p999"] == 3.0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


class TestRegistry:
    def test_observe_span_creates_one_histogram_per_name(self):
        registry = TelemetryRegistry()
        registry.observe_span("shard", 1.0)
        registry.observe_span("shard", 2.0)
        registry.observe_span("request", 3.0)
        snapshot = registry.snapshot()
        assert sorted(snapshot) == ["request", "shard"]
        assert snapshot["shard"]["count"] == 2

    def test_reset_drops_everything(self):
        registry = TelemetryRegistry()
        registry.observe_span("shard", 1.0)
        registry.reset()
        assert registry.snapshot() == {}

    def test_prometheus_rendering(self):
        registry = TelemetryRegistry()
        registry.observe_span("shard", 3.0)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE kyrix_span_duration_ms histogram" in lines
        assert 'kyrix_span_duration_ms_bucket{span="shard",le="5"} 1' in lines
        assert 'kyrix_span_duration_ms_bucket{span="shard",le="2.5"} 0' in lines
        assert 'kyrix_span_duration_ms_bucket{span="shard",le="+Inf"} 1' in lines
        assert 'kyrix_span_duration_ms_count{span="shard"} 1' in lines
        assert 'kyrix_span_duration_ms_sum{span="shard"} 3.000000' in lines
        assert (
            'kyrix_span_duration_ms_quantile{span="shard",quantile="p99"} 3.000000'
            in lines
        )

    def test_prometheus_escapes_label_values(self):
        registry = TelemetryRegistry()
        registry.observe_span('we"ird\\name', 1.0)
        text = registry.render_prometheus()
        assert 'span="we\\"ird\\\\name"' in text
