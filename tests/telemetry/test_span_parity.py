"""Cross-topology trace parity and the socket-crossing acceptance test.

The tracing plane must not observe different serving behaviour than it
reports: the ``wire`` (in-process JSON transport) and ``processes`` (forked
workers over localhost TCP) topologies compose the *same* per-replica
serving stack, so the same request stream must yield byte-identical
payloads **and** identical span trees — same span names, same parent/child
structure — with only the timings differing.  And a process-topology trace
must genuinely cross the socket: worker-side spans (``execute``) carry the
router-side trace id, and the root span's direct children account for at
least 90% of its duration (nothing substantial happens untraced).
"""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.telemetry import configure, get_tracer

from tests.cluster.conftest import (
    build_eeg_parity_stack,
    parity_requests,
    payload_bytes,
)

#: The two topologies whose serving stacks are structurally identical
#: (stub -> transport -> caching -> serialized -> query core).
WIRE_TOPOLOGIES = {
    "wire": {"worker_mode": "threads", "wire_shards": True},
    "processes": {"worker_mode": "processes"},
}


@pytest.fixture(scope="module")
def parity_stack():
    return build_eeg_parity_stack()


@pytest.fixture()
def clean_tracer():
    yield
    configure(enabled=False)


def _span_tree(trace: dict) -> tuple:
    """The timing-free identity of a trace: nested, order-insensitive names."""
    spans = trace["spans"]
    known = {span["span_id"] for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        if span["parent_id"] in known:
            children.setdefault(span["parent_id"], []).append(span)
        else:
            roots.append(span)

    def canonical(span) -> tuple:
        kids = tuple(
            sorted(canonical(child) for child in children.get(span["span_id"], []))
        )
        return (span["name"], kids)

    return tuple(sorted(canonical(root) for root in roots))


def _run_traced(stack, requests, overrides):
    cluster = build_cluster(
        stack.backend,
        shard_count=2,
        replicas=2,
        tile_sizes=stack.tile_sizes,
        telemetry=True,
        **overrides,
    )
    try:
        payloads = [payload_bytes(cluster.router.handle(r)) for r in requests]
    finally:
        cluster.close()
    return payloads, get_tracer().traces()


def test_wire_and_process_topologies_trace_identically(parity_stack, clean_tracer):
    requests = parity_requests(parity_stack)
    payloads: dict[str, list[bytes]] = {}
    trees: dict[str, list[tuple]] = {}
    for topology, overrides in WIRE_TOPOLOGIES.items():
        topo_payloads, traces = _run_traced(parity_stack, requests, overrides)
        payloads[topology] = topo_payloads
        trees[topology] = [_span_tree(trace) for trace in traces]
        assert len(traces) == len(requests)
    assert payloads["wire"] == payloads["processes"]
    assert trees["wire"] == trees["processes"]


def test_responses_stay_trace_free_above_the_transport(parity_stack, clean_tracer):
    # Worker-side spans travel inside the reply envelope, but the decoded
    # response object hands them to the tracer and drops them — a traced
    # response must be byte-identical to an untraced one.
    requests = parity_requests(parity_stack)[:4]
    cluster = build_cluster(
        parity_stack.backend,
        shard_count=2,
        tile_sizes=parity_stack.tile_sizes,
        worker_mode="processes",
        telemetry=True,
    )
    try:
        for request in requests:
            response = cluster.router.handle(request)
            assert response.trace == []
            assert "\"trace\": []" in response.to_json()
    finally:
        cluster.close()


def test_process_trace_crosses_the_socket_boundary(parity_stack, clean_tracer):
    """The ISSUE acceptance bar: 2 shards x 2 replicas, worker processes."""
    requests = parity_requests(parity_stack)
    cluster = build_cluster(
        parity_stack.backend,
        shard_count=2,
        replicas=2,
        tile_sizes=parity_stack.tile_sizes,
        worker_mode="processes",
        telemetry=True,
    )
    try:
        for request in requests:
            cluster.router.handle(request)
    finally:
        cluster.close()

    traces = get_tracer().traces()
    assert len(traces) == len(requests)
    crossed = 0
    for trace in traces:
        spans = trace["spans"]
        known = {span["span_id"] for span in spans}
        roots = [span for span in spans if span["parent_id"] not in known]
        assert len(roots) == 1, "every request produces exactly one trace root"
        root = roots[0]
        assert root["name"] == "request"
        # Every span — including those timed inside the worker process —
        # carries the router-side trace id.
        assert all(span["trace_id"] == trace["trace_id"] for span in spans)
        executes = [span for span in spans if span["name"] == "execute"]
        if executes:
            crossed += 1
            # Worker-side spans hang off the rpc span's context, so the
            # parent chain of an execute span reaches the root.
            by_id = {span["span_id"]: span for span in spans}
            for execute in executes:
                node = execute
                hops = 0
                while node["parent_id"] in by_id and hops < 32:
                    node = by_id[node["parent_id"]]
                    hops += 1
                assert node is root
        # Sum of the root's direct children covers >= 90% of the root span:
        # the trace accounts for where the time went.
        child_ms = sum(
            span["duration_ms"]
            for span in spans
            if span["parent_id"] == root["span_id"]
        )
        assert child_ms >= 0.9 * root["duration_ms"], (
            f"untraced gap too large: children {child_ms:.3f} ms of "
            f"root {root['duration_ms']:.3f} ms"
        )
    # Router cache hits legitimately skip the wire; everything else crossed.
    assert crossed > 0, "no trace carried worker-side execute spans"
