"""Tests for the LRU cache and the prefetch predictors."""

import pytest

from repro.core.viewport import Viewport
from repro.server.cache import LRUCache
from repro.server.prefetch import (
    MomentumPrefetcher,
    NeighborhoodPrefetcher,
    Prefetcher,
    make_prefetcher,
)


class TestLRUCache:
    def test_get_miss_returns_none(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        assert cache.stats.misses == 1

    def test_put_then_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh "a"
        cache.put("c", 3)     # evicts "b"
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)    # refresh, not insert
        cache.put("c", 3)     # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_peek_does_not_touch_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b") is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_invalidate_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_keys_in_lru_order(self):
        cache = LRUCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        cache.get("a")
        assert cache.keys() == ["b", "c", "a"]

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate() == 0.5

    def test_shrinking_capacity_evicts_down(self):
        cache = LRUCache(4)
        for key in ("a", "b", "c", "d"):
            cache.put(key, key)
        cache.get("a")            # "a" becomes most recent
        cache.capacity = 2
        assert len(cache) == 2
        assert cache.keys() == ["d", "a"]
        assert cache.stats.evictions == 2

    def test_capacity_set_to_zero_clears_and_disables(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.capacity = 0
        assert len(cache) == 0
        assert cache.get("a") is None
        cache.put("b", 2)         # inserts are no-ops at capacity 0
        assert len(cache) == 0

    def test_capacity_setter_rejects_negative(self):
        cache = LRUCache(4)
        with pytest.raises(ValueError):
            cache.capacity = -1

    def test_growing_capacity_keeps_entries(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.capacity = 4
        cache.put("c", 3)
        cache.put("d", 4)
        assert len(cache) == 4

    def test_stats_snapshot(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snapshot = cache.stats.snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["inserts"] == 1
        assert snapshot["hit_rate"] == 0.5


class TestMomentumPrefetcher:
    def test_no_prediction_without_history(self):
        prefetcher = MomentumPrefetcher()
        assert prefetcher.predict() == []
        prefetcher.observe(Viewport(0, 0, 100, 100))
        assert prefetcher.predict() == []

    def test_predicts_along_constant_velocity(self):
        prefetcher = MomentumPrefetcher()
        for x in (0, 100, 200):
            prefetcher.observe(Viewport(x, 0, 100, 100))
        predictions = prefetcher.predict(2)
        assert [p.x for p in predictions] == [300, 400]
        assert all(p.y == 0 for p in predictions)

    def test_stationary_user_predicts_nothing(self):
        prefetcher = MomentumPrefetcher()
        prefetcher.observe(Viewport(50, 50, 10, 10))
        prefetcher.observe(Viewport(50, 50, 10, 10))
        assert prefetcher.predict() == []

    def test_history_window_limits_memory(self):
        prefetcher = MomentumPrefetcher(history_window=2)
        for x in (0, 1000, 1010, 1020):
            prefetcher.observe(Viewport(x, 0, 10, 10))
        # Only the last two moves matter: velocity = 10, not 340.
        assert prefetcher.predict()[0].x == pytest.approx(1030)

    def test_reset_clears_history(self):
        prefetcher = MomentumPrefetcher()
        prefetcher.observe(Viewport(0, 0, 10, 10))
        prefetcher.observe(Viewport(10, 0, 10, 10))
        prefetcher.reset()
        assert prefetcher.predict() == []


class TestNeighborhoodPrefetcher:
    def test_predicts_four_neighbours(self):
        prefetcher = NeighborhoodPrefetcher()
        prefetcher.observe(Viewport(500, 500, 100, 100))
        neighbours = prefetcher.predict(4)
        assert len(neighbours) == 4
        assert {(n.x, n.y) for n in neighbours} == {
            (600, 500), (400, 500), (500, 600), (500, 400),
        }

    def test_count_limits_predictions(self):
        prefetcher = NeighborhoodPrefetcher()
        prefetcher.observe(Viewport(0, 0, 10, 10))
        assert len(prefetcher.predict(2)) == 2

    def test_no_observation_no_prediction(self):
        assert NeighborhoodPrefetcher().predict() == []


class TestFactory:
    def test_make_prefetcher(self):
        assert isinstance(make_prefetcher("momentum"), MomentumPrefetcher)
        assert isinstance(make_prefetcher("semantic"), NeighborhoodPrefetcher)
        assert type(make_prefetcher("none")) is Prefetcher

    def test_base_prefetcher_is_inert(self):
        prefetcher = Prefetcher()
        prefetcher.observe(Viewport(0, 0, 1, 1))
        assert prefetcher.predict() == []
