"""Tests for dynamic-box calculators and the fetching-scheme registry."""

import pytest

from repro.core.viewport import Viewport
from repro.errors import FetchError
from repro.server.dbox import (
    DensityAwareBoxCalculator,
    DynamicBoxState,
    ExactBoxCalculator,
    ExpandedBoxCalculator,
    make_box_calculator,
)
from repro.server.schemes import (
    DESIGN_MAPPING,
    DESIGN_SPATIAL,
    FetchScheme,
    dbox50_scheme,
    dbox_scheme,
    paper_schemes,
    scheme_by_name,
    tile_mapping_scheme,
    tile_spatial_scheme,
)


class TestBoxCalculators:
    def test_exact_box_equals_viewport(self):
        viewport = Viewport(100, 200, 50, 60)
        box = ExactBoxCalculator().compute(viewport, 1000, 1000)
        assert box == viewport.to_rect()

    def test_expanded_box_is_50_percent_larger(self):
        viewport = Viewport(100, 100, 100, 100)
        box = ExpandedBoxCalculator(expansion=0.5).compute(viewport, 10_000, 10_000)
        assert box.width == pytest.approx(150)
        assert box.height == pytest.approx(150)
        assert box.center == viewport.center

    def test_boxes_clipped_to_canvas(self):
        viewport = Viewport(0, 0, 100, 100)
        box = ExpandedBoxCalculator(expansion=1.0).compute(viewport, 150, 150)
        assert box.xmin == 0
        assert box.xmax <= 150

    def test_negative_expansion_rejected(self):
        with pytest.raises(FetchError):
            ExpandedBoxCalculator(expansion=-0.1)

    def test_density_aware_grows_in_sparse_data(self):
        viewport = Viewport(1000, 1000, 100, 100)
        sparse = DensityAwareBoxCalculator(density=0.0001, object_budget=10_000)
        dense = DensityAwareBoxCalculator(density=10.0, object_budget=10_000)
        sparse_box = sparse.compute(viewport, 100_000, 100_000)
        dense_box = dense.compute(viewport, 100_000, 100_000)
        assert sparse_box.area > dense_box.area
        assert dense_box.area <= viewport.area() * 1.1

    def test_make_box_calculator(self):
        assert isinstance(make_box_calculator("dbox"), ExactBoxCalculator)
        assert isinstance(make_box_calculator("dbox50"), ExpandedBoxCalculator)
        assert isinstance(
            make_box_calculator("dbox-adaptive", density=0.1), DensityAwareBoxCalculator
        )
        with pytest.raises(FetchError):
            make_box_calculator("wormhole")


class TestDynamicBoxState:
    def test_first_viewport_needs_fetch(self):
        state = DynamicBoxState()
        assert state.needs_fetch(Viewport(0, 0, 10, 10))

    def test_viewport_inside_box_skips_fetch(self):
        state = DynamicBoxState()
        viewport = Viewport(100, 100, 100, 100)
        box = ExpandedBoxCalculator(expansion=0.5).compute(viewport, 10_000, 10_000)
        state.record_fetch(box)
        assert not state.needs_fetch(Viewport(110, 110, 100, 100))
        assert state.needs_fetch(Viewport(400, 400, 100, 100))

    def test_counters_and_reset(self):
        state = DynamicBoxState()
        state.record_fetch(Viewport(0, 0, 10, 10).to_rect())
        state.record_skip()
        assert (state.fetches, state.skips) == (1, 1)
        state.reset()
        assert state.current_box is None
        assert state.fetches == 0


class TestFetchSchemes:
    def test_paper_schemes_are_the_eight_of_the_figures(self):
        schemes = paper_schemes()
        assert len(schemes) == 8
        names = [scheme.name for scheme in schemes]
        assert names[0] == "dbox"
        assert names[1] == "dbox 50%"
        assert sum(1 for n in names if n.startswith("tile spatial")) == 3
        assert sum(1 for n in names if n.startswith("tile mapping")) == 3

    def test_scheme_validation(self):
        with pytest.raises(FetchError):
            FetchScheme(name="bad", granularity="sphere")
        with pytest.raises(FetchError):
            FetchScheme(name="bad", granularity="tile")  # missing tile size
        with pytest.raises(FetchError):
            FetchScheme(name="bad", granularity="box", design=DESIGN_MAPPING)

    def test_box_calculator_from_scheme(self):
        assert isinstance(dbox_scheme().box_calculator(), ExactBoxCalculator)
        calculator = dbox50_scheme().box_calculator()
        assert isinstance(calculator, ExpandedBoxCalculator)
        assert calculator.expansion == 0.5
        with pytest.raises(FetchError):
            tile_spatial_scheme(1024).box_calculator()

    def test_tile_schemes_carry_design(self):
        assert tile_spatial_scheme(1024).design == DESIGN_SPATIAL
        assert tile_mapping_scheme(1024).design == DESIGN_MAPPING

    def test_scheme_by_name(self):
        assert scheme_by_name("dbox").granularity == "box"
        assert scheme_by_name("DBOX 50%").box_expansion == 0.5
        assert scheme_by_name("tile spatial 4096").tile_size == 4096
        assert scheme_by_name("tile_mapping_256").design == DESIGN_MAPPING
        with pytest.raises(FetchError):
            scheme_by_name("carrier pigeon")
