"""Tests for the Flask HTTP deployment of the backend."""

import json

import pytest

flask = pytest.importorskip("flask")

from repro.server.http_server import create_app


@pytest.fixture()
def client(dots_stack):
    app = create_app(dots_stack.backend)
    app.config["TESTING"] = True
    return app.test_client()


class TestHTTPServer:
    def test_app_catalogue(self, client):
        response = client.get("/app")
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["app"] == "dots"
        assert "dots" in payload["canvases"]

    def test_canvas_info(self, client, dots_stack):
        response = client.get("/canvas/dots")
        assert response.status_code == 200
        assert response.get_json()["width"] == dots_stack.spec.canvas_width

    def test_canvas_info_unknown_canvas_is_400(self, client):
        response = client.get("/canvas/nope")
        assert response.status_code == 400
        assert "error" in response.get_json()

    def test_dbox_endpoint(self, client):
        response = client.get(
            "/dbox?canvas=dots&layer=0&xmin=3&ymin=3&xmax=515&ymax=515"
        )
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["count"] == len(payload["objects"])
        assert payload["count"] > 0
        assert payload["queries_issued"] == 1

    def test_tile_endpoint_spatial_and_mapping_agree(self, client):
        spatial = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=spatial"
        ).get_json()
        mapping = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=mapping"
        ).get_json()
        spatial_ids = {o["tuple_id"] for o in spatial["objects"]}
        mapping_ids = {o["tuple_id"] for o in mapping["objects"]}
        assert spatial_ids == mapping_ids

    def test_tile_endpoint_bad_design_is_400(self, client):
        response = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=quantum"
        )
        assert response.status_code == 400

    def test_stats_endpoint(self, client):
        client.get("/dbox?canvas=dots&layer=0&xmin=0&ymin=0&xmax=128&ymax=128")
        payload = client.get("/stats").get_json()
        assert payload["requests"] >= 1
        assert "cache_hit_rate" in payload

    def test_repeated_dbox_request_hits_cache(self, client):
        url = "/dbox?canvas=dots&layer=0&xmin=64&ymin=64&xmax=192&ymax=192"
        first = client.get(url).get_json()
        second = client.get(url).get_json()
        assert first["from_cache"] is False
        assert second["from_cache"] is True
