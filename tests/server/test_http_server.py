"""Tests for the Flask HTTP deployment of the backend."""

import json

import pytest

flask = pytest.importorskip("flask")

from repro.server.http_server import create_app


@pytest.fixture()
def client(dots_stack):
    app = create_app(dots_stack.backend)
    app.config["TESTING"] = True
    return app.test_client()


class TestHTTPServer:
    def test_app_catalogue(self, client):
        response = client.get("/app")
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["app"] == "dots"
        assert "dots" in payload["canvases"]

    def test_canvas_info(self, client, dots_stack):
        response = client.get("/canvas/dots")
        assert response.status_code == 200
        assert response.get_json()["width"] == dots_stack.spec.canvas_width

    def test_canvas_info_unknown_canvas_is_400(self, client):
        response = client.get("/canvas/nope")
        assert response.status_code == 400
        assert "error" in response.get_json()

    def test_dbox_endpoint(self, client):
        response = client.get(
            "/dbox?canvas=dots&layer=0&xmin=3&ymin=3&xmax=515&ymax=515"
        )
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["count"] == len(payload["objects"])
        assert payload["count"] > 0
        assert payload["queries_issued"] == 1

    def test_tile_endpoint_spatial_and_mapping_agree(self, client):
        spatial = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=spatial"
        ).get_json()
        mapping = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=mapping"
        ).get_json()
        spatial_ids = {o["tuple_id"] for o in spatial["objects"]}
        mapping_ids = {o["tuple_id"] for o in mapping["objects"]}
        assert spatial_ids == mapping_ids

    def test_tile_endpoint_bad_design_is_400(self, client):
        response = client.get(
            "/tile?canvas=dots&layer=0&tile_id=0&tile_size=512&design=quantum"
        )
        assert response.status_code == 400

    def test_stats_endpoint(self, client):
        client.get("/dbox?canvas=dots&layer=0&xmin=0&ymin=0&xmax=128&ymax=128")
        payload = client.get("/stats").get_json()
        assert payload["requests"] >= 1
        assert "cache_hit_rate" in payload

    def test_repeated_dbox_request_hits_cache(self, client):
        url = "/dbox?canvas=dots&layer=0&xmin=64&ymin=64&xmax=192&ymax=192"
        first = client.get(url).get_json()
        second = client.get(url).get_json()
        assert first["from_cache"] is False
        assert second["from_cache"] is True


class TestStatsSerialization:
    def test_cluster_router_stats_serialize_to_real_json(self, dots_stack):
        from repro.cluster import build_cluster

        cluster = build_cluster(dots_stack.backend, shard_count=2)
        app = create_app(cluster.router)
        app.config["TESTING"] = True
        try:
            client = app.test_client()
            client.get("/dbox?canvas=dots&layer=0&xmin=0&ymin=0&xmax=256&ymax=256")
            payload = client.get("/stats").get_json()
        finally:
            cluster.close()
        assert payload["requests"] == 1
        assert payload["scatter_gathers"] == 1
        # Nested dicts survive as dicts (keys become strings in JSON).
        assert isinstance(payload["per_shard_requests"], dict)
        assert isinstance(payload["fanout"], dict)

    def test_nested_non_dataclass_stats_are_recursed(self, dots_stack):
        # A stats object mixing every shape the serving layers produce:
        # snapshot() methods, dataclasses, dicts, lists and scalars.
        from dataclasses import dataclass
        from types import SimpleNamespace

        @dataclass
        class Inner:
            hits: int = 3

        class Snapshotting:
            def snapshot(self):
                return {"inner": Inner(), "values": [1, 2.5, None], "label": "x"}

        class Stats:
            def snapshot(self):
                return {"nested": Snapshotting(), "requests": 7}

        service = SimpleNamespace(
            compiled=dots_stack.backend.compiled, stats=Stats()
        )
        app = create_app(service)
        app.config["TESTING"] = True
        payload = app.test_client().get("/stats").get_json()
        assert payload["requests"] == 7
        assert payload["nested"]["inner"]["hits"] == 3
        assert payload["nested"]["values"] == [1, 2.5, None]
        assert payload["nested"]["label"] == "x"


class TestTelemetryEndpoints:
    @pytest.fixture()
    def traced_client(self, dots_stack):
        from repro.telemetry import configure

        configure(enabled=True)
        app = create_app(dots_stack.backend)
        app.config["TESTING"] = True
        yield app.test_client()
        configure(enabled=False)

    def test_metrics_endpoint_serves_prometheus_text(self, traced_client):
        # An unusual box: the session-scoped stack's cache must miss so the
        # worker-side execute span is actually recorded.
        traced_client.get(
            "/dbox?canvas=dots&layer=0&xmin=3&ymin=9&xmax=217&ymax=221"
        )
        response = traced_client.get("/metrics")
        assert response.status_code == 200
        assert response.content_type.startswith("text/plain")
        body = response.get_data(as_text=True)
        assert "# TYPE kyrix_span_duration_ms histogram" in body
        assert 'kyrix_span_duration_ms_bucket{span="request",le="+Inf"} 1' in body
        assert 'kyrix_span_duration_ms_count{span="execute"} 1' in body
        assert 'quantile="p99"' in body

    def test_trace_endpoint_returns_one_trace(self, traced_client):
        from repro.telemetry import get_tracer

        traced_client.get(
            "/dbox?canvas=dots&layer=0&xmin=11&ymin=13&xmax=301&ymax=307"
        )
        trace_id = get_tracer().last_trace()["trace_id"]
        response = traced_client.get(f"/trace/{trace_id}")
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["trace_id"] == trace_id
        assert {span["name"] for span in payload["spans"]} >= {"request", "execute"}

    def test_trace_endpoint_unknown_id_is_404(self, traced_client):
        response = traced_client.get("/trace/deadbeefdeadbeef")
        assert response.status_code == 404
        assert "error" in response.get_json()

    def test_metrics_endpoint_works_untraced(self, client):
        from repro.telemetry import configure

        configure(enabled=False)
        response = client.get("/metrics")
        assert response.status_code == 200
        assert "# TYPE kyrix_span_duration_ms histogram" in response.get_data(
            as_text=True
        )
