"""Tests for the static-tile arithmetic (Figure 4a)."""

import pytest

from repro.errors import FetchError
from repro.server.tile import PAPER_TILE_SIZES, TileScheme
from repro.storage.rtree import Rect


class TestTileScheme:
    def test_paper_tile_sizes(self):
        assert PAPER_TILE_SIZES == (256, 1024, 4096)

    def test_grid_dimensions_round_up(self):
        scheme = TileScheme(7000, 5000, 1024)
        assert scheme.columns == 7
        assert scheme.rows == 5
        assert scheme.tile_count == 35

    def test_figure4_grid_is_7_by_5(self):
        # Figure 4(a) shows a canvas partitioned into 35 tiles (7 x 5).
        scheme = TileScheme(7 * 1024, 5 * 1024, 1024)
        assert scheme.tile_count == 35

    def test_tile_id_row_major(self):
        scheme = TileScheme(4096, 2048, 1024)
        assert scheme.tile_id(0, 0) == 0
        assert scheme.tile_id(3, 0) == 3
        assert scheme.tile_id(0, 1) == 4
        assert scheme.tile_coords(5) == (1, 1)

    def test_tile_id_out_of_grid_raises(self):
        scheme = TileScheme(4096, 2048, 1024)
        with pytest.raises(FetchError):
            scheme.tile_id(9, 0)
        with pytest.raises(FetchError):
            scheme.tile_coords(scheme.tile_count)

    def test_tile_rect_clipped_to_canvas(self):
        scheme = TileScheme(1500, 1000, 1024)
        rect = scheme.tile_rect(scheme.tile_id(1, 0))
        assert rect == Rect(1024, 0, 1500, 1000)

    def test_tile_containing(self):
        scheme = TileScheme(4096, 4096, 1024)
        assert scheme.tile_containing(0, 0) == 0
        assert scheme.tile_containing(1025, 10) == 1
        assert scheme.tile_containing(4095, 4095) == scheme.tile_count - 1

    def test_tiles_for_aligned_viewport_is_single_tile(self):
        scheme = TileScheme(8192, 8192, 1024)
        viewport = Rect(1024, 2048, 2048, 3072)
        assert scheme.tiles_for_rect(viewport) == [scheme.tile_id(1, 2)]

    def test_tiles_for_misaligned_viewport_is_four_tiles(self):
        scheme = TileScheme(8192, 8192, 1024)
        viewport = Rect(1536, 2560, 2560, 3584)
        assert len(scheme.tiles_for_rect(viewport)) == 4

    def test_tiles_for_rect_spanning_many_tiles(self):
        scheme = TileScheme(8192, 8192, 256)
        viewport = Rect(0, 0, 1024, 1024)
        assert len(scheme.tiles_for_rect(viewport)) == 16

    def test_tiles_for_rect_clamped_to_canvas(self):
        scheme = TileScheme(2048, 2048, 1024)
        tiles = scheme.tiles_for_rect(Rect(1500, 1500, 5000, 5000))
        assert tiles == [scheme.tile_id(1, 1)]

    def test_aligned_predicate(self):
        scheme = TileScheme(8192, 8192, 1024)
        assert scheme.aligned(Rect(1024, 0, 2048, 1024))
        assert not scheme.aligned(Rect(1500, 0, 2524, 1024))

    def test_invalid_parameters(self):
        with pytest.raises(FetchError):
            TileScheme(100, 100, 0)
        with pytest.raises(FetchError):
            TileScheme(0, 100, 10)

    def test_tiles_cover_whole_canvas_without_overlap(self):
        scheme = TileScheme(3000, 2000, 1024)
        total_area = sum(scheme.tile_rect(t).area for t in range(scheme.tile_count))
        assert total_area == pytest.approx(3000 * 2000)
