"""Tests for placement precomputation and the backend server."""

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.compiler import compile_application
from repro.core import App, Canvas, ColumnPlacement, Layer, Transform, dot_renderer
from repro.datagen.synthetic import tiny_spec, load_dots
from repro.errors import FetchError, UnknownCanvasError, UnknownLayerError
from repro.net.protocol import DataRequest
from repro.server.backend import KyrixBackend
from repro.server.indexer import Indexer
from repro.server.schemes import DESIGN_MAPPING, DESIGN_SPATIAL
from repro.server.tile import TileScheme
from repro.storage.database import Database


def build_precomputed_stack(num_points: int = 800):
    """A dots app forced through full placement precomputation."""
    spec = tiny_spec("uniform", num_points=num_points, seed=5)
    return build_dots_backend(
        spec,
        config=default_config(viewport=512),
        tile_sizes=(512,),
        precompute_placement=True,
    )


class TestIndexer:
    def test_separable_layer_skips_precomputation(self, dots_stack):
        reports = dots_stack.backend.indexer.reports
        assert len(reports) == 1
        assert reports[0].skipped is True
        assert reports[0].separable is True
        # The raw table got its "DBA" spatial index.
        table = dots_stack.database.table(dots_stack.spec.name)
        assert table.find_index_on("bbox", kinds=("rtree",)) is not None

    def test_precomputed_layer_materialises_placement_table(self):
        stack = build_precomputed_stack()
        layer = stack.compiled.layer_plan("dots", 0)
        assert layer.placement_table is not None
        table = stack.database.table(layer.placement_table)
        assert table.row_count == stack.spec.num_points
        assert table.find_index_on("bbox", kinds=("rtree",)) is not None
        assert table.find_index_on("tuple_id", kinds=("btree",)) is not None

    def test_placement_table_has_cx_cy_bbox(self):
        stack = build_precomputed_stack(num_points=50)
        layer = stack.compiled.layer_plan("dots", 0)
        schema = stack.database.table(layer.placement_table).schema
        for column in ("tuple_id", "cx", "cy", "bbox"):
            assert schema.has_column(column)

    def test_mapping_table_row_count_matches_tile_overlaps(self, dots_stack):
        layer = dots_stack.compiled.layer_plan("dots", 0)
        mapping_name = layer.mapping_table_for(512)
        mapping = dots_stack.database.table(mapping_name)
        # Every dot overlaps at least one tile; dots straddling tile borders
        # appear once per overlapped tile.
        assert mapping.row_count >= dots_stack.spec.num_points
        scheme = TileScheme(
            dots_stack.spec.canvas_width, dots_stack.spec.canvas_height, 512
        )
        tile_ids = {row[1] for row in mapping.scan_rows()}
        assert all(0 <= tile_id < scheme.tile_count for tile_id in tile_ids)

    def test_mapping_table_is_idempotent(self, dots_stack):
        layer = dots_stack.compiled.layer_plan("dots", 0)
        indexer = dots_stack.backend.indexer
        name_first = indexer.build_mapping_table(layer, 512)
        name_second = indexer.build_mapping_table(layer, 512)
        assert name_first == name_second

    def test_out_of_bounds_objects_are_dropped(self):
        database = Database()
        table = database.create_table(
            "pts", [("tuple_id", "int"), ("x", "float"), ("y", "float"), ("bbox", "bbox")]
        )
        rows = [
            (0, 10.0, 10.0, (9, 9, 11, 11)),
            (1, 99999.0, 10.0, (99998, 9, 100000, 11)),  # far off the canvas
        ]
        table.bulk_load(rows)
        app = App(name="small", config=default_config(viewport=512))
        canvas = Canvas(canvas_id="main", width=2048, height=2048)
        canvas.add_transform(
            Transform(
                transform_id="t",
                query="SELECT tuple_id, x, y, bbox FROM pts",
                columns=("tuple_id", "x", "y", "bbox"),
            )
        )
        layer = Layer("t", False)
        layer.add_placement(ColumnPlacement(x_column="x", y_column="y"))
        layer.add_rendering_func(dot_renderer())
        canvas.add_layer(layer)
        app.add_canvas(canvas)
        app.set_initial_canvas("main", 0, 0)
        compiled = compile_application(app)
        indexer = Indexer(database, compiled)
        report = indexer.precompute_all()[0]
        assert report.rows == 1


class TestBackendSpatialDesign:
    def test_box_request_returns_objects_in_box(self, dots_stack):
        request = DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0,
            granularity="box", design=DESIGN_SPATIAL,
            xmin=0, ymin=0, xmax=1024, ymax=1024,
        )
        response = dots_stack.backend.handle(request)
        assert response.object_count() > 0
        assert response.queries_issued == 1
        for obj in response.objects:
            assert 0 - 1 <= obj["x"] <= 1024 + 1
            assert 0 - 1 <= obj["y"] <= 1024 + 1

    def test_tile_request_spatial(self, dots_stack):
        request = DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0,
            granularity="tile", design=DESIGN_SPATIAL, tile_id=0, tile_size=512,
        )
        response = dots_stack.backend.handle(request)
        assert response.object_count() > 0

    def test_backend_cache_hit_on_repeat(self, dots_stack):
        dots_stack.backend.cache.clear()
        request = DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0,
            granularity="box", design=DESIGN_SPATIAL,
            xmin=100, ymin=100, xmax=600, ymax=600,
        )
        first = dots_stack.backend.handle(request)
        second = dots_stack.backend.handle(request)
        assert first.from_cache is False
        assert second.from_cache is True
        assert second.query_ms == 0.0
        assert [o["tuple_id"] for o in first.objects] == [
            o["tuple_id"] for o in second.objects
        ]

    def test_warm_populates_cache(self, dots_stack):
        dots_stack.backend.cache.clear()
        request = DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0,
            granularity="box", design=DESIGN_SPATIAL,
            xmin=0, ymin=0, xmax=256, ymax=256,
        )
        dots_stack.backend.warm(request)
        assert dots_stack.backend.handle(request).from_cache is True

    def test_bad_requests_raise(self, dots_stack):
        backend = dots_stack.backend
        with pytest.raises(UnknownCanvasError):
            backend.handle(DataRequest("dots", "missing", 0, "box", xmin=0, ymin=0, xmax=1, ymax=1))
        with pytest.raises(UnknownLayerError):
            backend.handle(DataRequest("dots", "dots", 7, "box", xmin=0, ymin=0, xmax=1, ymax=1))
        with pytest.raises(FetchError):
            backend.handle(DataRequest("dots", "dots", 0, "box"))
        with pytest.raises(FetchError):
            backend.handle(DataRequest("dots", "dots", 0, "tile", tile_id=None, tile_size=None))
        with pytest.raises(FetchError):
            backend.handle(
                DataRequest("dots", "dots", 0, "teleport", xmin=0, ymin=0, xmax=1, ymax=1)
            )

    def test_canvas_info(self, dots_stack):
        info = dots_stack.backend.canvas_info("dots")
        assert info["width"] == dots_stack.spec.canvas_width
        assert info["layers"][0]["separable"] is True
        with pytest.raises(UnknownCanvasError):
            dots_stack.backend.canvas_info("missing")

    def test_layer_density(self, dots_stack):
        density = dots_stack.backend.layer_density("dots", 0)
        assert density == pytest.approx(dots_stack.spec.density, rel=0.01)

    def test_stats_accumulate(self, dots_stack):
        stats = dots_stack.backend.stats
        before = stats.requests
        dots_stack.backend.handle(
            DataRequest("dots", "dots", 0, "box", xmin=0, ymin=0, xmax=64, ymax=64)
        )
        assert stats.requests == before + 1


class TestBackendMappingDesign:
    def test_mapping_and_spatial_designs_agree(self, dots_stack):
        """The same tile must return the same objects under both designs."""
        scheme = TileScheme(
            dots_stack.spec.canvas_width, dots_stack.spec.canvas_height, 512
        )
        tile_id = scheme.tile_containing(
            dots_stack.spec.canvas_width / 2, dots_stack.spec.canvas_height / 2
        )
        spatial = dots_stack.backend.handle(
            DataRequest("dots", "dots", 0, "tile", design=DESIGN_SPATIAL,
                        tile_id=tile_id, tile_size=512)
        )
        mapping = dots_stack.backend.handle(
            DataRequest("dots", "dots", 0, "tile", design=DESIGN_MAPPING,
                        tile_id=tile_id, tile_size=512)
        )
        spatial_ids = {obj["tuple_id"] for obj in spatial.objects}
        mapping_ids = {obj["tuple_id"] for obj in mapping.objects}
        assert spatial_ids == mapping_ids
        assert len(spatial_ids) > 0

    def test_mapping_design_builds_missing_table_lazily(self):
        stack = build_precomputed_stack(num_points=300)
        # No mapping tables were prebuilt for size 1024.
        response = stack.backend.handle(
            DataRequest("dots", "dots", 0, "tile", design=DESIGN_MAPPING,
                        tile_id=0, tile_size=1024)
        )
        layer = stack.compiled.layer_plan("dots", 0)
        assert stack.database.has_table(layer.mapping_table_for(1024))
        assert response.queries_issued == 1

    def test_unknown_design_rejected(self, dots_stack):
        with pytest.raises(FetchError):
            dots_stack.backend.handle(
                DataRequest("dots", "dots", 0, "tile", design="quantum",
                            tile_id=0, tile_size=512)
            )
