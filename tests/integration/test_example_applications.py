"""End-to-end integration tests of the example applications.

These import the example modules directly (they live in ``examples/`` at the
repository root) and drive them the way a user would, asserting the
interactions complete within the paper's interactivity budget and produce
sensible data.
"""

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
if str(EXAMPLES_DIR) not in sys.path:
    sys.path.insert(0, str(EXAMPLES_DIR))

from eeg_explorer import build_eeg_application  # noqa: E402
from usmap_crime import build_usmap_application  # noqa: E402

from repro.client import KyrixFrontend  # noqa: E402
from repro.compiler import compile_application  # noqa: E402
from repro.config import INTERACTIVITY_BUDGET_MS  # noqa: E402
from repro.datagen import EEGSpec, USMapSpec  # noqa: E402
from repro.server import dbox50_scheme, dbox_scheme  # noqa: E402
from repro.serving import build_service  # noqa: E402


@pytest.fixture(scope="module")
def usmap_frontend():
    app, database = build_usmap_application(USMapSpec())
    compiled = compile_application(app)
    service = build_service(app.config, database=database, compiled=compiled)
    return KyrixFrontend(service, dbox50_scheme(), render=True)


@pytest.fixture(scope="module")
def eeg_frontend():
    spec = EEGSpec(channels=2, sample_rate_hz=32.0, duration_s=120.0)
    app, database = build_eeg_application(spec)
    compiled = compile_application(app)
    service = build_service(app.config, database=database, compiled=compiled)
    return KyrixFrontend(service, dbox_scheme(), render=True)


class TestUSMapApplication:
    def test_spec_compiles_without_issues(self):
        app, _ = build_usmap_application(USMapSpec())
        compiled = compile_application(app)
        assert set(compiled.canvases) == {"statemap", "countymap"}
        # Both dynamic layers require placement precomputation (their
        # placement reads cx/cy which are not flagged separable).
        assert compiled.layer_plan("statemap", 1).placement_table is not None

    def test_initial_state_map_load(self, usmap_frontend):
        breakdown = usmap_frontend.load_initial_canvas()
        assert usmap_frontend.current_canvas_id == "statemap"
        assert breakdown.objects_fetched > 0
        assert breakdown.total_ms < INTERACTIVITY_BUDGET_MS
        assert usmap_frontend.renderer.nonzero_pixels() > 0

    def test_click_state_jumps_to_county_map(self, usmap_frontend):
        usmap_frontend.load_initial_canvas()
        state = usmap_frontend.visible_objects[1][0]
        jumps = usmap_frontend.available_jumps(state, layer_index=1)
        assert len(jumps) == 1
        assert jumps[0][1].startswith("County map of State-")
        breakdown = usmap_frontend.click(state, layer_index=1)
        assert usmap_frontend.current_canvas_id == "countymap"
        assert breakdown.total_ms < INTERACTIVITY_BUDGET_MS
        # The destination viewport is centred on the clicked state (x5 zoom).
        center = usmap_frontend.viewport.center
        assert center[0] == pytest.approx(state["cx"] * 5, abs=1.0)
        assert center[1] == pytest.approx(state["cy"] * 5, abs=1.0)
        # Counties fetched around that point belong to nearby states.
        counties = usmap_frontend.visible_objects[1]
        assert counties

    def test_legend_layer_does_not_trigger_jump(self, usmap_frontend):
        usmap_frontend.load_initial_canvas()
        state = usmap_frontend.visible_objects[1][0]
        assert usmap_frontend.available_jumps(state, layer_index=0) == []

    def test_pan_on_county_map_stays_interactive(self, usmap_frontend):
        usmap_frontend.load_initial_canvas()
        state = usmap_frontend.visible_objects[1][0]
        usmap_frontend.click(state, layer_index=1)
        breakdown = usmap_frontend.pan_by(2048, 0)
        assert breakdown.total_ms < INTERACTIVITY_BUDGET_MS


class TestEEGApplication:
    def test_spectral_overview_loads(self, eeg_frontend):
        breakdown = eeg_frontend.load_initial_canvas()
        assert eeg_frontend.current_canvas_id == "spectral"
        assert breakdown.objects_fetched > 0
        assert breakdown.total_ms < INTERACTIVITY_BUDGET_MS

    def test_epoch_click_zooms_into_raw_traces(self, eeg_frontend):
        eeg_frontend.load_initial_canvas()
        epoch = eeg_frontend.visible_objects[1][0]
        breakdown = eeg_frontend.click(epoch, layer_index=1)
        assert eeg_frontend.current_canvas_id == "temporal"
        assert breakdown.objects_fetched > 0
        samples = eeg_frontend.visible_objects[1]
        # The raw samples shown fall inside the viewport's time range.
        viewport = eeg_frontend.viewport
        for sample in samples[:50]:
            assert viewport.x - 1 <= sample["px"] <= viewport.x + viewport.width + 1

    def test_panning_raw_traces(self, eeg_frontend):
        eeg_frontend.load_initial_canvas()
        epoch = eeg_frontend.visible_objects[1][0]
        eeg_frontend.click(epoch, layer_index=1)
        breakdown = eeg_frontend.pan_by(1000, 0)
        assert breakdown.total_ms < INTERACTIVITY_BUDGET_MS
        assert eeg_frontend.average_response_ms() < INTERACTIVITY_BUDGET_MS
