"""Shared fixtures for the test suite.

Expensive fixtures (the dots stack, the US-map database) are session-scoped:
they are read-only from the tests' perspective, and rebuilding them per test
would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.config import KyrixConfig
from repro.datagen.synthetic import DotDatasetSpec, tiny_spec
from repro.storage.database import Database


@pytest.fixture()
def database() -> Database:
    """A fresh, empty embedded database."""
    return Database()


@pytest.fixture(scope="session")
def tiny_uniform_spec() -> DotDatasetSpec:
    """A small Uniform dataset spec used across server/client tests."""
    return tiny_spec("uniform", num_points=5_000, seed=11)


@pytest.fixture(scope="session")
def tiny_skewed_spec() -> DotDatasetSpec:
    return tiny_spec("skewed", num_points=5_000, seed=13)


@pytest.fixture(scope="session")
def dots_stack(tiny_uniform_spec):
    """A fully built dots application over the tiny Uniform dataset.

    Session-scoped because loading + indexing the dataset takes a measurable
    fraction of a second; tests must not mutate the underlying tables.
    """
    config = default_config(viewport=512)
    return build_dots_backend(tiny_uniform_spec, config=config, tile_sizes=(512,))


@pytest.fixture(scope="session")
def skewed_stack(tiny_skewed_spec):
    config = default_config(viewport=512)
    return build_dots_backend(tiny_skewed_spec, config=config, tile_sizes=(512,))


@pytest.fixture()
def small_config() -> KyrixConfig:
    """A small-viewport configuration for frontend tests."""
    return default_config(viewport=512)
