"""Tests for the mini-SQL tokeniser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minisql.lexer import Token, TokenType, tokenize


def kinds(text: str) -> list[TokenType]:
    return [t.type for t in tokenize(text)]


def values(text: str) -> list[str]:
    return [t.value for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_keywords_are_lowercased(self):
        tokens = tokenize("SELECT x FROM t")
        assert tokens[0].value == "select"
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[2].value == "from"

    def test_identifiers_lowercased(self):
        assert values("MyTable") == ["mytable"]

    def test_numbers_integer_float_scientific(self):
        assert values("42 3.5 1e3 2.5e-2") == ["42", "3.5", "1e3", "2.5e-2"]
        assert all(t is TokenType.NUMBER for t in kinds("42 3.5 1e3")[:-1])

    def test_string_literals(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_two_char_operators(self):
        assert values("a <= b >= c != d <> e") == ["a", "<=", "b", ">=", "c", "!=", "d", "<>", "e"]

    def test_punctuation_and_operators(self):
        assert values("f(a, b) * 2") == ["f", "(", "a", ",", "b", ")", "*", "2"]

    def test_line_comments_skipped(self):
        assert values("select a -- comment here\nfrom t") == ["select", "a", "from", "t"]

    def test_eof_token_always_last(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @x")

    def test_position_recorded(self):
        tokens = tokenize("select  x")
        assert tokens[1].position == 8

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.is_keyword("select", "insert")
        assert not token.is_keyword("insert")
