"""Tests for the mini-SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.minisql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    Literal,
    SelectStatement,
    UpdateStatement,
)
from repro.minisql.parser import parse, parse_expression


class TestSelectParsing:
    def test_simple_select(self):
        statement = parse("SELECT x, y FROM dots")
        assert isinstance(statement, SelectStatement)
        assert statement.table.name == "dots"
        assert [item.expression.column for item in statement.items] == ["x", "y"]

    def test_select_star(self):
        statement = parse("SELECT * FROM dots")
        assert statement.select_star is True
        assert statement.items == ()

    def test_select_with_alias(self):
        statement = parse("SELECT count(*) AS n FROM dots")
        assert statement.items[0].alias == "n"
        assert statement.items[0].expression.star is True

    def test_table_alias(self):
        statement = parse("SELECT d.x FROM dots d")
        assert statement.table.alias == "d"
        assert statement.items[0].expression.table == "d"

    def test_where_clause(self):
        statement = parse("SELECT x FROM t WHERE x > 5 AND y <= 3")
        assert isinstance(statement.where, BinaryOp)
        assert statement.where.operator == "and"

    def test_order_by_and_limit_offset(self):
        statement = parse("SELECT x FROM t ORDER BY x DESC, y LIMIT 10 OFFSET 5")
        assert statement.order_by[0].descending is True
        assert statement.order_by[1].descending is False
        assert statement.limit == 10
        assert statement.offset == 5

    def test_group_by(self):
        statement = parse("SELECT tile_id, count(*) FROM m GROUP BY tile_id")
        assert len(statement.group_by) == 1

    def test_join_on(self):
        statement = parse(
            "SELECT p.x FROM mapping m JOIN place p ON m.tuple_id = p.tuple_id"
        )
        assert len(statement.joins) == 1
        join = statement.joins[0]
        assert join.table.name == "place"
        assert join.left.column == "tuple_id"
        assert join.right.table == "p"

    def test_non_equi_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM a JOIN b ON a.x < b.y")

    def test_distinct(self):
        statement = parse("SELECT DISTINCT x FROM t")
        assert statement.distinct is True

    def test_intersects_function(self):
        statement = parse("SELECT * FROM t WHERE intersects(bbox, 0, 0, 10, 10)")
        assert isinstance(statement.where, FunctionCall)
        assert statement.where.name == "intersects"
        assert len(statement.where.args) == 5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT x FROM t garbage garbage garbage ,")

    def test_semicolon_accepted(self):
        statement = parse("SELECT x FROM t;")
        assert isinstance(statement, SelectStatement)


class TestExpressionParsing:
    def test_precedence_of_and_or(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expression, BinaryOp)
        assert expression.operator == "or"
        assert expression.right.operator == "and"

    def test_arithmetic_precedence(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_parentheses_override(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.operator == "*"

    def test_unary_minus(self):
        expression = parse_expression("-x")
        assert expression.operator == "-"

    def test_between(self):
        expression = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expression, Between)

    def test_in_list(self):
        expression = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expression, InList)
        assert len(expression.items) == 3

    def test_not_in(self):
        expression = parse_expression("x NOT IN (1, 2)")
        assert isinstance(expression, InList)
        assert expression.negated is True

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        expression = parse_expression("x IS NOT NULL")
        assert expression.negated is True

    def test_literals(self):
        assert parse_expression("42") == Literal(42)
        assert parse_expression("4.5") == Literal(4.5)
        assert parse_expression("'text'") == Literal("text")
        assert parse_expression("null") == Literal(None)
        assert parse_expression("true") == Literal(True)

    def test_qualified_column(self):
        assert parse_expression("t.x") == ColumnRef(column="x", table="t")

    def test_comparison_operator_normalisation(self):
        assert parse_expression("a <> b").operator == "!="
        assert parse_expression("a == b").operator == "="


class TestOtherStatements:
    def test_insert_without_columns(self):
        statement = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ()
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert statement.columns == ("a", "b")

    def test_update(self):
        statement = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(statement, UpdateStatement)
        assert statement.assignments[0][0] == "a"
        assert statement.where is not None

    def test_delete(self):
        statement = parse("DELETE FROM t WHERE x < 0")
        assert isinstance(statement, DeleteStatement)

    def test_create_table(self):
        statement = parse("CREATE TABLE t (a int, b text, c bbox)")
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns == (("a", "int"), ("b", "text"), ("c", "bbox"))

    def test_create_index_with_using(self):
        statement = parse("CREATE INDEX i ON t (bbox) USING rtree")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.kind == "rtree"

    def test_create_unique_index(self):
        statement = parse("CREATE UNIQUE INDEX i ON t (id)")
        assert statement.unique is True

    def test_unknown_statement_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("VACUUM t")
