"""Tests for expression evaluation and predicate analysis."""

import pytest

from repro.errors import SQLExecutionError
from repro.minisql.ast import ColumnRef
from repro.minisql.functions import (
    as_key_lookup,
    as_spatial_lookup,
    combine_conjuncts,
    evaluate,
    predicate_matches,
    split_conjuncts,
)
from repro.minisql.parser import parse_expression


def ev(text: str, row: dict | None = None):
    return evaluate(parse_expression(text), row or {})


class TestEvaluate:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("7 % 3") == 1
        assert ev("8 / 2") == 4

    def test_division_by_zero_raises(self):
        with pytest.raises(SQLExecutionError):
            ev("1 / 0")

    def test_comparisons(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("3 != 4") is True
        assert ev("'a' = 'a'") is True

    def test_null_propagation(self):
        assert ev("null + 1") is None
        assert ev("null = null") is None
        assert ev("x > 1", {"x": None}) is None

    def test_and_or_short_circuit_with_null(self):
        assert ev("false AND null") is False
        assert ev("true OR null") is True
        assert ev("true AND null") is None

    def test_not(self):
        assert ev("NOT true") is False
        assert ev("NOT null") is None

    def test_between_and_in(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("x IN (1, 2, 3)", {"x": 2}) is True
        assert ev("x NOT IN (1, 2, 3)", {"x": 9}) is True

    def test_is_null(self):
        assert ev("x IS NULL", {"x": None}) is True
        assert ev("x IS NOT NULL", {"x": 1}) is True

    def test_column_lookup_qualified_and_bare(self):
        row = {"x": 5, "t.x": 5}
        assert ev("x", row) == 5
        assert ev("t.x", row) == 5

    def test_bare_lookup_falls_back_to_single_qualified(self):
        assert evaluate(ColumnRef(column="x"), {"t.x": 3}) == 3

    def test_ambiguous_bare_lookup_raises(self):
        with pytest.raises(SQLExecutionError):
            evaluate(ColumnRef(column="x"), {"a.x": 1, "b.x": 2})

    def test_unknown_column_raises(self):
        with pytest.raises(SQLExecutionError):
            ev("missing", {"x": 1})

    def test_intersects_with_bounds(self):
        row = {"bbox": (0, 0, 10, 10)}
        assert ev("intersects(bbox, 5, 5, 20, 20)", row) is True
        assert ev("intersects(bbox, 11, 11, 20, 20)", row) is False

    def test_intersects_null_bbox_is_false(self):
        assert ev("intersects(bbox, 0, 0, 1, 1)", {"bbox": None}) is False

    def test_bbox_constructor(self):
        assert ev("bbox(1, 2, 3, 4)") == (1.0, 2.0, 3.0, 4.0)

    def test_scalar_helpers(self):
        assert ev("abs(-3)") == 3
        assert ev("floor(2.7)") == 2
        assert ev("ceil(2.1)") == 3

    def test_unknown_function_raises(self):
        with pytest.raises(SQLExecutionError):
            ev("frobnicate(1)")

    def test_predicate_matches_treats_null_as_false(self):
        assert predicate_matches(parse_expression("x > 1"), {"x": None}) is False
        assert predicate_matches(None, {}) is True


class TestPredicateAnalysis:
    def test_split_and_combine_conjuncts(self):
        expression = parse_expression("a = 1 AND b = 2 AND c = 3")
        conjuncts = split_conjuncts(expression)
        assert len(conjuncts) == 3
        rebuilt = combine_conjuncts(conjuncts)
        assert predicate_matches(rebuilt, {"a": 1, "b": 2, "c": 3}) is True
        assert predicate_matches(rebuilt, {"a": 1, "b": 2, "c": 4}) is False

    def test_split_none(self):
        assert split_conjuncts(None) == []
        assert combine_conjuncts([]) is None

    def test_or_is_not_split(self):
        assert len(split_conjuncts(parse_expression("a = 1 OR b = 2"))) == 1

    def test_as_key_lookup_equality(self):
        column, keys = as_key_lookup(parse_expression("id = 5"))
        assert column.column == "id"
        assert keys == [5]

    def test_as_key_lookup_reversed(self):
        column, keys = as_key_lookup(parse_expression("5 = id"))
        assert column.column == "id"

    def test_as_key_lookup_in_list(self):
        column, keys = as_key_lookup(parse_expression("id IN (1, 2, 3)"))
        assert keys == [1, 2, 3]

    def test_as_key_lookup_rejects_non_literal(self):
        assert as_key_lookup(parse_expression("id = other_col")) is None
        assert as_key_lookup(parse_expression("id > 5")) is None

    def test_as_spatial_lookup(self):
        result = as_spatial_lookup(parse_expression("intersects(bbox, 0, 0, 10, 20)"))
        assert result is not None
        column, rect = result
        assert column.column == "bbox"
        assert rect.as_tuple() == (0.0, 0.0, 10.0, 20.0)

    def test_as_spatial_lookup_rejects_non_literal_bounds(self):
        assert as_spatial_lookup(parse_expression("intersects(bbox, 0, 0, w, h)")) is None

    def test_as_spatial_lookup_rejects_other_functions(self):
        assert as_spatial_lookup(parse_expression("count(*)")) is None
