"""Tests for the query planner and executor."""

import pytest

from repro.errors import SQLExecutionError, UnknownTableError
from repro.minisql.executor import SQLEngine
from repro.minisql.planner import IndexKeyScan, Planner, SeqScan, SpatialScan
from repro.minisql.parser import parse
from repro.storage.database import Database


@pytest.fixture()
def engine() -> SQLEngine:
    db = Database()
    eng = SQLEngine(db)
    eng.execute("CREATE TABLE dots (id int, x float, y float, name text, bbox bbox)")
    eng.execute("CREATE INDEX dots_id ON dots (id)")
    eng.execute("CREATE INDEX dots_bbox ON dots (bbox) USING rtree")
    for i in range(50):
        x, y = i * 2.0, i * 1.0
        eng.execute(
            f"INSERT INTO dots VALUES ({i}, {x}, {y}, 'dot{i}', "
            f"bbox({x - 1}, {y - 1}, {x + 1}, {y + 1}))"
        )
    eng.execute("CREATE TABLE mapping (tuple_id int, tile_id int)")
    eng.execute("CREATE INDEX mapping_tile ON mapping (tile_id)")
    eng.execute("CREATE INDEX mapping_tuple ON mapping (tuple_id)")
    for i in range(50):
        eng.execute(f"INSERT INTO mapping VALUES ({i}, {i // 10})")
    return eng


class TestPlanner:
    def test_equality_on_indexed_column_uses_key_scan(self, engine):
        planner = Planner(engine.database)
        planned = planner.plan(parse("SELECT * FROM dots WHERE id = 3"))
        assert planned.access_path == "key"

    def test_intersects_on_indexed_bbox_uses_spatial_scan(self, engine):
        planner = Planner(engine.database)
        planned = planner.plan(
            parse("SELECT * FROM dots WHERE intersects(bbox, 0, 0, 10, 10)")
        )
        assert planned.access_path == "spatial"

    def test_unindexed_predicate_uses_seq_scan(self, engine):
        planner = Planner(engine.database)
        planned = planner.plan(parse("SELECT * FROM dots WHERE x > 5"))
        assert planned.access_path == "seqscan"

    def test_residual_predicate_kept_as_filter(self, engine):
        planner = Planner(engine.database)
        planned = planner.plan(parse("SELECT * FROM dots WHERE id = 3 AND x > 1"))
        assert planned.access_path == "key"
        assert "Filter" in planned.root.explain()

    def test_unknown_table_raises(self, engine):
        planner = Planner(engine.database)
        with pytest.raises(UnknownTableError):
            planner.plan(parse("SELECT * FROM missing"))

    def test_explain_mentions_access_path(self, engine):
        plan_text = engine.explain("SELECT * FROM dots WHERE id = 3")
        assert "IndexKeyScan" in plan_text


class TestExecutorSelect:
    def test_select_star_columns_match_schema(self, engine):
        result = engine.execute("SELECT * FROM dots WHERE id = 0")
        assert result.columns == ["id", "x", "y", "name", "bbox"]
        assert len(result) == 1

    def test_projection_and_alias(self, engine):
        result = engine.execute("SELECT x * 2 AS double_x FROM dots WHERE id = 4")
        assert result.columns == ["double_x"]
        assert result.rows[0][0] == 16.0

    def test_where_filters(self, engine):
        result = engine.execute("SELECT id FROM dots WHERE x > 90")
        assert {row[0] for row in result.rows} == {46, 47, 48, 49}

    def test_spatial_query_matches_manual_filter(self, engine):
        spatial = engine.execute(
            "SELECT id FROM dots WHERE intersects(bbox, 0, 0, 20, 20)"
        )
        manual = engine.execute("SELECT id FROM dots WHERE x <= 21 AND y <= 21")
        assert {r[0] for r in spatial.rows} == {r[0] for r in manual.rows}

    def test_order_by_and_limit(self, engine):
        result = engine.execute("SELECT id FROM dots ORDER BY id DESC LIMIT 3")
        assert [row[0] for row in result.rows] == [49, 48, 47]

    def test_offset(self, engine):
        result = engine.execute("SELECT id FROM dots ORDER BY id LIMIT 2 OFFSET 10")
        assert [row[0] for row in result.rows] == [10, 11]

    def test_distinct(self, engine):
        result = engine.execute("SELECT DISTINCT tile_id FROM mapping ORDER BY tile_id")
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]

    def test_aggregates_without_group(self, engine):
        result = engine.execute("SELECT count(*), min(x), max(x), avg(x) FROM dots")
        count, minimum, maximum, average = result.rows[0]
        assert count == 50
        assert minimum == 0.0
        assert maximum == 98.0
        assert average == pytest.approx(49.0)

    def test_count_of_column_skips_nulls(self, engine):
        engine.execute("INSERT INTO dots VALUES (99, null, null, null, null)")
        result = engine.execute("SELECT count(x), count(*) FROM dots")
        assert result.rows[0] == (50, 51)
        engine.execute("DELETE FROM dots WHERE id = 99")

    def test_group_by_with_aggregate(self, engine):
        result = engine.execute(
            "SELECT tile_id, count(*) AS n FROM mapping GROUP BY tile_id ORDER BY tile_id"
        )
        assert result.rows == [(0, 10), (1, 10), (2, 10), (3, 10), (4, 10)]

    def test_join_through_index(self, engine):
        result = engine.execute(
            "SELECT d.id FROM mapping m JOIN dots d ON m.tuple_id = d.id "
            "WHERE m.tile_id = 2 ORDER BY d.id"
        )
        assert [row[0] for row in result.rows] == list(range(20, 30))

    def test_join_without_index_uses_hash_join(self, engine):
        engine.execute("CREATE TABLE extra (k int, label text)")
        engine.execute("INSERT INTO extra VALUES (1, 'one'), (2, 'two')")
        result = engine.execute(
            "SELECT d.id, e.label FROM dots d JOIN extra e ON d.id = e.k ORDER BY d.id"
        )
        assert result.rows == [(1, "one"), (2, "two")]

    def test_select_constant_expression(self, engine):
        result = engine.execute("SELECT 1 + 1 AS two")
        assert result.rows == [(2,)]

    def test_scalar_helper(self, engine):
        assert engine.execute("SELECT count(*) FROM dots").scalar() == 50
        with pytest.raises(SQLExecutionError):
            engine.execute("SELECT id, x FROM dots").scalar()

    def test_to_dicts(self, engine):
        rows = engine.execute("SELECT id, name FROM dots WHERE id = 7").to_dicts()
        assert rows == [{"id": 7, "name": "dot7"}]

    def test_in_list_via_index(self, engine):
        result = engine.execute("SELECT id FROM dots WHERE id IN (3, 5, 7) ORDER BY id")
        assert [row[0] for row in result.rows] == [3, 5, 7]
        assert result.access_path == "key"


class TestExecutorModification:
    def test_update_with_expression(self, engine):
        engine.execute("UPDATE dots SET x = x + 1000 WHERE id = 10")
        assert engine.execute("SELECT x FROM dots WHERE id = 10").scalar() == 1020.0
        engine.execute("UPDATE dots SET x = x - 1000 WHERE id = 10")

    def test_delete_returns_rowcount(self, engine):
        engine.execute("INSERT INTO dots VALUES (1000, 0, 0, 'tmp', bbox(0,0,1,1))")
        result = engine.execute("DELETE FROM dots WHERE id = 1000")
        assert result.rowcount == 1

    def test_insert_with_column_list(self, engine):
        engine.execute("INSERT INTO dots (id, name) VALUES (2000, 'partial')")
        row = engine.execute("SELECT x, name FROM dots WHERE id = 2000").rows[0]
        assert row == (None, "partial")
        engine.execute("DELETE FROM dots WHERE id = 2000")

    def test_insert_arity_mismatch_raises(self, engine):
        with pytest.raises(SQLExecutionError):
            engine.execute("INSERT INTO dots (id, name) VALUES (1)")

    def test_queries_executed_counter(self, engine):
        before = engine.queries_executed
        engine.execute("SELECT count(*) FROM dots")
        assert engine.queries_executed == before + 1
