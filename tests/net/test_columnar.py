"""Unit tests for the binary columnar codec and the lossless-wire bugfixes.

Covers the three bugfix regressions of this change set — ``default=str``
coercion removed from the JSON encoder, recursive canonicalisation of
nested sequence columns, and chatty peers raising
:class:`~repro.errors.ProtocolViolationError` instead of blaming a
truncated stream — plus the codec's own round-trips, negotiation, and the
typed fallbacks that keep it lossless.
"""

from __future__ import annotations

import datetime
import socket
import threading

import pytest

from repro.errors import (
    ProtocolError,
    ProtocolViolationError,
    TruncatedFrameError,
    WorkerConnectionError,
)
from repro.net import columnar
from repro.net.protocol import DataRequest, DataResponse
from repro.net.socket_transport import encode_frame, read_frame, write_frame


def box_request(**overrides):
    fields = dict(
        app_name="dots",
        canvas_id="dots",
        layer_index=0,
        granularity="box",
        design="spatial",
        xmin=0.0,
        ymin=0.0,
        xmax=256.0,
        ymax=256.0,
        shard_id=3,
    )
    fields.update(overrides)
    return DataRequest(**fields)


def tile_request(**overrides):
    fields = dict(
        app_name="dots",
        canvas_id="dots",
        layer_index=1,
        granularity="tile",
        design="mapping",
        tile_id=42,
        tile_size=1024,
    )
    fields.update(overrides)
    return DataRequest(**fields)


def response(objects, **overrides):
    fields = dict(
        request=box_request(),
        objects=objects,
        query_ms=1.25,
        from_cache=False,
        queries_issued=2,
        shard_ms={"shard0": 0.5, "shard1": 0.75},
        coalesced=True,
    )
    fields.update(overrides)
    return DataResponse(**fields)


# ---------------------------------------------------------------------------
# Bugfix regressions
# ---------------------------------------------------------------------------


class TestLosslessWireBugfixes:
    def test_datetime_column_raises_typed_protocol_error_on_json(self):
        # Regression: `default=str` used to silently stringify this,
        # producing a payload that decoded to a *different* response.
        bad = response([{"when": datetime.datetime(2026, 8, 8, 12, 0)}])
        with pytest.raises(ProtocolError, match="datetime"):
            bad.to_json()

    def test_datetime_column_raises_typed_protocol_error_on_binary(self):
        bad = response([{"when": datetime.datetime(2026, 8, 8, 12, 0)}])
        with pytest.raises(ProtocolError, match="datetime"):
            columnar.encode_response(bad)

    def test_nested_sequences_decode_to_tuples_at_every_depth(self):
        # Regression: `_canonical_object` used to tuple-ise only the top
        # level, so a polygon column (list of point pairs) round-tripped
        # to a tuple *of lists* and broke response equality.
        polygon = ((0.0, 0.0), (1.0, 0.0), (1.0, 1.0))
        original = response([{"polygon": polygon, "ring": ((1, 2), (3, (4, 5)))}])
        decoded = DataResponse.from_json(original.to_json())
        assert decoded == original
        assert decoded.objects[0]["polygon"] == polygon
        assert isinstance(decoded.objects[0]["polygon"][0], tuple)
        assert isinstance(decoded.objects[0]["ring"][1][1], tuple)

    def test_extra_frames_raise_protocol_violation(self):
        # Regression: a live peer pipelining a second frame used to raise
        # TruncatedFrameError, blaming a "truncated" stream for a chatty
        # peer.  The violation error subclasses it for compatibility.
        assert issubclass(ProtocolViolationError, TruncatedFrameError)
        client, peer = socket.socketpair()
        try:
            peer.sendall(encode_frame("one") + encode_frame("two"))
            with pytest.raises(ProtocolViolationError, match="more than one frame"):
                read_frame(client)
        finally:
            client.close()
            peer.close()

    def test_socket_transport_names_the_violation(self):
        from repro.net.socket_transport import SocketTransport

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def chatty_server():
            conn, _ = listener.accept()
            with conn:
                read_frame(conn)
                write_frame(conn, "first")
                write_frame(conn, "second")

        thread = threading.Thread(target=chatty_server, daemon=True)
        thread.start()
        transport = SocketTransport("127.0.0.1", port)
        try:
            with pytest.raises(
                WorkerConnectionError, match="violated the framing protocol"
            ):
                transport.roundtrip("hello?")
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Negotiation
# ---------------------------------------------------------------------------


class TestNegotiation:
    def test_codec_preference_maps_modes(self):
        assert columnar.codec_preference("auto") == ("binary", "json")
        assert columnar.codec_preference("binary") == ("binary",)
        assert columnar.codec_preference("json") == ("json",)

    def test_hello_picks_first_preferred_codec_the_server_accepts(self):
        hello = columnar.encode_hello(("binary", "json"))
        assert hello[:1] == columnar.TAG_HELLO
        reply = columnar.answer_hello(hello[1:], ("binary", "json"))
        assert columnar.parse_hello_reply(reply) == "binary"

    def test_hello_falls_back_to_the_servers_codec(self):
        hello = columnar.encode_hello(("binary", "json"))
        reply = columnar.answer_hello(hello[1:], ("json",))
        assert columnar.parse_hello_reply(reply) == "json"

    def test_no_common_codec_is_a_typed_failure(self):
        hello = columnar.encode_hello(("binary",))
        reply = columnar.answer_hello(hello[1:], ("json",))
        with pytest.raises(ProtocolError, match="no common wire codec"):
            columnar.parse_hello_reply(reply)

    def test_legacy_untagged_reply_reads_as_no_negotiation(self):
        # A pre-codec server answers the hello with an untagged JSON error
        # envelope: the client must fall back, not crash.
        assert columnar.parse_hello_reply(b'{"ok": false}') is None

    def test_garbage_hello_body_negotiates_nothing(self):
        reply = columnar.answer_hello(b"\xff\xfe", ("binary", "json"))
        with pytest.raises(ProtocolError):
            columnar.parse_hello_reply(reply)


# ---------------------------------------------------------------------------
# Request round-trips
# ---------------------------------------------------------------------------


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_", [box_request(), tile_request()])
    def test_roundtrip_is_identity(self, request_):
        decoded, context = columnar.decode_request(columnar.encode_request(request_))
        assert decoded == request_
        assert context is None

    def test_trace_context_is_stamped_and_popped(self):
        request = box_request()
        context = {"trace_id": "t1", "span_id": "s1", "sampled": True}
        body = columnar.encode_request(request, trace=context)
        decoded, popped = columnar.decode_request(body)
        # The context rides the wire form only; the rebuilt request (and
        # any cache keyed on it) never sees it — exactly the JSON path.
        assert popped == context
        assert decoded.trace is None
        assert decoded == request

    def test_wrong_kind_raises(self):
        body = columnar.encode_response(response([]))
        with pytest.raises(ProtocolError, match="expected a request"):
            columnar.decode_request(body)

    def test_truncated_body_raises(self):
        body = columnar.encode_request(box_request())
        with pytest.raises(ProtocolError, match="truncated"):
            columnar.decode_request(body[: len(body) // 2])

    def test_trailing_bytes_raise(self):
        body = columnar.encode_request(box_request())
        with pytest.raises(ProtocolError, match="trailing"):
            columnar.decode_request(body + b"\x00")


# ---------------------------------------------------------------------------
# Response round-trips and column typing
# ---------------------------------------------------------------------------


def roundtrip(resp):
    decoded, spans = columnar.decode_response(columnar.encode_response(resp))
    assert spans == []
    return decoded


class TestResponseRoundTrip:
    def test_typed_columns_roundtrip(self):
        objects = [
            {
                "tuple_id": row,
                "x": row * 1.5,
                "label": f"row{row}",
                "flag": row % 2 == 0,
                "bbox": (0.0 + row, 1.0, 2.0, 3.0),
            }
            for row in range(10)
        ]
        assert roundtrip(response(objects)) == response(objects)

    def test_scalar_fields_and_shard_ms_survive(self):
        decoded = roundtrip(response([]))
        assert decoded.query_ms == 1.25
        assert decoded.queries_issued == 2
        assert decoded.coalesced is True
        assert decoded.shard_ms == {"shard0": 0.5, "shard1": 0.75}

    def test_nulls_and_missing_keys_are_distinct(self):
        objects = [{"a": 1, "b": None}, {"a": 2}, {"b": None}]
        decoded = roundtrip(response(objects))
        assert decoded.objects == objects
        assert "b" not in decoded.objects[1]

    def test_mixed_int_float_column_stays_lossless(self):
        # Packing 1 and 1.0 into one numeric column would retype one of
        # them; the codec must fall back to JSON cells instead.
        objects = [{"v": 1}, {"v": 1.0}, {"v": 2}]
        decoded = roundtrip(response(objects))
        assert decoded.objects == objects
        assert isinstance(decoded.objects[0]["v"], int)
        assert isinstance(decoded.objects[1]["v"], float)

    def test_out_of_i64_range_integers_survive(self):
        objects = [{"big": 2**80}, {"big": -(2**70)}]
        assert roundtrip(response(objects)).objects == objects

    def test_bools_are_not_packed_as_ints(self):
        objects = [{"v": True}, {"v": 1}]
        decoded = roundtrip(response(objects))
        assert decoded.objects[0]["v"] is True
        assert isinstance(decoded.objects[1]["v"], int)

    def test_nested_sequence_columns_roundtrip_canonically(self):
        objects = [{"polygon": ((0.0, 0.0), (1.0, 0.0))}]
        assert roundtrip(response(objects)).objects == objects

    def test_remote_spans_ride_the_message(self):
        spans = [{"name": "query", "duration_ms": 1.0}]
        body = columnar.encode_response(response([]), trace=spans)
        decoded, shipped = columnar.decode_response(body)
        assert shipped == spans
        # Decoded responses stay byte-identical whether or not the far
        # side traced: the span list never lands on the response itself.
        assert decoded.trace == []

    def test_decoded_payload_matches_the_json_codec_byte_for_byte(self):
        objects = [
            {"tuple_id": 7, "x": 1.5, "bbox": (0.0, 1.0, 2.0, 3.0)},
            {"tuple_id": 8, "label": "s", "nested": ((1.0, 2.0),)},
        ]
        original = response(objects)
        via_binary = roundtrip(original)
        via_json = DataResponse.from_json(original.to_json())
        assert via_binary == via_json
        assert via_binary.to_json() == via_json.to_json()

    def test_binary_encoding_is_smaller_than_json_for_wide_rows(self):
        objects = [
            {"tuple_id": row, "x": row * 0.5, "y": row * 0.25,
             "bbox": (0.0 + row, 1.0, 2.0, 3.0)}
            for row in range(200)
        ]
        wide = response(objects)
        assert len(columnar.encode_response(wide)) < len(wide.to_json().encode())


class TestErrors:
    def test_error_roundtrip(self):
        body = columnar.encode_error(ValueError("boom"))
        assert columnar.message_kind(body) == columnar.MSG_ERROR
        assert columnar.decode_error(body) == ("ValueError", "boom")

    def test_empty_message_raises(self):
        with pytest.raises(ProtocolError, match="empty"):
            columnar.message_kind(b"")
