"""Tests for the frontend: interactions, caching, dynamic-box protocol,
prefetching and session replay."""

import pytest

from repro.bench.apps import default_config
from repro.client.frontend import KyrixFrontend
from repro.client.session import ExplorationSession
from repro.config import KyrixConfig
from repro.core.viewport import Viewport
from repro.errors import JumpError, UnknownCanvasError
from repro.server.prefetch import MomentumPrefetcher
from repro.server.schemes import dbox50_scheme, dbox_scheme, tile_spatial_scheme


@pytest.fixture()
def frontend(dots_stack):
    dots_stack.backend.cache.clear()
    return KyrixFrontend(dots_stack.backend, dbox_scheme())


class TestLifecycle:
    def test_interactions_require_loaded_canvas(self, frontend):
        with pytest.raises(UnknownCanvasError):
            frontend.pan_by(10, 10)
        with pytest.raises(UnknownCanvasError):
            frontend.pan_to(0, 0)

    def test_load_initial_canvas(self, frontend):
        breakdown = frontend.load_initial_canvas()
        assert frontend.current_canvas_id == "dots"
        assert frontend.viewport is not None
        assert breakdown.objects_fetched > 0
        assert len(frontend.metrics) == 1

    def test_load_unknown_canvas_raises(self, frontend):
        with pytest.raises(UnknownCanvasError):
            frontend.load_canvas("nope", Viewport(0, 0, 100, 100))

    def test_viewport_clamped_to_canvas(self, frontend, dots_stack):
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        frontend.pan_to(10_000_000, 10_000_000)
        viewport = frontend.viewport
        assert viewport.x + viewport.width <= dots_stack.spec.canvas_width
        assert viewport.y + viewport.height <= dots_stack.spec.canvas_height


class TestDynamicBoxProtocol:
    def test_pan_within_expanded_box_skips_fetch(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, dbox50_scheme())
        frontend.load_canvas("dots", Viewport(1024, 1024, 512, 512))
        breakdown = frontend.pan_by(50, 0)  # still inside the 50% larger box
        assert breakdown.requests == 0
        assert breakdown.cache_hit is True

    def test_pan_outside_box_fetches_again(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, dbox50_scheme())
        frontend.load_canvas("dots", Viewport(1024, 1024, 512, 512))
        breakdown = frontend.pan_by(2000, 0)
        assert breakdown.requests == 1

    def test_exact_dbox_fetches_every_step(self, frontend):
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        breakdown = frontend.pan_by(100, 0)
        assert breakdown.requests == 1

    def test_objects_cover_viewport(self, frontend, dots_stack):
        frontend.load_canvas("dots", Viewport(256, 256, 512, 512))
        objects = frontend.visible_objects[0]
        assert objects
        for obj in objects:
            assert 255 <= obj["x"] <= 769
            assert 255 <= obj["y"] <= 769


class TestTileFetching:
    def test_tile_scheme_requests_intersecting_tiles(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, tile_spatial_scheme(512))
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        assert frontend.metrics.steps[0].requests == 1
        breakdown = frontend.pan_to(256, 0)  # misaligned: straddles two tiles
        # One of the two tiles was already cached by the initial load.
        assert breakdown.requests == 1

    def test_frontend_cache_avoids_refetching_tiles(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, tile_spatial_scheme(512))
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        frontend.pan_to(512, 0)
        breakdown = frontend.pan_to(0, 0)  # back to the start: tile is cached
        assert breakdown.requests == 0

    def test_disabled_cache_refetches(self, dots_stack):
        config = KyrixConfig.from_dict(
            {**default_config(viewport=512).to_dict(), "cache": {"enabled": False}}
        )
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, tile_spatial_scheme(512), config=config)
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        frontend.pan_to(512, 0)
        breakdown = frontend.pan_to(0, 0)
        assert breakdown.requests == 1


class TestMetricsAndRendering:
    def test_latency_components_recorded(self, frontend):
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        step = frontend.metrics.steps[0]
        assert step.network_ms > 0
        assert step.query_ms > 0
        assert step.bytes_fetched > 0
        assert frontend.average_response_ms() > 0

    def test_rendering_produces_pixels_and_time(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, dbox_scheme(), render=True)
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        assert frontend.renderer.nonzero_pixels() > 0
        assert frontend.metrics.steps[0].render_ms >= 0

    def test_interactivity_budget_met_on_tiny_dataset(self, frontend, dots_stack):
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        for _ in range(5):
            frontend.pan_by(512, 0)
        budget = dots_stack.backend.config.interactivity_budget_ms
        assert frontend.metrics.summary().within_budget(budget)


class TestPrefetching:
    def test_momentum_prefetch_warms_frontend_cache(self, dots_stack):
        dots_stack.backend.cache.clear()
        config = KyrixConfig.from_dict(
            {
                **default_config(viewport=512).to_dict(),
                "prefetch": {"enabled": True, "strategy": "momentum", "lookahead_steps": 1},
            }
        )
        frontend = KyrixFrontend(
            dots_stack.backend, dbox_scheme(), config=config,
            prefetcher=MomentumPrefetcher(),
        )
        frontend.load_canvas("dots", Viewport(0, 0, 512, 512))
        frontend.pan_by(512, 0)
        frontend.pan_by(512, 0)
        assert frontend.metrics.counters.get("prefetch_requests", 0) > 0
        # The next pan continues the constant-velocity movement, so the
        # prefetched box serves it from the frontend cache.
        breakdown = frontend.pan_by(512, 0)
        assert breakdown.query_ms == 0.0


class TestJumps:
    def test_click_without_matching_jump_raises(self, frontend):
        frontend.load_initial_canvas()
        with pytest.raises(JumpError):
            frontend.click({"x": 0, "y": 0}, layer_index=0)

    def test_jump_from_wrong_canvas_raises(self, frontend, dots_stack):
        from repro.core.jump import Jump

        frontend.load_initial_canvas()
        with pytest.raises(JumpError):
            frontend.jump(Jump("other", "dots"))


class TestSession:
    def test_run_trace_excludes_initial_load(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, dbox_scheme())
        session = ExplorationSession(frontend)
        positions = [(0, 0), (512, 0), (1024, 0)]
        result = session.run_trace("dots", positions)
        assert result.steps == 2
        assert len(result.metrics) == 2
        assert result.initial_load is not None
        assert result.average_response_ms > 0

    def test_run_trace_requires_positions(self, dots_stack):
        frontend = KyrixFrontend(dots_stack.backend, dbox_scheme())
        with pytest.raises(ValueError):
            ExplorationSession(frontend).run_trace("dots", [])

    def test_run_interactions_mixed(self, dots_stack):
        dots_stack.backend.cache.clear()
        frontend = KyrixFrontend(dots_stack.backend, dbox_scheme())
        session = ExplorationSession(frontend)
        result = session.run_interactions(
            [
                {"action": "load", "canvas": "dots", "x": 0, "y": 0},
                {"action": "pan_by", "dx": 512, "dy": 0},
                {"action": "pan_to", "x": 1024, "y": 512},
            ]
        )
        assert result.steps == 2

    def test_run_interactions_unknown_action(self, dots_stack):
        frontend = KyrixFrontend(dots_stack.backend, dbox_scheme())
        session = ExplorationSession(frontend)
        with pytest.raises(ValueError):
            session.run_interactions([{"action": "wave"}])
