"""Tests for the raster renderer and the net (link/protocol) layer."""

import pytest

from repro.client.renderer import RasterRenderer
from repro.config import NetworkConfig
from repro.core.rendering import dot_renderer, legend_renderer, rect_renderer
from repro.core.viewport import Viewport
from repro.errors import ClientError
from repro.net.link import SimulatedLink
from repro.net.protocol import DataRequest, DataResponse


class TestRasterRenderer:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ClientError):
            RasterRenderer(0, 100)

    def test_dot_inside_viewport_touches_pixels(self):
        renderer = RasterRenderer(100, 100)
        viewport = Viewport(0, 0, 100, 100)
        drawn = renderer.render_objects(
            [{"x": 50, "y": 50}], dot_renderer("x", "y", radius=2), viewport
        )
        assert drawn == 1
        assert renderer.nonzero_pixels() > 0

    def test_object_outside_viewport_is_clipped(self):
        renderer = RasterRenderer(100, 100)
        viewport = Viewport(0, 0, 100, 100)
        drawn = renderer.render_objects(
            [{"x": 500, "y": 500}], dot_renderer("x", "y"), viewport
        )
        assert drawn == 0
        assert renderer.nonzero_pixels() == 0

    def test_viewport_offset_applied(self):
        renderer = RasterRenderer(100, 100)
        viewport = Viewport(1000, 1000, 100, 100)
        renderer.render_objects([{"x": 1050, "y": 1050}], dot_renderer("x", "y"), viewport)
        snapshot = renderer.snapshot()
        assert snapshot[50, 50] > 0

    def test_rect_renderer_intensity(self):
        renderer = RasterRenderer(50, 50)
        viewport = Viewport(0, 0, 50, 50)
        renderer.render_objects(
            [{"x": 25, "y": 25}],
            rect_renderer(width=10, height=10),
            viewport,
        )
        assert renderer.total_intensity() >= 100  # 10x10 at intensity 1

    def test_viewport_anchored_label(self):
        renderer = RasterRenderer(50, 50)
        viewport = Viewport(5000, 5000, 50, 50)
        renderer.render_objects([{}], legend_renderer("legend"), viewport)
        assert renderer.nonzero_pixels() > 0  # drawn in screen space despite far viewport

    def test_clear_resets_frame(self):
        renderer = RasterRenderer(50, 50)
        viewport = Viewport(0, 0, 50, 50)
        renderer.render_objects([{"x": 10, "y": 10}], dot_renderer("x", "y"), viewport)
        renderer.clear()
        assert renderer.nonzero_pixels() == 0
        assert renderer.stats.frames == 1

    def test_unknown_primitive_kind_raises(self):
        renderer = RasterRenderer(10, 10)
        with pytest.raises(ClientError):
            renderer._draw({"kind": "hologram"}, Viewport(0, 0, 10, 10))


class TestSimulatedLink:
    def test_transfer_time_scales_with_bytes(self):
        link = SimulatedLink(NetworkConfig(rtt_ms=1.0, bandwidth_mbps=8.0))
        # 8 Mbit/s = 1 byte per microsecond: 1000 bytes -> 1 ms.
        assert link.transfer_ms(1000) == pytest.approx(1.0)

    def test_round_trip_includes_rtt_and_overhead(self):
        config = NetworkConfig(rtt_ms=5.0, bandwidth_mbps=1000.0, request_overhead_bytes=0)
        link = SimulatedLink(config)
        assert link.round_trip_ms(0) == pytest.approx(5.0)

    def test_charge_request_advances_clock_and_stats(self):
        link = SimulatedLink(NetworkConfig(rtt_ms=2.0))
        latency = link.charge_request(10_000)
        assert latency > 2.0
        assert link.stats.requests == 1
        assert link.clock.now_ms == pytest.approx(latency)
        link.reset()
        assert link.stats.requests == 0

    def test_estimate_object_payload(self):
        link = SimulatedLink(NetworkConfig(per_object_bytes=100))
        assert link.estimate_object_payload(7) == 700

    def test_many_small_requests_cost_more_than_one_big(self):
        """The core reason small tiles lose: per-request RTT dominates."""
        link = SimulatedLink(NetworkConfig(rtt_ms=2.0, bandwidth_mbps=1000.0))
        one_big = link.round_trip_ms(16 * 4096)
        sixteen_small = 16 * link.round_trip_ms(4096)
        assert sixteen_small > one_big


class TestProtocol:
    def test_request_json_roundtrip(self):
        request = DataRequest(
            app_name="a", canvas_id="c", layer_index=1, granularity="box",
            xmin=0, ymin=1, xmax=2, ymax=3,
        )
        assert DataRequest.from_json(request.to_json()) == request

    def test_tile_and_box_cache_keys_differ(self):
        tile = DataRequest("a", "c", 0, "tile", tile_id=1, tile_size=256)
        box = DataRequest("a", "c", 0, "box", xmin=0, ymin=0, xmax=1, ymax=1)
        assert tile.cache_key() != box.cache_key()

    def test_tile_cache_key_includes_design_and_size(self):
        spatial = DataRequest("a", "c", 0, "tile", design="spatial", tile_id=1, tile_size=256)
        mapping = DataRequest("a", "c", 0, "tile", design="mapping", tile_id=1, tile_size=256)
        other_size = DataRequest("a", "c", 0, "tile", design="spatial", tile_id=1, tile_size=512)
        assert spatial.cache_key() != mapping.cache_key()
        assert spatial.cache_key() != other_size.cache_key()

    def test_response_json_roundtrip(self):
        request = DataRequest("a", "c", 0, "tile", tile_id=3, tile_size=256)
        response = DataResponse(
            request=request, objects=[{"x": 1}], query_ms=1.5, queries_issued=1
        )
        restored = DataResponse.from_json(response.to_json())
        assert restored.objects == [{"x": 1}]
        assert restored.request.tile_id == 3

    def test_payload_size_estimate_vs_exact(self):
        request = DataRequest("a", "c", 0, "tile", tile_id=3, tile_size=256)
        response = DataResponse(request=request, objects=[{"x": 1}] * 10)
        assert response.payload_size(per_object_bytes=64) == 640
        assert response.payload_size() > 0
