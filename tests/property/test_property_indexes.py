"""Property-based tests (hypothesis) for the index structures.

These check the invariants the rest of the system leans on: indexes agree
with brute force, structural invariants survive arbitrary insert/delete
sequences, and lookups never return phantom entries.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.storage.btree import BTreeIndex
from repro.storage.hashindex import HashIndex
from repro.storage.row import RecordId
from repro.storage.rtree import Rect, RTreeIndex


def rid(n: int) -> RecordId:
    return RecordId(page_no=n // 64, slot_no=n % 64)


keys = st.integers(min_value=-1000, max_value=1000)


class TestBTreeProperties:
    @given(st.lists(keys, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_search_matches_brute_force(self, values):
        index = BTreeIndex("p", order=8)
        reference: dict[int, list[RecordId]] = {}
        for position, key in enumerate(values):
            index.insert(key, rid(position))
            reference.setdefault(key, []).append(rid(position))
        index.validate()
        for key in set(values) | {0, 1234}:
            assert sorted(index.search(key)) == sorted(reference.get(key, []))

    @given(st.lists(keys, min_size=1, max_size=200), st.data())
    @settings(max_examples=40, deadline=None)
    def test_range_search_matches_sorted_filter(self, values, data):
        index = BTreeIndex("p", order=8)
        for position, key in enumerate(values):
            index.insert(key, rid(position))
        low = data.draw(keys)
        high = data.draw(st.integers(min_value=low, max_value=1000))
        result = [k for k, _ in index.range_search(low, high)]
        expected = sorted(k for k in values if low <= k <= high)
        assert result == expected

    @given(st.lists(st.tuples(keys, st.booleans()), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_insert_delete_keeps_invariants(self, operations):
        index = BTreeIndex("p", order=8)
        live: dict[int, list[RecordId]] = {}
        counter = 0
        for key, is_insert in operations:
            if is_insert or not live.get(key):
                index.insert(key, rid(counter))
                live.setdefault(key, []).append(rid(counter))
                counter += 1
            else:
                victim = live[key].pop()
                assert index.delete(key, victim) is True
        index.validate()
        assert len(index) == sum(len(v) for v in live.values())
        for key, rids in live.items():
            assert sorted(index.search(key)) == sorted(rids)


class TestHashIndexProperties:
    @given(st.lists(st.tuples(keys, st.booleans()), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_semantics(self, operations):
        index = HashIndex("p")
        reference: dict[int, list[RecordId]] = {}
        counter = 0
        for key, is_insert in operations:
            if is_insert or not reference.get(key):
                index.insert(key, rid(counter))
                reference.setdefault(key, []).append(rid(counter))
                counter += 1
            else:
                victim = reference[key].pop()
                index.delete(key, victim)
        index.validate()
        for key in set(k for k, _ in operations):
            assert sorted(index.search(key)) == sorted(reference.get(key, []))


rect_coords = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=500, allow_nan=False),
    st.floats(min_value=0, max_value=20, allow_nan=False),
    st.floats(min_value=0, max_value=20, allow_nan=False),
)


def make_rect(coords) -> Rect:
    x, y, w, h = coords
    return Rect(x, y, x + w, y + h)


class TestRTreeProperties:
    @given(st.lists(rect_coords, max_size=200), rect_coords)
    @settings(max_examples=50, deadline=None)
    def test_incremental_search_matches_brute_force(self, coords, query_coords):
        entries = [(make_rect(c), rid(i)) for i, c in enumerate(coords)]
        tree = RTreeIndex("p", max_entries=6)
        for rect, r in entries:
            tree.insert(rect, r)
        tree.validate()
        query = make_rect(query_coords)
        expected = {r for rect, r in entries if rect.intersects(query)}
        assert set(tree.search(query)) == expected

    @given(st.lists(rect_coords, max_size=400), rect_coords)
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_search_matches_brute_force(self, coords, query_coords):
        entries = [(make_rect(c), rid(i)) for i, c in enumerate(coords)]
        tree = RTreeIndex("p", max_entries=8)
        tree.bulk_load(entries)
        tree.validate()
        query = make_rect(query_coords)
        expected = {r for rect, r in entries if rect.intersects(query)}
        assert set(tree.search(query)) == expected

    @given(st.lists(rect_coords, min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_everything_found_by_enclosing_query(self, coords):
        entries = [(make_rect(c), rid(i)) for i, c in enumerate(coords)]
        tree = RTreeIndex("p", max_entries=6)
        tree.bulk_load(entries)
        everything = tree.search(Rect(-1, -1, 2000, 1000))
        assert len(everything) == len(entries)

    @given(rect_coords, st.floats(min_value=0.1, max_value=3.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_rect_scaling_preserves_center_and_scales_area(self, coords, factor):
        rect = make_rect(coords)
        scaled = rect.scaled(factor)
        assert scaled.center[0] == pytest.approx(rect.center[0], abs=1e-6)
        assert scaled.center[1] == pytest.approx(rect.center[1], abs=1e-6)
        assert scaled.area == pytest.approx(rect.area * factor * factor, rel=1e-6, abs=1e-9)


import pytest  # noqa: E402  (used by approx in the property above)
