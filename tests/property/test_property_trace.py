"""Property-based tests for the trace fields of the wire protocol.

Tracing piggybacks on the request/response envelope: ``DataRequest.trace``
carries the caller's ``TraceContext`` toward the worker, and
``DataResponse.trace`` carries the worker's span dicts back.  Neither may
disturb the properties the serving stack depends on — lossless round-trips,
canonical encodings, and (critically) a ``cache_key`` that is blind to
tracing, so a traced request hits exactly the cache entries an untraced
one does.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.net.protocol import DataRequest, DataResponse

# -- strategies -------------------------------------------------------------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "Nd"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
_hex_ids = st.from_regex(r"[0-9a-f]{8,32}", fullmatch=True)

#: Wire-shape TraceContext dicts, exactly as the transport stub injects them.
trace_contexts = st.fixed_dictionaries(
    {
        "trace_id": _hex_ids,
        "span_id": st.one_of(st.none(), _hex_ids),
        "sampled": st.booleans(),
    }
)

#: Span dicts, exactly as the tracer records them.
_attribute_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.booleans(),
    st.none(),
    _names,
)
span_dicts = st.fixed_dictionaries(
    {
        "name": st.sampled_from(
            ["request", "scatter", "shard", "rpc", "execute", "cache"]
        ),
        "trace_id": _hex_ids,
        "span_id": _hex_ids,
        "parent_id": st.one_of(st.none(), _hex_ids),
        "start_unix_ms": st.floats(min_value=0, max_value=2e12, allow_nan=False),
        "duration_ms": st.floats(min_value=0, max_value=1e6, allow_nan=False),
        "attributes": st.dictionaries(_names, _attribute_values, max_size=4),
        "events": st.lists(
            st.fixed_dictionaries(
                {"name": _names, "offset_ms": st.floats(min_value=0, max_value=1e6,
                                                        allow_nan=False)}
            ),
            max_size=3,
        ),
    }
)


@st.composite
def traced_requests(draw):
    return DataRequest(
        app_name=draw(_names),
        canvas_id=draw(_names),
        layer_index=draw(st.integers(min_value=0, max_value=7)),
        granularity="tile",
        design=draw(st.sampled_from(["spatial", "mapping"])),
        tile_id=draw(st.integers(min_value=0, max_value=10_000)),
        tile_size=draw(st.sampled_from([256, 512, 1024])),
        shard_id=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=63))),
        trace=draw(st.one_of(st.none(), trace_contexts)),
    )


@st.composite
def traced_responses(draw):
    return DataResponse(
        request=draw(traced_requests()),
        objects=[],
        query_ms=draw(st.floats(min_value=0, max_value=1e6, allow_nan=False)),
        from_cache=draw(st.booleans()),
        queries_issued=draw(st.integers(min_value=0, max_value=100)),
        trace=draw(st.lists(span_dicts, max_size=4)),
    )


# -- request properties -----------------------------------------------------------


class TestTracedRequestRoundTrip:
    @given(traced_requests())
    @settings(max_examples=150, deadline=None)
    def test_json_roundtrip_preserves_the_context(self, request):
        decoded = DataRequest.from_json(request.to_json())
        assert decoded == request
        assert decoded.trace == request.trace

    @given(traced_requests())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, request):
        once = request.to_json()
        assert DataRequest.from_json(once).to_json() == once

    @given(traced_requests(), trace_contexts)
    @settings(max_examples=150, deadline=None)
    def test_cache_key_is_blind_to_tracing(self, request, context):
        import dataclasses

        untraced = dataclasses.replace(request, trace=None)
        traced = dataclasses.replace(request, trace=context)
        assert untraced.cache_key() == traced.cache_key() == request.cache_key()

    @given(traced_requests(), st.integers(min_value=0, max_value=63))
    @settings(max_examples=100, deadline=None)
    def test_shard_stamping_keeps_the_context(self, request, shard_id):
        stamped = request.for_shard(shard_id)
        assert stamped.trace == request.trace


# -- response properties ----------------------------------------------------------


class TestTracedResponseRoundTrip:
    @given(traced_responses())
    @settings(max_examples=150, deadline=None)
    def test_json_roundtrip_preserves_the_spans(self, response):
        decoded = DataResponse.from_json(response.to_json())
        assert decoded == response
        assert decoded.trace == response.trace

    @given(traced_responses())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, response):
        once = response.to_json()
        assert DataResponse.from_json(once).to_json() == once

    @given(traced_responses(), st.lists(span_dicts, min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_to_json_trace_override_ships_without_mutating(self, response, spans):
        before = list(response.trace)
        encoded = DataResponse.from_json(response.to_json(trace=spans))
        assert encoded.trace == spans
        # The override is a pure encoding-time substitution: the (possibly
        # cached, possibly shared) response object is untouched.
        assert response.trace == before
        assert DataResponse.from_json(response.to_json()).trace == before

    @given(traced_responses())
    @settings(max_examples=100, deadline=None)
    def test_payload_size_matches_exact_encoding(self, response):
        assert response.payload_size() == len(response.to_json().encode("utf-8"))

    def test_old_peers_without_trace_fields_still_decode(self):
        # A pre-telemetry peer omits both fields entirely.
        legacy_request = (
            '{"app_name": "a", "canvas_id": "c", "design": "spatial", '
            '"granularity": "box", "layer_index": 0, "shard_id": null, '
            '"tile_id": null, "tile_size": null, "xmax": 1.0, "xmin": 0.0, '
            '"ymax": 1.0, "ymin": 0.0}'
        )
        request = DataRequest.from_json(legacy_request)
        assert request.trace is None
        response = DataResponse(
            request=request, objects=[], query_ms=0.0, from_cache=False,
            queries_issued=0,
        )
        payload = response.to_json()
        assert DataResponse.from_json(payload).trace == []
