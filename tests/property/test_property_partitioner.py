"""Property-based tests for the load-weighted repartitioner.

The rebalancer swaps a live cluster onto whatever partitioning
:class:`~repro.cluster.partitioner.LoadWeightedKDPartitioner` derives from
the recorded traffic, so the cover invariants must hold for *any* load
histogram — empty, degenerate, concentrated on one point, heavier than the
canvas, or partly outside it:

* exactly ``shard_count`` regions come back,
* the regions tile the canvas exactly (areas sum to the canvas area and
  their union is the canvas rectangle — no gaps),
* no two regions overlap in more than a shared edge (zero-area
  intersections only), and
* every region lies inside the canvas.

A second property checks the point of the exercise: with all the weight
inside one quadrant, the splits subdivide that quadrant instead of the
cold rest of the canvas.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import LoadHistogram, LoadWeightedKDPartitioner

finite_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
weight = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
load_points = st.lists(st.tuples(finite_coord, finite_coord, weight), max_size=64)
canvas_dim = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


def build_histogram(points) -> LoadHistogram:
    histogram = LoadHistogram()
    for x, y, point_weight in points:
        histogram.observe(x, y, point_weight)
    return histogram


@settings(max_examples=200, deadline=None)
@given(
    points=load_points,
    width=canvas_dim,
    height=canvas_dim,
    shard_count=st.integers(min_value=1, max_value=16),
)
def test_any_histogram_yields_exact_gap_free_overlap_free_cover(
    points, width, height, shard_count
):
    histogram = build_histogram(points)
    partitioning = LoadWeightedKDPartitioner(shard_count).partition(
        "c", width, height, histogram
    )
    regions = partitioning.regions

    assert len(regions) == shard_count
    assert [region.shard_id for region in regions] == list(range(shard_count))

    canvas_area = width * height
    total_area = sum(region.rect.area for region in regions)
    assert abs(total_area - canvas_area) <= canvas_area * 1e-9

    union = regions[0].rect
    for region in regions[1:]:
        union = union.union(region.rect)
    assert union.as_tuple() == (0.0, 0.0, width, height)

    for region in regions:
        rect = region.rect
        assert 0.0 <= rect.xmin <= rect.xmax <= width
        assert 0.0 <= rect.ymin <= rect.ymax <= height

    # Overlap-free: any two regions share at most an edge (zero area).
    for i, first in enumerate(regions):
        for second in regions[i + 1 :]:
            overlap = first.rect.intersection(second.rect)
            if overlap is not None:
                assert overlap.area == 0.0, (
                    f"regions {first.shard_id} and {second.shard_id} overlap: "
                    f"{overlap}"
                )


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    shard_count=st.integers(min_value=2, max_value=8),
)
def test_concentrated_load_splits_the_hot_quadrant(seed, shard_count):
    width = height = 1024.0
    histogram = LoadHistogram()
    # All the weight inside the top-left quadrant, pseudo-randomly spread.
    state = seed
    for _ in range(128):
        state = (state * 1103515245 + 12345) % (2**31)
        x = (state % 4096) / 4096.0 * (width / 2.0)
        state = (state * 1103515245 + 12345) % (2**31)
        y = (state % 4096) / 4096.0 * (height / 2.0)
        histogram.observe(x, y)

    partitioning = LoadWeightedKDPartitioner(shard_count).partition(
        "c", width, height, histogram
    )
    hot_regions = {
        partitioning.shard_for_point(x, y) for x, y, _ in histogram.points
    }
    # The hot quadrant must not stay a single shard's problem: the
    # weighted splits subdivide where the weight is.
    assert len(hot_regions) >= 2, (
        f"all hot load still lands on {hot_regions} with {shard_count} shards"
    )
