"""Property-based tests for replica selection, failover and balance.

The replica layer's contract, stated as properties over arbitrary
deterministic fault schedules and request streams:

* **masking** — for any schedule that leaves at least one fault-free
  replica, responses are equal to the no-fault baseline (failures and
  timeouts are invisible to the caller),
* **affinity** — ``per_key_affinity`` maps a given cache key to one stable
  replica while the replica set is unchanged,
* **balance** — ``round_robin`` spreads distinct-key requests over the K
  healthy replicas within ±1.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.metrics.timer import VirtualClock
from repro.net.protocol import DataRequest, DataResponse
from repro.serving import FaultSchedule, ReplicaService, fault_replica


class EchoService:
    """Deterministic stand-in replica: the payload is a pure function of
    the request, so every healthy replica answers identically."""

    compiled = None
    config = None
    stats = None

    def handle(self, request: DataRequest) -> DataResponse:
        objects = [
            {"tuple_id": i, "xmin": request.xmin, "ymin": request.ymin}
            for i in range(2)
        ]
        return DataResponse(
            request=request, objects=objects, query_ms=1.0, queries_issued=1
        )

    def warm(self, request: DataRequest) -> None:
        pass

    def canvas_info(self, canvas_id: str) -> dict:
        return {"canvas_id": canvas_id}

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return 0.0

    def close(self) -> None:
        pass


def _request(i: int) -> DataRequest:
    return DataRequest(
        app_name="echo", canvas_id="c", layer_index=0, granularity="box",
        xmin=float(i), ymin=float(i % 7), xmax=float(i) + 5.0, ymax=50.0,
    )


# A fault assignment for one replica: None (healthy), or a schedule factory.
_fault_kinds = st.sampled_from(
    ["healthy", "dead", "flaky_first", "flaky_nth", "slow"]
)


def _schedule_for(kind: str) -> FaultSchedule | None:
    if kind == "healthy":
        return None
    if kind == "dead":
        return FaultSchedule.fail_always()
    if kind == "flaky_first":
        return FaultSchedule.fail_first(3)
    if kind == "flaky_nth":
        return FaultSchedule.fail_nth(1)
    if kind == "slow":
        # 200 ms of virtual latency per call: over the 50 ms timeout below,
        # so slow replicas are failed over, never waited for.
        return FaultSchedule.slow(200.0)
    raise AssertionError(kind)


@st.composite
def fault_assignments(draw):
    """Fault kinds for 2..4 replicas, at least one replica fault-free."""
    count = draw(st.integers(min_value=2, max_value=4))
    kinds = draw(
        st.lists(_fault_kinds, min_size=count, max_size=count).filter(
            lambda ks: "healthy" in ks
        )
    )
    return kinds


class TestFaultMasking:
    @given(
        kinds=fault_assignments(),
        policy=st.sampled_from(["round_robin", "least_inflight", "per_key_affinity"]),
        request_ids=st.lists(
            st.integers(min_value=0, max_value=40), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_schedule_with_a_healthy_replica_masks_faults(
        self, kinds, policy, request_ids
    ):
        clock = VirtualClock()
        baseline = EchoService()
        service = ReplicaService(
            [EchoService() for _ in kinds],
            policy=policy,
            timeout_ms=50.0,
            breaker_threshold=2,
            breaker_reset_s=10.0,
            clock=clock,
        )
        for index, kind in enumerate(kinds):
            schedule = _schedule_for(kind)
            if schedule is not None:
                fault_replica(service, index, schedule, clock=clock)
        for i in request_ids:
            request = _request(i)
            assert service.handle(request).objects == baseline.handle(request).objects

    @given(kinds=fault_assignments())
    @settings(max_examples=30, deadline=None)
    def test_no_failures_are_charged_to_healthy_replicas(self, kinds):
        clock = VirtualClock()
        service = ReplicaService(
            [EchoService() for _ in kinds], timeout_ms=50.0, clock=clock
        )
        for index, kind in enumerate(kinds):
            schedule = _schedule_for(kind)
            if schedule is not None:
                fault_replica(service, index, schedule, clock=clock)
        for i in range(10):
            service.handle(_request(i))
        for index, kind in enumerate(kinds):
            if kind == "healthy":
                assert service.stats.failures_for(index) == 0


class TestPerKeyAffinity:
    @given(
        replica_count=st.integers(min_value=2, max_value=5),
        request_ids=st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=10,
            unique=True,
        ),
        rounds=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_a_key_maps_to_a_stable_replica(self, replica_count, request_ids, rounds):
        replicas = [EchoService() for _ in range(replica_count)]
        service = ReplicaService(replicas, policy="per_key_affinity")
        homes: dict[tuple, int] = {}
        for _ in range(rounds):
            for i in request_ids:
                request = _request(i)
                before = service.stats.per_replica_requests()
                service.handle(request)
                after = service.stats.per_replica_requests()
                (hit,) = [
                    index
                    for index in range(replica_count)
                    if after[index] == before[index] + 1
                ]
                key = request.cache_key()
                assert homes.setdefault(key, hit) == hit, (
                    "a cache key moved replicas while the set was unchanged"
                )

    @given(replica_count=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_affinity_survives_the_wire(self, replica_count):
        # The affinity hash keys on cache_key(), which is wire-stable, so a
        # request decoded from JSON homes on the same replica.
        service = ReplicaService(
            [EchoService() for _ in range(replica_count)], policy="per_key_affinity"
        )
        from repro.serving.replica import _affinity_hash

        for i in range(12):
            request = _request(i)
            decoded = DataRequest.from_json(request.to_json())
            assert (
                _affinity_hash(request.cache_key()) % replica_count
                == _affinity_hash(decoded.cache_key()) % replica_count
            )


class TestRoundRobinBalance:
    @given(
        replica_count=st.integers(min_value=2, max_value=5),
        dead=st.data(),
        requests=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_spread_over_healthy_replicas_is_within_one(
        self, replica_count, dead, requests
    ):
        dead_set = dead.draw(
            st.sets(
                st.integers(min_value=0, max_value=replica_count - 1),
                max_size=replica_count - 1,
            )
        )
        clock = VirtualClock()
        service = ReplicaService(
            [EchoService() for _ in range(replica_count)],
            policy="round_robin",
            breaker_threshold=1,
            breaker_reset_s=1e9,
            clock=clock,
        )
        # Open the dead replicas' breakers up front so the measured spread
        # covers only the healthy set.
        for index in sorted(dead_set):
            fault_replica(service, index, FaultSchedule.fail_always(), clock=clock)
        for index in sorted(dead_set):
            for attempt in range(3 * replica_count):
                if service.breaker_open(index):
                    break
                service.handle(_request(1000 + 10 * index + attempt))
            assert service.breaker_open(index)
        service.stats.reset()
        for i in range(requests):
            service.handle(_request(i))
        healthy = [i for i in range(replica_count) if i not in dead_set]
        counts = [service.stats.requests_for(i) for i in healthy]
        assert sum(counts) == requests
        assert max(counts) - min(counts) <= 1, (
            f"round_robin spread {counts} over healthy replicas {healthy}"
        )
