"""Property-based tests for system-level invariants: tile arithmetic,
viewport geometry, the LRU cache and the row codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.viewport import Viewport
from repro.server.cache import LRUCache
from repro.server.tile import TileScheme
from repro.storage.row import decode_row, encode_row
from repro.storage.rtree import Rect
from repro.storage.schema import TableSchema


class TestTileProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.sampled_from([256, 512, 1024, 4096]),
    )
    @settings(max_examples=60, deadline=None)
    def test_tile_id_coords_roundtrip(self, columns, rows, tile_size):
        scheme = TileScheme(columns * tile_size, rows * tile_size, tile_size)
        for tile_id in range(0, scheme.tile_count, max(1, scheme.tile_count // 17)):
            column, row = scheme.tile_coords(tile_id)
            assert scheme.tile_id(column, row) == tile_id

    @given(
        st.floats(min_value=0, max_value=30000, allow_nan=False),
        st.floats(min_value=0, max_value=7000, allow_nan=False),
        st.sampled_from([256, 512, 1024]),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_returned_tile_intersects_the_viewport(self, x, y, tile_size):
        scheme = TileScheme(32_768, 8_192, tile_size)
        viewport = Rect(x, y, min(32_768, x + 1024), min(8_192, y + 1024))
        tiles = scheme.tiles_for_rect(viewport)
        assert tiles, "a viewport on the canvas always intersects at least one tile"
        for tile_id in tiles:
            assert scheme.tile_rect(tile_id).intersects(viewport)

    @given(
        st.floats(min_value=0, max_value=31000, allow_nan=False),
        st.floats(min_value=0, max_value=7000, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_point_is_inside_its_containing_tile(self, x, y):
        scheme = TileScheme(32_768, 8_192, 1024)
        tile_id = scheme.tile_containing(x, y)
        assert scheme.tile_rect(tile_id).contains_point(x, y)


class TestViewportProperties:
    @given(
        st.floats(min_value=-5000, max_value=40000, allow_nan=False),
        st.floats(min_value=-5000, max_value=40000, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_clamped_viewport_is_always_inside_canvas(self, x, y):
        viewport = Viewport(x, y, 1024, 1024).clamped_to(32_768, 8_192)
        assert viewport.within(32_768, 8_192)

    @given(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=-200, max_value=200, allow_nan=False),
        st.floats(min_value=-200, max_value=200, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_pan_is_invertible(self, x, y, dx, dy):
        viewport = Viewport(x, y, 100, 100)
        back = viewport.panned(dx, dy).panned(-dx, -dy)
        assert back.x == pytest.approx(viewport.x)
        assert back.y == pytest.approx(viewport.y)


class TestCacheProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.lists(st.tuples(st.integers(min_value=0, max_value=30), st.booleans()), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_cache_never_exceeds_capacity_and_returns_correct_values(self, capacity, ops):
        cache: LRUCache[int] = LRUCache(capacity)
        shadow: dict[int, int] = {}
        for key, is_put in ops:
            if is_put:
                cache.put(key, key * 10)
                shadow[key] = key * 10
            else:
                value = cache.get(key)
                if value is not None:
                    assert value == shadow[key]
            assert len(cache) <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_most_recently_put_key_is_always_present(self, puts):
        cache: LRUCache[int] = LRUCache(3)
        for key in puts:
            cache.put(key, key)
            assert cache.peek(key) == key


row_values = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-2**40, max_value=2**40)),
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)),
    st.one_of(st.none(), st.text(max_size=40)),
    st.one_of(
        st.none(),
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=100, max_value=200, allow_nan=False),
            st.floats(min_value=100, max_value=200, allow_nan=False),
        ),
    ),
)


class TestRowCodecProperties:
    schema = TableSchema.build(
        "t", [("a", "int"), ("b", "float"), ("c", "text"), ("d", "bbox")]
    )

    @given(row_values)
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_roundtrip(self, values):
        coerced = self.schema.coerce_row(list(values))
        decoded = decode_row(encode_row(coerced, self.schema), self.schema)
        assert decoded == coerced
