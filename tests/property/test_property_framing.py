"""Property suite for the length-prefixed socket frame codec.

The socket transport's correctness rests entirely on the frame codec
(:mod:`repro.net.socket_transport`): if a frame survives arbitrary unicode
payloads and arbitrary chunk boundaries, the worker conversation is exactly
the in-process envelope exchange.  Hypothesis drives three properties:

* **round-trip** — ``decode(encode(payload)) == payload`` for arbitrary
  unicode, including frames glued back-to-back in one buffer,
* **chunking-independence** — feeding the encoded bytes to the decoder in
  arbitrary splits (down to single bytes) yields the same frames in order,
* **typed rejection** — frames larger than the limit raise
  :class:`~repro.errors.FrameTooLargeError` at both encode and decode time,
  and streams that end mid-header or mid-payload raise
  :class:`~repro.errors.TruncatedFrameError`, never garbage output.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameTooLargeError, TruncatedFrameError
from repro.net.socket_transport import FRAME_HEADER, FrameDecoder, encode_frame

payloads = st.text(max_size=2_000)


def _feed_in_chunks(decoder: FrameDecoder, data: bytes, cuts: list[int]) -> list[str]:
    """Feed ``data`` split at the (normalised) cut points, collecting frames."""
    boundaries = sorted({min(cut, len(data)) for cut in cuts} | {0, len(data)})
    frames: list[str] = []
    for start, end in zip(boundaries, boundaries[1:]):
        frames.extend(decoder.feed(data[start:end]))
    return frames


@given(payload=payloads)
def test_single_frame_roundtrip(payload):
    decoder = FrameDecoder()
    frames = decoder.feed(encode_frame(payload))
    assert frames == [payload]
    decoder.finish()  # stream ended exactly on a frame boundary


@given(items=st.lists(payloads, max_size=8))
def test_concatenated_frames_decode_in_order(items):
    decoder = FrameDecoder()
    stream = b"".join(encode_frame(payload) for payload in items)
    assert decoder.feed(stream) == items
    decoder.finish()


@given(
    items=st.lists(payloads, min_size=1, max_size=5),
    cuts=st.lists(st.integers(min_value=0, max_value=20_000), max_size=20),
)
def test_decoding_is_chunking_independent(items, cuts):
    stream = b"".join(encode_frame(payload) for payload in items)
    assert _feed_in_chunks(FrameDecoder(), stream, cuts) == items


@given(payload=payloads)
@settings(max_examples=25)
def test_byte_at_a_time_decoding(payload):
    decoder = FrameDecoder()
    frames: list[str] = []
    for index in range(len(encode_frame(payload))):
        frames.extend(decoder.feed(encode_frame(payload)[index : index + 1]))
    assert frames == [payload]
    decoder.finish()


@given(payload=st.text(min_size=1, max_size=500))
def test_truncated_stream_raises_typed_error(payload):
    data = encode_frame(payload)
    decoder = FrameDecoder()
    # Cut anywhere strictly inside the frame: mid-header or mid-payload.
    decoder.feed(data[: len(data) // 2 if len(data) > 1 else 1])
    if decoder.pending_bytes:
        with pytest.raises(TruncatedFrameError):
            decoder.finish()


@given(oversize=st.integers(min_value=1, max_value=100))
def test_oversized_encode_raises(oversize):
    limit = 64
    with pytest.raises(FrameTooLargeError):
        encode_frame("x" * (limit + oversize), max_bytes=limit)


@given(declared=st.integers(min_value=65, max_value=2**32 - 1))
def test_oversized_header_rejected_before_payload_arrives(declared):
    # A forged/corrupt header declaring a giant frame must be rejected from
    # the 4 header bytes alone — the decoder must not wait for (or buffer)
    # gigabytes that will never arrive.
    decoder = FrameDecoder(max_bytes=64)
    with pytest.raises(FrameTooLargeError):
        decoder.feed(FRAME_HEADER.pack(declared))


@given(payload=payloads)
def test_max_size_frame_is_accepted_exactly_at_the_limit(payload):
    data = payload.encode("utf-8")
    decoder = FrameDecoder(max_bytes=len(data))
    assert decoder.feed(encode_frame(payload, max_bytes=len(data))) == [payload]


def test_multibyte_unicode_lengths_are_byte_lengths():
    # "é" is 1 code point but 2 UTF-8 bytes; the prefix counts bytes.
    frame = encode_frame("é")
    (length,) = FRAME_HEADER.unpack_from(frame)
    assert length == 2
    decoder = FrameDecoder()
    assert decoder.feed(frame) == ["é"]
