"""Property-based tests for the wire protocol's lossless JSON encoding.

The shard transport (``repro.serving.transport``) depends on
``DataRequest``/``DataResponse`` surviving encode -> decode unchanged —
including the cluster-era fields ``shard_id`` and ``shard_ms`` — and on
``cache_key`` being stable across the wire (shard caches on the far side of
a transport must key exactly like in-process ones).
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.net.protocol import DataRequest, DataResponse

# -- strategies -------------------------------------------------------------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "Nd"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_shard_ids = st.one_of(st.none(), st.integers(min_value=0, max_value=63))


@st.composite
def tile_requests(draw):
    return DataRequest(
        app_name=draw(_names),
        canvas_id=draw(_names),
        layer_index=draw(st.integers(min_value=0, max_value=7)),
        granularity="tile",
        design=draw(st.sampled_from(["spatial", "mapping"])),
        tile_id=draw(st.integers(min_value=0, max_value=10_000)),
        tile_size=draw(st.sampled_from([256, 512, 1024, 4096])),
        shard_id=draw(_shard_ids),
    )


@st.composite
def box_requests(draw):
    return DataRequest(
        app_name=draw(_names),
        canvas_id=draw(_names),
        layer_index=draw(st.integers(min_value=0, max_value=7)),
        granularity="box",
        design="spatial",
        xmin=draw(_floats),
        ymin=draw(_floats),
        xmax=draw(_floats),
        ymax=draw(_floats),
        shard_id=draw(_shard_ids),
    )


requests = st.one_of(tile_requests(), box_requests())

# Object values in canonical row form: scalars plus tuples (never lists —
# JSON decoding restores sequences as tuples).
_scalar = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    _floats,
    _names,
    st.booleans(),
    st.none(),
)
_bbox = st.tuples(_floats, _floats, _floats, _floats)
# Nested sequences (e.g. a polygon column as a tuple of point pairs): the
# canonical row form is tuples at *every* nesting depth, which decoding
# must restore recursively.
_nested = st.recursive(
    _scalar,
    lambda inner: st.lists(inner, min_size=0, max_size=3).map(tuple),
    max_leaves=6,
)
_value = st.one_of(_scalar, _bbox, _nested)
_objects = st.lists(
    st.dictionaries(_names, _value, min_size=0, max_size=5), min_size=0, max_size=5
)


@st.composite
def responses(draw):
    request = draw(requests)
    shard_ms = draw(
        st.dictionaries(
            st.from_regex(r"shard[0-9]{1,2}", fullmatch=True),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            max_size=8,
        )
    )
    return DataResponse(
        request=request,
        objects=draw(_objects),
        query_ms=draw(st.floats(min_value=0, max_value=1e9, allow_nan=False)),
        from_cache=draw(st.booleans()),
        queries_issued=draw(st.integers(min_value=0, max_value=1000)),
        shard_ms=shard_ms,
        coalesced=draw(st.booleans()),
    )


# -- request properties -----------------------------------------------------------


class TestDataRequestRoundTrip:
    @given(requests)
    @settings(max_examples=150, deadline=None)
    def test_json_roundtrip_is_identity(self, request):
        assert DataRequest.from_json(request.to_json()) == request

    @given(requests)
    @settings(max_examples=150, deadline=None)
    def test_cache_key_stable_across_the_wire(self, request):
        decoded = DataRequest.from_json(request.to_json())
        assert decoded.cache_key() == request.cache_key()

    @given(requests)
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, request):
        # encode -> decode -> encode is byte-stable (sort_keys canonical form).
        once = request.to_json()
        assert DataRequest.from_json(once).to_json() == once

    @given(requests, st.integers(min_value=0, max_value=63))
    @settings(max_examples=100, deadline=None)
    def test_shard_stamping_changes_the_cache_key(self, request, shard_id):
        stamped = request.for_shard(shard_id)
        assert stamped.shard_id == shard_id
        if request.shard_id != shard_id:
            assert stamped.cache_key() != request.cache_key()
        # Stamping survives the wire too.
        assert (
            DataRequest.from_json(stamped.to_json()).cache_key()
            == stamped.cache_key()
        )


# -- response properties ----------------------------------------------------------


class TestDataResponseRoundTrip:
    @given(responses())
    @settings(max_examples=150, deadline=None)
    def test_json_roundtrip_is_identity(self, response):
        decoded = DataResponse.from_json(response.to_json())
        assert decoded == response

    @given(responses())
    @settings(max_examples=100, deadline=None)
    def test_shard_fields_survive(self, response):
        decoded = DataResponse.from_json(response.to_json())
        assert decoded.shard_ms == response.shard_ms
        assert decoded.request.shard_id == response.request.shard_id
        assert decoded.coalesced == response.coalesced
        assert decoded.queries_issued == response.queries_issued

    @given(responses())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, response):
        once = response.to_json()
        assert DataResponse.from_json(once).to_json() == once

    @given(responses())
    @settings(max_examples=100, deadline=None)
    def test_payload_size_matches_exact_encoding(self, response):
        assert response.payload_size() == len(response.to_json().encode("utf-8"))

    @given(_objects)
    @settings(max_examples=100, deadline=None)
    def test_objects_decode_to_canonical_tuples(self, objects):
        encoded = json.dumps(objects)
        decoded = DataResponse.from_json(
            DataResponse(
                request=DataRequest(
                    app_name="a", canvas_id="c", layer_index=0, granularity="box",
                    xmin=0.0, ymin=0.0, xmax=1.0, ymax=1.0,
                ),
                objects=json.loads(encoded),
            ).to_json()
        )
        for original, roundtripped in zip(objects, decoded.objects):
            assert roundtripped == {
                name: tuple(value) if isinstance(value, list) else value
                for name, value in original.items()
            }
