"""Property suite for the binary columnar codec.

Mirrors ``test_property_protocol.py`` on the binary wire: every request and
response the JSON envelope can carry must survive the columnar codec
unchanged, and — the cross-codec law — decoding the binary form must yield
exactly what decoding the JSON form yields, so topologies that negotiate
different codecs still serve byte-identical payloads.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.net import columnar
from repro.net.protocol import DataRequest, DataResponse

# -- strategies (canonical row form, like the JSON protocol suite) ---------------

_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "Nd"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
_shard_ids = st.one_of(st.none(), st.integers(min_value=0, max_value=63))
_traces = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {"trace_id": _names, "span_id": _names, "sampled": st.booleans()}
    ),
)


@st.composite
def requests(draw):
    if draw(st.booleans()):
        return DataRequest(
            app_name=draw(_names),
            canvas_id=draw(_names),
            layer_index=draw(st.integers(min_value=0, max_value=7)),
            granularity="tile",
            design=draw(st.sampled_from(["spatial", "mapping"])),
            tile_id=draw(st.integers(min_value=0, max_value=10_000)),
            tile_size=draw(st.sampled_from([256, 512, 1024, 4096])),
            shard_id=draw(_shard_ids),
        )
    return DataRequest(
        app_name=draw(_names),
        canvas_id=draw(_names),
        layer_index=draw(st.integers(min_value=0, max_value=7)),
        granularity="box",
        design="spatial",
        xmin=draw(_floats),
        ymin=draw(_floats),
        xmax=draw(_floats),
        ymax=draw(_floats),
        shard_id=draw(_shard_ids),
    )


# Scalars include integers *beyond* the i64 range (the JSON-cell fallback)
# and both int and float so mixed columns exercise the retype guard.
_scalar = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    _floats,
    _names,
    st.booleans(),
    st.none(),
)
_bbox = st.tuples(_floats, _floats, _floats, _floats)
_nested = st.recursive(
    _scalar,
    lambda inner: st.lists(inner, min_size=0, max_size=3).map(tuple),
    max_leaves=6,
)
_value = st.one_of(_scalar, _bbox, _nested)
_objects = st.lists(
    st.dictionaries(_names, _value, min_size=0, max_size=5), min_size=0, max_size=6
)


@st.composite
def responses(draw):
    return DataResponse(
        request=draw(requests()),
        objects=draw(_objects),
        query_ms=draw(st.floats(min_value=0, max_value=1e9, allow_nan=False)),
        from_cache=draw(st.booleans()),
        queries_issued=draw(st.integers(min_value=0, max_value=1000)),
        shard_ms=draw(
            st.dictionaries(
                st.from_regex(r"shard[0-9]{1,2}", fullmatch=True),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                max_size=8,
            )
        ),
        coalesced=draw(st.booleans()),
    )


# -- properties -------------------------------------------------------------------


class TestBinaryRequestRoundTrip:
    @given(requests())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_identity(self, request):
        decoded, context = columnar.decode_request(columnar.encode_request(request))
        assert decoded == request
        assert context is None

    @given(requests())
    @settings(max_examples=100, deadline=None)
    def test_cache_key_stable_across_the_wire(self, request):
        decoded, _ = columnar.decode_request(columnar.encode_request(request))
        assert decoded.cache_key() == request.cache_key()

    @given(requests(), _traces)
    @settings(max_examples=100, deadline=None)
    def test_trace_context_rides_the_wire_form_only(self, request, context):
        body = columnar.encode_request(request, trace=context)
        decoded, popped = columnar.decode_request(body)
        assert popped == context
        assert decoded.trace is None
        assert decoded == request


class TestBinaryResponseRoundTrip:
    @given(responses())
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_identity(self, response):
        decoded, spans = columnar.decode_response(columnar.encode_response(response))
        assert spans == []
        assert decoded == response

    @given(responses())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, response):
        once = columnar.encode_response(response)
        decoded, _ = columnar.decode_response(once)
        assert columnar.encode_response(decoded) == once

    @given(responses())
    @settings(max_examples=150, deadline=None)
    def test_decoded_payload_matches_the_json_codec(self, response):
        # The cross-codec law: both wire forms decode to the same object,
        # and re-encoding both decodes to the same canonical JSON bytes.
        via_binary, _ = columnar.decode_response(columnar.encode_response(response))
        via_json = DataResponse.from_json(response.to_json())
        assert via_binary == via_json
        assert via_binary.to_json() == via_json.to_json()

    @given(responses())
    @settings(max_examples=50, deadline=None)
    def test_nan_free_wide_numeric_responses_shrink(self, response):
        # Not a universal law (tiny/stringy payloads can tie or lose), but
        # homogeneous numeric rows — the serving hot path — must shrink.
        objects = [
            {"tuple_id": row, "x": row * 0.5, "bbox": (0.0, 1.0, 2.0, 3.0)}
            for row in range(64)
        ]
        wide = DataResponse(request=response.request, objects=objects)
        assert len(columnar.encode_response(wide)) < len(wide.to_json().encode())
