"""Tests for table schemas."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType


@pytest.fixture()
def schema() -> TableSchema:
    return TableSchema.build(
        "dots",
        [("tuple_id", "int"), ("x", "float"), ("name", "text"), ("bbox", "bbox")],
    )


class TestSchemaConstruction:
    def test_build_resolves_type_names(self, schema):
        assert schema.column("x").type is ColumnType.FLOAT
        assert schema.column("bbox").type is ColumnType.BBOX

    def test_column_names_are_lowercased(self):
        schema = TableSchema.build("t", [("Mixed_Case", "int")])
        assert schema.column_names == ["mixed_case"]
        assert schema.has_column("MIXED_CASE")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.build("t", [("a", "int"), ("A", "float")])

    def test_empty_table_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="", columns=[Column("a", ColumnType.INTEGER)])

    def test_invalid_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name!", ColumnType.INTEGER)


class TestSchemaLookups:
    def test_column_index(self, schema):
        assert schema.column_index("tuple_id") == 0
        assert schema.column_index("bbox") == 3

    def test_unknown_column_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.column_index("missing")

    def test_len(self, schema):
        assert len(schema) == 4


class TestRowCoercion:
    def test_coerce_row_positional(self, schema):
        row = schema.coerce_row([1, 2.5, "a", (0, 0, 1, 1)])
        assert row == (1, 2.5, "a", (0.0, 0.0, 1.0, 1.0))

    def test_coerce_row_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.coerce_row([1, 2.5])

    def test_coerce_mapping_fills_missing_with_null(self, schema):
        row = schema.coerce_mapping({"tuple_id": 3, "x": 1.0})
        assert row == (3, 1.0, None, None)

    def test_coerce_mapping_unknown_column(self, schema):
        with pytest.raises(SchemaError):
            schema.coerce_mapping({"nope": 1})

    def test_row_to_dict(self, schema):
        row = schema.coerce_row([1, 2.5, "a", None])
        assert schema.row_to_dict(row) == {
            "tuple_id": 1, "x": 2.5, "name": "a", "bbox": None,
        }


class TestSchemaEvolution:
    def test_with_column(self, schema):
        extended = schema.with_column(Column("extra", ColumnType.FLOAT))
        assert extended.has_column("extra")
        assert not schema.has_column("extra")

    def test_project(self, schema):
        projected = schema.project(["x", "name"])
        assert projected.column_names == ["x", "name"]
