"""Tests for the hash index."""

import pytest

from repro.errors import DuplicateKeyError, StorageError
from repro.storage.hashindex import HashIndex
from repro.storage.row import RecordId


def rid(n: int) -> RecordId:
    return RecordId(page_no=0, slot_no=n)


class TestHashIndex:
    def test_insert_and_search(self):
        index = HashIndex("h")
        index.insert("key", rid(1))
        assert index.search("key") == [rid(1)]

    def test_missing_key_returns_empty(self):
        index = HashIndex("h")
        assert index.search("nope") == []

    def test_duplicates_allowed_by_default(self):
        index = HashIndex("h")
        index.insert(1, rid(1))
        index.insert(1, rid(2))
        assert len(index) == 2
        assert set(index.search(1)) == {rid(1), rid(2)}

    def test_unique_rejects_duplicates(self):
        index = HashIndex("h", unique=True)
        index.insert(1, rid(1))
        with pytest.raises(DuplicateKeyError):
            index.insert(1, rid(2))

    def test_null_key_rejected(self):
        index = HashIndex("h")
        with pytest.raises(StorageError):
            index.insert(None, rid(1))

    def test_delete(self):
        index = HashIndex("h")
        index.insert(1, rid(1))
        assert index.delete(1, rid(1)) is True
        assert index.search(1) == []
        assert index.delete(1, rid(1)) is False

    def test_delete_keeps_other_rids(self):
        index = HashIndex("h")
        index.insert(1, rid(1))
        index.insert(1, rid(2))
        index.delete(1, rid(1))
        assert index.search(1) == [rid(2)]

    def test_search_many(self):
        index = HashIndex("h")
        for key in range(5):
            index.insert(key, rid(key))
        assert index.search_many([1, 3]) == [rid(1), rid(3)]

    def test_items_and_keys(self):
        index = HashIndex("h")
        index.insert("a", rid(1))
        index.insert("b", rid(2))
        assert set(index.keys()) == {"a", "b"}
        assert set(index.items()) == {("a", rid(1)), ("b", rid(2))}

    def test_validate_detects_count_mismatch(self):
        index = HashIndex("h")
        index.insert(1, rid(1))
        index._count = 5
        with pytest.raises(StorageError):
            index.validate()

    def test_lookup_counter_increments(self):
        index = HashIndex("h")
        index.insert(1, rid(1))
        index.search(1)
        index.search(2)
        assert index.lookups == 2
