"""Tests for the B+tree index."""

import random

import pytest

from repro.errors import DuplicateKeyError, StorageError
from repro.storage.btree import BTreeIndex
from repro.storage.row import RecordId


def rid(n: int) -> RecordId:
    return RecordId(page_no=n // 100, slot_no=n % 100)


@pytest.fixture()
def index() -> BTreeIndex:
    return BTreeIndex("idx", order=8)


class TestInsertSearch:
    def test_search_missing_key_returns_empty(self, index):
        assert index.search(42) == []

    def test_insert_then_search(self, index):
        index.insert(5, rid(1))
        assert index.search(5) == [rid(1)]

    def test_duplicate_keys_accumulate(self, index):
        index.insert(5, rid(1))
        index.insert(5, rid(2))
        assert sorted(index.search(5)) == sorted([rid(1), rid(2)])

    def test_unique_index_rejects_duplicates(self):
        index = BTreeIndex("u", unique=True)
        index.insert(1, rid(1))
        with pytest.raises(DuplicateKeyError):
            index.insert(1, rid(2))

    def test_null_key_rejected(self, index):
        with pytest.raises(StorageError):
            index.insert(None, rid(1))

    def test_many_inserts_split_nodes_and_stay_searchable(self, index):
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            index.insert(key, rid(key))
        assert index.height() > 1
        for key in (0, 17, 250, 499):
            assert index.search(key) == [rid(key)]
        index.validate()

    def test_string_keys(self, index):
        index.insert("alpha", rid(1))
        index.insert("beta", rid(2))
        assert index.search("alpha") == [rid(1)]

    def test_search_many(self, index):
        for key in range(10):
            index.insert(key, rid(key))
        assert index.search_many([2, 5, 9]) == [rid(2), rid(5), rid(9)]


class TestRangeSearch:
    def test_full_range_in_key_order(self, index):
        keys = [7, 3, 9, 1, 5]
        for key in keys:
            index.insert(key, rid(key))
        assert [k for k, _ in index.items()] == sorted(keys)

    def test_bounded_range(self, index):
        for key in range(20):
            index.insert(key, rid(key))
        result = [k for k, _ in index.range_search(5, 10)]
        assert result == [5, 6, 7, 8, 9, 10]

    def test_exclusive_bounds(self, index):
        for key in range(10):
            index.insert(key, rid(key))
        result = [
            k for k, _ in index.range_search(2, 6, include_low=False, include_high=False)
        ]
        assert result == [3, 4, 5]

    def test_open_ended_ranges(self, index):
        for key in range(10):
            index.insert(key, rid(key))
        assert [k for k, _ in index.range_search(low=7)] == [7, 8, 9]
        assert [k for k, _ in index.range_search(high=2)] == [0, 1, 2]

    def test_keys_iterator(self, index):
        for key in (3, 1, 2):
            index.insert(key, rid(key))
        assert list(index.keys()) == [1, 2, 3]


class TestDelete:
    def test_delete_existing_entry(self, index):
        index.insert(1, rid(1))
        assert index.delete(1, rid(1)) is True
        assert index.search(1) == []
        assert len(index) == 0

    def test_delete_missing_key_returns_false(self, index):
        assert index.delete(1, rid(1)) is False

    def test_delete_one_of_duplicates(self, index):
        index.insert(1, rid(1))
        index.insert(1, rid(2))
        assert index.delete(1, rid(1)) is True
        assert index.search(1) == [rid(2)]

    def test_delete_wrong_rid_returns_false(self, index):
        index.insert(1, rid(1))
        assert index.delete(1, rid(9)) is False

    def test_count_tracks_inserts_and_deletes(self, index):
        for key in range(50):
            index.insert(key, rid(key))
        for key in range(0, 50, 2):
            index.delete(key, rid(key))
        assert len(index) == 25
        index.validate()


class TestValidation:
    def test_order_too_small_rejected(self):
        with pytest.raises(StorageError):
            BTreeIndex("bad", order=2)

    def test_validate_detects_corruption(self, index):
        for key in range(100):
            index.insert(key, rid(key))
        # Corrupt the recorded count deliberately.
        index._count += 1
        with pytest.raises(StorageError):
            index.validate()
