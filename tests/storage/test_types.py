"""Tests for column types, value coercion and the value codec."""

import pytest

from repro.errors import TypeMismatchError
from repro.storage.types import ColumnType, coerce_value, decode_value, encode_value


class TestColumnTypeParse:
    def test_parses_canonical_names(self):
        assert ColumnType.parse("integer") is ColumnType.INTEGER
        assert ColumnType.parse("float") is ColumnType.FLOAT
        assert ColumnType.parse("text") is ColumnType.TEXT
        assert ColumnType.parse("bbox") is ColumnType.BBOX

    def test_parses_aliases(self):
        assert ColumnType.parse("int") is ColumnType.INTEGER
        assert ColumnType.parse("BIGINT") is ColumnType.INTEGER
        assert ColumnType.parse("double") is ColumnType.FLOAT
        assert ColumnType.parse("varchar") is ColumnType.TEXT
        assert ColumnType.parse("box") is ColumnType.BBOX

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.parse("jsonb")


class TestCoerceValue:
    def test_none_is_allowed_for_every_type(self):
        for column_type in ColumnType:
            assert coerce_value(None, column_type) is None

    def test_integer_accepts_int_only(self):
        assert coerce_value(7, ColumnType.INTEGER) == 7
        with pytest.raises(TypeMismatchError):
            coerce_value(7.5, ColumnType.INTEGER)
        with pytest.raises(TypeMismatchError):
            coerce_value("7", ColumnType.INTEGER)

    def test_bool_is_rejected_as_integer(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, ColumnType.INTEGER)

    def test_float_widens_int(self):
        assert coerce_value(3, ColumnType.FLOAT) == 3.0
        assert isinstance(coerce_value(3, ColumnType.FLOAT), float)

    def test_text_accepts_str_only(self):
        assert coerce_value("hello", ColumnType.TEXT) == "hello"
        with pytest.raises(TypeMismatchError):
            coerce_value(5, ColumnType.TEXT)

    def test_bbox_normalised_to_float_tuple(self):
        assert coerce_value([1, 2, 3, 4], ColumnType.BBOX) == (1.0, 2.0, 3.0, 4.0)

    def test_bbox_wrong_length_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value((1, 2, 3), ColumnType.BBOX)

    def test_bbox_min_greater_than_max_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value((5, 0, 1, 10), ColumnType.BBOX)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value, column_type",
        [
            (42, ColumnType.INTEGER),
            (-7, ColumnType.INTEGER),
            (3.25, ColumnType.FLOAT),
            ("kyrix", ColumnType.TEXT),
            ("", ColumnType.TEXT),
            ("naïve ünïcode", ColumnType.TEXT),
            ((0.0, 1.0, 2.0, 3.0), ColumnType.BBOX),
            (None, ColumnType.INTEGER),
            (None, ColumnType.BBOX),
        ],
    )
    def test_roundtrip(self, value, column_type):
        encoded = encode_value(value, column_type)
        decoded, offset = decode_value(encoded, 0, column_type)
        assert decoded == value
        assert offset == len(encoded)

    def test_consecutive_values_decode_with_offsets(self):
        buffer = encode_value(5, ColumnType.INTEGER) + encode_value(
            "x", ColumnType.TEXT
        )
        first, offset = decode_value(buffer, 0, ColumnType.INTEGER)
        second, end = decode_value(buffer, offset, ColumnType.TEXT)
        assert first == 5
        assert second == "x"
        assert end == len(buffer)
