"""Tests for the slotted-page heap file."""

import pytest

from repro.errors import PageError, RecordNotFoundError
from repro.storage.heapfile import HeapFile
from repro.storage.pager import BufferPool, PageStore
from repro.storage.row import RecordId
from repro.storage.schema import TableSchema


@pytest.fixture()
def heap() -> HeapFile:
    pool = BufferPool(PageStore(1024), 64)
    schema = TableSchema.build("t", [("id", "int"), ("name", "text")])
    return HeapFile(pool, schema)


class TestInsertFetch:
    def test_insert_returns_rid_and_fetch_roundtrips(self, heap):
        rid = heap.insert((1, "alpha"))
        assert heap.fetch(rid) == (1, "alpha")

    def test_len_counts_live_records(self, heap):
        for i in range(10):
            heap.insert((i, f"row{i}"))
        assert len(heap) == 10

    def test_records_span_multiple_pages(self, heap):
        # Long strings force page overflow with 1 KiB pages.
        rids = [heap.insert((i, "x" * 200)) for i in range(20)]
        assert heap.page_count > 1
        for i, rid in enumerate(rids):
            assert heap.fetch(rid) == (i, "x" * 200)

    def test_record_larger_than_page_rejected(self, heap):
        with pytest.raises(PageError):
            heap.insert((1, "y" * 5000))

    def test_fetch_unknown_page_raises(self, heap):
        heap.insert((1, "a"))
        with pytest.raises(RecordNotFoundError):
            heap.fetch(RecordId(page_no=99, slot_no=0))

    def test_fetch_unknown_slot_raises(self, heap):
        rid = heap.insert((1, "a"))
        with pytest.raises(RecordNotFoundError):
            heap.fetch(RecordId(page_no=rid.page_no, slot_no=50))


class TestDeleteUpdate:
    def test_delete_tombstones_record(self, heap):
        rid = heap.insert((1, "a"))
        heap.delete(rid)
        assert len(heap) == 0
        with pytest.raises(RecordNotFoundError):
            heap.fetch(rid)

    def test_double_delete_raises(self, heap):
        rid = heap.insert((1, "a"))
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.delete(rid)

    def test_update_in_place_when_smaller(self, heap):
        rid = heap.insert((1, "abcdef"))
        new_rid = heap.update(rid, (1, "abc"))
        assert new_rid == rid
        assert heap.fetch(rid) == (1, "abc")

    def test_update_moves_when_larger(self, heap):
        rid = heap.insert((1, "a"))
        new_rid = heap.update(rid, (1, "a" * 100))
        assert heap.fetch(new_rid) == (1, "a" * 100)
        assert len(heap) == 1

    def test_update_deleted_record_raises(self, heap):
        rid = heap.insert((1, "a"))
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.update(rid, (2, "b"))


class TestScan:
    def test_scan_yields_all_live_rows_in_order(self, heap):
        for i in range(25):
            heap.insert((i, f"row{i}"))
        rows = [row for _, row in heap.scan()]
        assert rows == [(i, f"row{i}") for i in range(25)]

    def test_scan_skips_deleted(self, heap):
        rids = [heap.insert((i, "x")) for i in range(5)]
        heap.delete(rids[2])
        ids = [row[0] for row in heap.scan_rows()]
        assert ids == [0, 1, 3, 4]

    def test_scan_rids_resolve(self, heap):
        for i in range(8):
            heap.insert((i, "v"))
        for rid, row in heap.scan():
            assert heap.fetch(rid) == row

    def test_null_values_roundtrip(self, heap):
        rid = heap.insert((None, None))
        assert heap.fetch(rid) == (None, None)
