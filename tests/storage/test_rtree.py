"""Tests for the R-tree spatial index and Rect geometry."""

import random

import pytest

from repro.errors import StorageError
from repro.storage.row import RecordId
from repro.storage.rtree import Rect, RTreeIndex


def rid(n: int) -> RecordId:
    return RecordId(page_no=n // 1000, slot_no=n % 1000)


class TestRect:
    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(StorageError):
            Rect(5, 0, 1, 10)

    def test_area_width_height(self):
        rect = Rect(0, 0, 4, 3)
        assert rect.width == 4
        assert rect.height == 3
        assert rect.area == 12
        assert rect.center == (2.0, 1.5)

    def test_intersects_includes_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(2, 2, 8, 8))
        assert not outer.contains(Rect(2, 2, 11, 8))
        assert outer.contains_point(5, 5)
        assert not outer.contains_point(11, 5)

    def test_union_and_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        assert a.union(b) == Rect(0, 0, 3, 3)
        assert a.intersection(b) == Rect(1, 1, 2, 2)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(0, 0, 1, 1)) == 0.0
        assert a.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)

    def test_scaled(self):
        rect = Rect(0, 0, 2, 2).scaled(1.5)
        assert rect.width == pytest.approx(3.0)
        assert rect.center == (1.0, 1.0)
        with pytest.raises(StorageError):
            Rect(0, 0, 1, 1).scaled(0)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(5, 3) == Rect(5, 3, 6, 4)

    def test_tuple_roundtrip(self):
        rect = Rect(1, 2, 3, 4)
        assert Rect.from_tuple(rect.as_tuple()) == rect

    def test_from_point(self):
        rect = Rect.from_point(5, 5, 0.5)
        assert rect == Rect(4.5, 4.5, 5.5, 5.5)


def _random_entries(count: int, seed: int = 0) -> list[tuple[Rect, RecordId]]:
    rng = random.Random(seed)
    entries = []
    for i in range(count):
        x = rng.uniform(0, 1000)
        y = rng.uniform(0, 500)
        entries.append((Rect(x, y, x + 1, y + 1), rid(i)))
    return entries


def _brute_force(entries, query: Rect) -> set[RecordId]:
    return {r for rect, r in entries if rect.intersects(query)}


class TestRTreeInsert:
    def test_empty_tree_returns_nothing(self):
        tree = RTreeIndex("r")
        assert tree.search(Rect(0, 0, 10, 10)) == []

    def test_insert_and_search_single(self):
        tree = RTreeIndex("r")
        tree.insert(Rect(0, 0, 1, 1), rid(1))
        assert tree.search(Rect(0.5, 0.5, 2, 2)) == [rid(1)]
        assert tree.search(Rect(5, 5, 6, 6)) == []

    def test_incremental_inserts_match_brute_force(self):
        entries = _random_entries(400, seed=1)
        tree = RTreeIndex("r", max_entries=8)
        for rect, r in entries:
            tree.insert(rect, r)
        tree.validate()
        for query in (Rect(0, 0, 100, 100), Rect(500, 200, 700, 400), Rect(999, 499, 1000, 500)):
            assert set(tree.search(query)) == _brute_force(entries, query)

    def test_accepts_tuple_bboxes(self):
        tree = RTreeIndex("r")
        tree.insert((0, 0, 1, 1), rid(1))
        assert tree.search((0, 0, 2, 2)) == [rid(1)]

    def test_height_grows_with_size(self):
        tree = RTreeIndex("r", max_entries=4)
        for rect, r in _random_entries(200, seed=2):
            tree.insert(rect, r)
        assert tree.height() >= 3


class TestRTreeBulkLoad:
    def test_bulk_load_matches_brute_force(self):
        entries = _random_entries(2000, seed=3)
        tree = RTreeIndex("r", max_entries=16)
        tree.bulk_load(entries)
        tree.validate()
        assert len(tree) == 2000
        for query in (Rect(0, 0, 50, 50), Rect(100, 100, 400, 300), Rect(900, 0, 1000, 500)):
            assert set(tree.search(query)) == _brute_force(entries, query)

    def test_bulk_load_empty(self):
        tree = RTreeIndex("r")
        tree.bulk_load([])
        assert len(tree) == 0
        assert tree.search(Rect(0, 0, 1, 1)) == []

    def test_bulk_load_replaces_existing_contents(self):
        tree = RTreeIndex("r")
        tree.insert(Rect(0, 0, 1, 1), rid(999))
        tree.bulk_load(_random_entries(10, seed=4))
        assert len(tree) == 10

    def test_search_entries_returns_bboxes(self):
        entries = _random_entries(50, seed=5)
        tree = RTreeIndex("r")
        tree.bulk_load(entries)
        results = tree.search_entries(Rect(0, 0, 1000, 500))
        assert len(results) == 50
        assert all(isinstance(rect, Rect) for rect, _ in results)

    def test_all_entries(self):
        entries = _random_entries(64, seed=6)
        tree = RTreeIndex("r", max_entries=8)
        tree.bulk_load(entries)
        assert len(list(tree.all_entries())) == 64


class TestRTreeDelete:
    def test_delete_existing(self):
        tree = RTreeIndex("r")
        rect = Rect(0, 0, 1, 1)
        tree.insert(rect, rid(1))
        assert tree.delete(rect, rid(1)) is True
        assert tree.search(Rect(0, 0, 2, 2)) == []
        assert len(tree) == 0

    def test_delete_missing_returns_false(self):
        tree = RTreeIndex("r")
        assert tree.delete(Rect(0, 0, 1, 1), rid(1)) is False

    def test_delete_requires_exact_match(self):
        tree = RTreeIndex("r")
        tree.insert(Rect(0, 0, 1, 1), rid(1))
        assert tree.delete(Rect(0, 0, 1, 2), rid(1)) is False
        assert tree.delete(Rect(0, 0, 1, 1), rid(2)) is False

    def test_delete_from_bulk_loaded_tree(self):
        entries = _random_entries(100, seed=7)
        tree = RTreeIndex("r", max_entries=8)
        tree.bulk_load(entries)
        rect, target = entries[42]
        assert tree.delete(rect, target) is True
        assert target not in set(tree.search(rect))


class TestRTreeConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(StorageError):
            RTreeIndex("r", max_entries=2)
        with pytest.raises(StorageError):
            RTreeIndex("r", min_fill=0.9)

    def test_validate_detects_count_mismatch(self):
        tree = RTreeIndex("r")
        tree.insert(Rect(0, 0, 1, 1), rid(1))
        tree._count = 3
        with pytest.raises(StorageError):
            tree.validate()
