"""Tests for the page store and buffer pool."""

import pytest

from repro.config import StorageConfig
from repro.errors import PageError
from repro.metrics.timer import VirtualClock
from repro.storage.pager import BufferPool, PageStore


class TestPageStore:
    def test_allocate_returns_sequential_ids(self):
        store = PageStore(1024)
        assert store.allocate() == 0
        assert store.allocate() == 1
        assert len(store) == 2

    def test_read_unknown_page_raises(self):
        store = PageStore(1024)
        with pytest.raises(PageError):
            store.read(5)

    def test_write_validates_size(self):
        store = PageStore(1024)
        page = store.allocate()
        with pytest.raises(PageError):
            store.write(page, b"short")

    def test_write_then_read_roundtrip(self):
        store = PageStore(1024)
        page = store.allocate()
        payload = bytes([7]) * 1024
        store.write(page, payload)
        assert store.read(page) == payload

    def test_too_small_page_size_rejected(self):
        with pytest.raises(PageError):
            PageStore(64)


class TestBufferPool:
    def _pool(self, capacity=4, simulate_io=False):
        store = PageStore(1024)
        clock = VirtualClock()
        pool = BufferPool(
            store, capacity, simulate_io=simulate_io,
            page_read_ms=1.0, page_write_ms=2.0, clock=clock,
        )
        return store, pool

    def test_get_page_after_allocate_is_hit(self):
        _, pool = self._pool()
        page_no = pool.allocate_page()
        pool.get_page(page_no)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0

    def test_eviction_writes_back_dirty_pages(self):
        store, pool = self._pool(capacity=2)
        first = pool.allocate_page()
        frame = pool.get_page(first)
        frame[0] = 0xAB
        pool.mark_dirty(first)
        # Allocate enough pages to evict the first one.
        for _ in range(3):
            pool.allocate_page()
        assert first not in pool
        assert store.read(first)[0] == 0xAB

    def test_miss_reloads_from_store(self):
        store, pool = self._pool(capacity=2)
        first = pool.allocate_page()
        frame = pool.get_page(first)
        frame[1] = 0x42
        pool.mark_dirty(first)
        for _ in range(3):
            pool.allocate_page()
        reloaded = pool.get_page(first)
        assert reloaded[1] == 0x42
        assert pool.stats.misses >= 1

    def test_simulated_io_charges_clock(self):
        _, pool = self._pool(capacity=2, simulate_io=True)
        first = pool.allocate_page()
        pool.get_page(first)
        for _ in range(3):
            pool.allocate_page()
        pool.get_page(first)  # miss -> one simulated read
        assert pool.clock.now_ms >= 1.0

    def test_mark_dirty_requires_residency(self):
        _, pool = self._pool()
        with pytest.raises(PageError):
            pool.mark_dirty(99)

    def test_flush_clears_dirty_set(self):
        store, pool = self._pool()
        page_no = pool.allocate_page()
        frame = pool.get_page(page_no)
        frame[5] = 9
        pool.mark_dirty(page_no)
        pool.flush()
        assert store.read(page_no)[5] == 9

    def test_clear_flushes_and_drops_frames(self):
        _, pool = self._pool()
        page_no = pool.allocate_page()
        pool.clear()
        assert page_no not in pool

    def test_from_config(self):
        pool = BufferPool.from_config(StorageConfig(page_size=2048, buffer_pool_pages=16))
        assert pool.page_size == 2048
        assert pool.capacity == 16

    def test_hit_rate(self):
        _, pool = self._pool()
        page_no = pool.allocate_page()
        pool.get_page(page_no)
        pool.get_page(page_no)
        assert pool.stats.hit_rate() == 1.0
