"""Tests for the table abstraction and the database catalog."""

import pytest

from repro.errors import (
    DuplicateIndexError,
    DuplicateTableError,
    SchemaError,
    UnknownIndexError,
    UnknownTableError,
)
from repro.storage.database import Database
from repro.storage.rtree import Rect


@pytest.fixture()
def dots_table(database):
    table = database.create_table(
        "dots",
        [("id", "int"), ("x", "float"), ("y", "float"), ("bbox", "bbox")],
    )
    rows = []
    for i in range(100):
        x, y = float(i * 10), float(i * 5)
        rows.append((i, x, y, (x - 1, y - 1, x + 1, y + 1)))
    table.bulk_load(rows)
    return table


class TestCatalog:
    def test_create_and_lookup(self, database):
        database.create_table("t", [("a", "int")])
        assert database.has_table("t")
        assert "t" in database
        assert database.table_names == ["t"]

    def test_table_names_case_insensitive(self, database):
        database.create_table("MyTable", [("a", "int")])
        assert database.has_table("mytable")
        assert database.table("MYTABLE").name == "mytable"

    def test_duplicate_table_rejected(self, database):
        database.create_table("t", [("a", "int")])
        with pytest.raises(DuplicateTableError):
            database.create_table("t", [("a", "int")])

    def test_drop_table(self, database):
        database.create_table("t", [("a", "int")])
        database.drop_table("t")
        assert not database.has_table("t")
        with pytest.raises(UnknownTableError):
            database.table("t")

    def test_drop_unknown_table(self, database):
        with pytest.raises(UnknownTableError):
            database.drop_table("missing")

    def test_describe(self, database):
        table = database.create_table("t", [("a", "int")])
        table.create_index("t_a", "a")
        description = database.describe()
        assert description["t"]["rows"] == 0
        assert "t_a" in description["t"]["indexes"]

    def test_create_and_load(self, database):
        table = database.create_and_load("t", [("a", "int")], [(1,), (2,)])
        assert table.row_count == 2


class TestTableModification:
    def test_insert_positional_and_mapping(self, database):
        table = database.create_table("t", [("a", "int"), ("b", "text")])
        table.insert((1, "x"))
        table.insert({"a": 2, "b": "y"})
        assert table.row_count == 2
        rows = sorted(table.scan_rows())
        assert rows == [(1, "x"), (2, "y")]

    def test_delete_removes_from_indexes(self, dots_table):
        dots_table.create_index("dots_id", "id", "btree")
        rid = dots_table.lookup_key("id", 5)[0][0]
        dots_table.delete(rid)
        assert dots_table.lookup_key("id", 5) == []
        assert dots_table.row_count == 99

    def test_update_changes_values_and_indexes(self, dots_table):
        dots_table.create_index("dots_id", "id", "btree")
        rid = dots_table.lookup_key("id", 7)[0][0]
        dots_table.update(rid, {"x": 999.0})
        results = dots_table.lookup_key("id", 7)
        assert len(results) == 1
        assert results[0][1][1] == 999.0

    def test_insert_wrong_arity_rejected(self, database):
        table = database.create_table("t", [("a", "int"), ("b", "int")])
        with pytest.raises(SchemaError):
            table.insert((1,))


class TestIndexManagement:
    def test_create_index_backfills(self, dots_table):
        info = dots_table.create_index("dots_id", "id", "btree", unique=True)
        assert len(info.index) == 100

    def test_duplicate_index_name_rejected(self, dots_table):
        dots_table.create_index("i", "id")
        with pytest.raises(DuplicateIndexError):
            dots_table.create_index("i", "x")

    def test_index_on_unknown_column_rejected(self, dots_table):
        with pytest.raises(SchemaError):
            dots_table.create_index("i", "missing")

    def test_drop_index(self, dots_table):
        dots_table.create_index("i", "id")
        dots_table.drop_index("i")
        with pytest.raises(UnknownIndexError):
            dots_table.get_index("i")

    def test_find_index_on(self, dots_table):
        dots_table.create_index("i_hash", "id", "hash")
        assert dots_table.find_index_on("id").kind == "hash"
        assert dots_table.find_index_on("id", kinds=("btree",)) is None
        assert dots_table.find_index_on("x") is None


class TestAccessPaths:
    def test_lookup_key_with_and_without_index(self, dots_table):
        no_index = dots_table.lookup_key("id", 10)
        dots_table.create_index("dots_id", "id", "btree")
        with_index = dots_table.lookup_key("id", 10)
        assert [row for _, row in no_index] == [row for _, row in with_index]

    def test_lookup_keys(self, dots_table):
        dots_table.create_index("dots_id", "id", "btree")
        results = dots_table.lookup_keys("id", [1, 3, 5])
        assert sorted(row[0] for _, row in results) == [1, 3, 5]

    def test_spatial_search_with_and_without_index(self, dots_table):
        query = Rect(0, 0, 200, 100)
        no_index = {row[0] for _, row in dots_table.spatial_search("bbox", query)}
        dots_table.create_index("dots_bbox", "bbox", "rtree")
        with_index = {row[0] for _, row in dots_table.spatial_search("bbox", query)}
        assert no_index == with_index
        assert with_index  # the query rectangle does contain dots

    def test_fetch_many(self, dots_table):
        rids = [rid for rid, _ in list(dots_table.scan())[:5]]
        rows = dots_table.fetch_many(rids)
        assert len(rows) == 5

    def test_bulk_load_rebuilds_indexes(self, database):
        table = database.create_table("t", [("a", "int")])
        table.create_index("t_a", "a", "btree")
        table.bulk_load([(i,) for i in range(50)])
        assert len(table.get_index("t_a").index) == 50
        assert table.lookup_key("a", 25)[0][1] == (25,)


class TestStatistics:
    def test_statistics_counts_and_ranges(self, dots_table):
        stats = dots_table.statistics()
        assert stats.row_count == 100
        assert stats.columns["id"].min_value == 0
        assert stats.columns["id"].max_value == 99

    def test_statistics_cached_until_refresh(self, dots_table):
        first = dots_table.statistics()
        assert dots_table.statistics() is first
        dots_table.insert((100, 1.0, 1.0, (0, 0, 1, 1)))
        refreshed = dots_table.statistics()
        assert refreshed.row_count == 101

    def test_selectivity_estimate(self, dots_table):
        stats = dots_table.statistics()
        estimate = stats.selectivity_estimate("id", dots_table.schema)
        assert 0 < estimate <= 1.0 / 50
