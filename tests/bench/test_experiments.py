"""Integration tests of the canned experiments at tiny scale.

These exercise the same code paths as the pytest-benchmark targets but on a
small dataset, and check the qualitative claims the paper makes (who wins,
in which direction the ablations move) rather than absolute numbers.
"""

import pytest

from repro.bench.experiments import (
    build_stack,
    dataset_for_scale,
    fetch_footprint,
    figure6,
    figure7,
    index_design_ablation,
    prefetch_cache_ablation,
    separability_ablation,
)
from repro.server.schemes import (
    dbox50_scheme,
    dbox_scheme,
    tile_mapping_scheme,
    tile_spatial_scheme,
)


@pytest.fixture(scope="module")
def tiny_uniform_stack():
    return build_stack("uniform", scale="tiny", tile_sizes=(1024,))


@pytest.fixture(scope="module")
def tiny_skewed_stack():
    return build_stack("skewed", scale="tiny", tile_sizes=(1024,))


class TestScales:
    def test_dataset_for_scale(self):
        assert dataset_for_scale("uniform", "paper").num_points == 100_000_000
        assert dataset_for_scale("skewed", "tiny").skewed is True
        assert dataset_for_scale("uniform", "bench").num_points >= 100_000

    def test_tiny_canvas_fits_paper_traces(self):
        spec = dataset_for_scale("uniform", "tiny")
        from repro.datagen.traces import paper_traces

        traces = paper_traces(spec.canvas_width, spec.canvas_height)
        assert set(traces) == {"a", "b", "c"}


class TestFigure6And7:
    SCHEMES = [dbox_scheme(), dbox50_scheme(), tile_spatial_scheme(1024), tile_mapping_scheme(1024)]

    def test_figure6_dbox_wins_overall(self, tiny_uniform_stack):
        experiment = figure6(stack=tiny_uniform_stack, schemes=self.SCHEMES)
        assert len(experiment.results) == len(self.SCHEMES) * 3
        # The headline claim: dbox has the best overall (mean) performance.
        averages = {s.name: experiment.scheme_average(s.name) for s in self.SCHEMES}
        assert min(averages, key=averages.get) == "dbox"

    def test_figure7_dbox_wins_on_skewed_data(self, tiny_skewed_stack):
        experiment = figure7(stack=tiny_skewed_stack, schemes=self.SCHEMES)
        averages = {s.name: experiment.scheme_average(s.name) for s in self.SCHEMES}
        assert min(averages, key=averages.get) == "dbox"

    def test_tile_spatial_1024_competitive_on_aligned_trace(self, tiny_uniform_stack):
        """Paper observation (2): on trace a the aligned 1024 tiles are
        competitive — better than dbox 50%."""
        experiment = figure6(
            stack=tiny_uniform_stack,
            schemes=[dbox50_scheme(), tile_spatial_scheme(1024)],
        )
        trace_a = {r.scheme: r.average_response_ms for r in experiment.by_trace("a")}
        assert trace_a["tile spatial 1024"] < trace_a["dbox 50%"]

    def test_mapping_design_slower_than_spatial_at_same_tile_size(self, tiny_uniform_stack):
        experiment = index_design_ablation(stack=tiny_uniform_stack, tile_size=1024)
        spatial = experiment.scheme_average("tile spatial 1024")
        mapping = experiment.scheme_average("tile mapping 1024")
        assert mapping > spatial


class TestFootprint:
    def test_footprint_counts(self, tiny_uniform_stack):
        results = fetch_footprint(stack=tiny_uniform_stack, tile_sizes=(1024, 4096))
        by_key = {(r.scheme, r.trace): r for r in results}
        # Dynamic boxes fetch exactly the viewports on every trace.
        for trace in ("a", "b", "c"):
            dbox = by_key[("dbox", trace)]
            assert dbox.overfetch_ratio == pytest.approx(1.0, rel=0.01)
            # Big tiles fetch far more area than the viewports need.
            assert by_key[("tile 4096", trace)].overfetch_ratio > 3.0
        # Misaligned trace b needs more tile requests than aligned trace a.
        assert by_key[("tile 1024", "b")].requests >= by_key[("tile 1024", "a")].requests
        # dbox 50% fetches more area than plain dbox.
        assert (
            by_key[("dbox 50%", "a")].fetched_area
            > by_key[("dbox", "a")].fetched_area
        )


class TestAblations:
    def test_prefetch_and_cache_help_dbox(self, tiny_uniform_stack):
        results = prefetch_cache_ablation(stack=tiny_uniform_stack, trace_name="a")
        by_variant = {r.variant: r for r in results}
        assert set(by_variant) == {"no-cache", "cache", "cache+momentum"}
        # Returning along the same trace, caching cannot be slower than no
        # caching, and momentum prefetching issues prefetch requests.
        assert (
            by_variant["cache"].average_response_ms
            <= by_variant["no-cache"].average_response_ms * 1.5
        )
        assert by_variant["cache+momentum"].prefetch_requests > 0
        assert by_variant["cache"].cache_hit_rate >= by_variant["no-cache"].cache_hit_rate

    def test_separability_skips_precompute_cost(self):
        results = separability_ablation(scale="tiny")
        by_variant = {r.variant: r for r in results}
        assert set(by_variant) == {"separable", "precomputed"}
        # Skipping placement precomputation must be cheaper to set up, while
        # query latency stays in the same ballpark.
        assert (
            by_variant["separable"].precompute_ms
            < by_variant["precomputed"].precompute_ms
        )
        assert by_variant["separable"].average_response_ms > 0
