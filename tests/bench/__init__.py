"""Test package (enables relative imports between test modules)."""
