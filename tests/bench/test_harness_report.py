"""Tests for the experiment harness and report rendering."""

import pytest

from repro.bench.harness import ExperimentResult, SchemeResult, run_experiment, run_scheme_on_trace
from repro.bench.report import (
    format_comparison,
    format_experiment_table,
    format_figure,
    format_table,
    speedup_summary,
)
from repro.datagen.traces import Trace
from repro.metrics.collector import summarize
from repro.server.schemes import dbox_scheme, tile_spatial_scheme


def small_trace(stack, steps: int = 3) -> Trace:
    """A short tile-aligned trace fitting the tiny test canvas."""
    viewport = stack.backend.config.viewport_width
    start_x = stack.spec.canvas_width - viewport - steps * 512
    positions = [(start_x + i * 512, 512.0) for i in range(steps + 1)]
    return Trace(name="tiny", positions=tuple(positions))


def make_result(scheme: str, trace: str, avg: float) -> SchemeResult:
    return SchemeResult(
        scheme=scheme, dataset="uniform", trace=trace, steps=3,
        average_response_ms=avg, summary=summarize([avg]),
        query_ms=avg / 2, network_ms=avg / 2, requests=3, objects=30,
        bytes_fetched=3000, cache_hit_rate=0.0,
    )


class TestHarness:
    def test_run_scheme_on_trace_measures_steps(self, dots_stack):
        trace = small_trace(dots_stack)
        result = run_scheme_on_trace(dots_stack, dbox_scheme(), trace)
        assert result.steps == 3
        assert result.scheme == "dbox"
        assert result.average_response_ms > 0
        assert result.requests >= 3

    def test_run_experiment_covers_all_scheme_trace_pairs(self, dots_stack):
        schemes = [dbox_scheme(), tile_spatial_scheme(512)]
        traces = [small_trace(dots_stack)]
        experiment = run_experiment(dots_stack, schemes, traces, name="tiny")
        assert len(experiment.results) == 2
        assert {r.scheme for r in experiment.results} == {"dbox", "tile spatial 512"}

    def test_repetitions_average(self, dots_stack):
        traces = [small_trace(dots_stack)]
        experiment = run_experiment(
            dots_stack, [dbox_scheme()], traces, repetitions=2
        )
        assert len(experiment.results) == 1

    def test_experiment_result_accessors(self):
        experiment = ExperimentResult(name="x", dataset="uniform")
        experiment.results = [
            make_result("dbox", "a", 5.0),
            make_result("tile spatial 1024", "a", 9.0),
            make_result("dbox", "b", 7.0),
            make_result("tile spatial 1024", "b", 6.0),
        ]
        assert experiment.best_scheme_per_trace() == {"a": "dbox", "b": "tile spatial 1024"}
        assert experiment.scheme_average("dbox") == pytest.approx(6.0)
        assert len(experiment.by_trace("a")) == 2
        assert len(experiment.by_scheme("dbox")) == 2
        with pytest.raises(KeyError):
            experiment.scheme_average("missing")

    def test_scheme_result_row(self):
        row = make_result("dbox", "a", 5.0).row()
        assert row["scheme"] == "dbox"
        assert row["avg_ms"] == 5.0
        assert row["kilobytes"] == pytest.approx(2.9, abs=0.1)


class TestReport:
    def _experiment(self) -> ExperimentResult:
        experiment = ExperimentResult(name="demo", dataset="uniform")
        experiment.results = [
            make_result("dbox", "a", 5.0),
            make_result("tile spatial 1024", "a", 10.0),
        ]
        return experiment

    def test_format_table_alignment_and_empty(self):
        assert format_table([]) == "(no rows)"
        text = format_table([{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_experiment_table_contains_schemes(self):
        text = format_experiment_table(self._experiment())
        assert "dbox" in text
        assert "tile spatial 1024" in text

    def test_format_figure_bars_and_winner(self):
        text = format_figure(self._experiment(), title="Figure 6")
        assert "Figure 6" in text
        assert "Trace-a" in text
        assert "winners: trace-a: dbox" in text
        # The slower scheme gets the longer bar.
        dbox_line = next(l for l in text.splitlines() if l.strip().startswith("dbox"))
        tile_line = next(l for l in text.splitlines() if "tile spatial" in l)
        assert tile_line.count("#") > dbox_line.count("#")

    def test_speedup_summary(self):
        speedups = speedup_summary(self._experiment(), "tile spatial 1024", "dbox")
        assert speedups["a"] == pytest.approx(2.0)

    def test_format_comparison(self):
        text = format_comparison([self._experiment()], ["dbox", "missing"])
        assert "dbox" in text
        assert "missing" not in text
