"""Correctness parity: a sharded cluster answers exactly like one backend.

The acceptance bar for the cluster subsystem: for every request shape (tile
and dynamic box) and both database designs (spatial and mapping), a cluster
at 2 and 4 shards must return exactly the same tuple set as the unsharded
backend — boundary-straddling objects deduplicated, nothing lost — on both
the usmap and EEG applications, with both partitioning strategies.
"""

from __future__ import annotations

import pytest

from repro.bench.apps import build_dots_backend, default_config
from repro.cluster import build_cluster
from repro.datagen.synthetic import tiny_spec
from repro.net.protocol import DataRequest, DataResponse

from tests.cluster.conftest import parity_requests


def _sorted_objects(response):
    return sorted(response.objects, key=lambda obj: obj["tuple_id"])


@pytest.mark.parametrize("stack_fixture", ["usmap_parity_stack", "eeg_parity_stack"])
@pytest.mark.parametrize("shard_count", [2, 4])
@pytest.mark.parametrize("strategy", ["grid", "kd"])
def test_cluster_matches_single_backend(request, stack_fixture, shard_count, strategy):
    stack = request.getfixturevalue(stack_fixture)
    cluster = build_cluster(
        stack.backend,
        shard_count=shard_count,
        strategy=strategy,
        tile_sizes=stack.tile_sizes,
    )
    assert cluster.shard_count == shard_count

    fetched_anything = False
    for data_request in parity_requests(stack):
        single = stack.backend.handle(data_request)
        routed = cluster.router.handle(data_request)
        assert _sorted_objects(routed) == _sorted_objects(single), (
            f"parity violated for {data_request}"
        )
        fetched_anything = fetched_anything or bool(single.objects)
    assert fetched_anything, "parity suite never fetched any objects"


def test_sharding_distributes_rows(usmap_parity_stack):
    """With several shards, no single shard holds the whole dataset."""
    stack = usmap_parity_stack
    cluster = build_cluster(stack.backend, shard_count=4, strategy="grid")
    county_table = stack.backend.compiled.layer_plan("countymap", 0).placement_table
    source_rows = stack.backend.database.table(county_table).row_count
    per_shard = [shard.rows_by_table[county_table] for shard in cluster.shards]
    assert all(rows < source_rows for rows in per_shard)
    # Replication only happens at boundaries: the total is close to source.
    assert sum(per_shard) >= source_rows


def test_scatter_only_touches_overlapping_shards(usmap_parity_stack):
    stack = usmap_parity_stack
    cluster = build_cluster(stack.backend, shard_count=4, strategy="grid")
    partitioning = cluster.partitionings["statemap"]
    region = partitioning.regions[0].rect
    data_request = DataRequest(
        app_name=stack.app_name,
        canvas_id="statemap",
        layer_index=0,
        granularity="box",
        xmin=region.xmin + 1.0,
        ymin=region.ymin + 1.0,
        xmax=region.xmin + 10.0,
        ymax=region.ymin + 10.0,
    )
    response = cluster.router.handle(data_request)
    assert len(response.shard_ms) == 1
    assert cluster.router.stats.fanout == {1: 1}


def test_router_cache_and_per_shard_timers(eeg_parity_stack):
    stack = eeg_parity_stack
    cluster = build_cluster(stack.backend, shard_count=2, strategy="grid")
    canvas_id, layer_index, _ = stack.canvases[0]
    plan = stack.backend.compiled.canvas_plan(canvas_id)
    data_request = DataRequest(
        app_name=stack.app_name,
        canvas_id=canvas_id,
        layer_index=layer_index,
        granularity="box",
        xmin=0.0,
        ymin=0.0,
        xmax=plan.width,
        ymax=plan.height,
    )
    first = cluster.router.handle(data_request)
    assert first.from_cache is False
    assert set(first.shard_ms) == {"shard0", "shard1"}
    # Critical path: slowest shard plus merge overhead.
    assert first.query_ms >= max(first.shard_ms.values())

    second = cluster.router.handle(data_request)
    assert second.from_cache is True
    assert second.objects == first.objects
    assert cluster.router.cache_stats()["hits"] == 1


def test_cluster_enabled_config_builds_router():
    spec = tiny_spec("uniform", num_points=2_000, seed=3)
    config = default_config(viewport=512)
    config.cluster.enabled = True
    config.cluster.shard_count = 2
    stack = build_dots_backend(spec, config=config)
    assert stack.cluster is not None
    assert stack.cluster.shard_count == 2
    assert stack.service is stack.cluster.router

    # The harness drives the router, not the bypassed single backend.
    from repro.bench.harness import run_scheme_on_trace
    from repro.datagen.traces import Trace
    from repro.server.schemes import dbox_scheme

    trace = Trace(name="t", positions=((0.0, 0.0), (512.0, 0.0), (1024.0, 256.0)))
    result = run_scheme_on_trace(stack, dbox_scheme(), trace)
    assert result.steps == 2
    assert stack.cluster.router.stats.requests > 0
    assert stack.backend.stats.requests == 0  # single backend never queried

    plain = build_dots_backend(spec, config=default_config(viewport=512))
    assert plain.cluster is None
    assert plain.service is plain.backend


def test_shard_requests_have_disjoint_cache_keys():
    base = DataRequest(
        app_name="a", canvas_id="c", layer_index=0, granularity="box",
        xmin=0.0, ymin=0.0, xmax=1.0, ymax=1.0,
    )
    keys = {base.cache_key(), base.for_shard(0).cache_key(), base.for_shard(1).cache_key()}
    assert len(keys) == 3


def test_response_json_roundtrip_preserves_shard_fields():
    base = DataRequest(
        app_name="a", canvas_id="c", layer_index=0, granularity="box",
        xmin=0.0, ymin=0.0, xmax=1.0, ymax=1.0,
    )
    response = DataResponse(
        request=base,
        objects=[{"tuple_id": 1}],
        query_ms=2.5,
        queries_issued=2,
        shard_ms={"shard0": 1.0, "shard1": 2.5},
        coalesced=True,
    )
    decoded = DataResponse.from_json(response.to_json())
    assert decoded.shard_ms == response.shard_ms
    assert decoded.coalesced is True
    assert decoded.request == base
