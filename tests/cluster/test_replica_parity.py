"""Replica failover parity: the acceptance bar of the replication rework.

A 2-shard × 2-replica cluster whose replica 0 of *every* shard is
fault-injected to fail each request must return byte-identical dbox/tile
payloads to a fault-free 1-replica cluster built from the same backend, on
both evaluation applications (usmap + EEG, both database designs), and the
router's stats must attribute every failure to the broken replicas.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.serving import FaultSchedule, fault_replica

from tests.cluster.conftest import parity_requests as _all_requests
from tests.cluster.conftest import payload_bytes as _payload_bytes


@pytest.mark.parametrize("stack_fixture", ["usmap_parity_stack", "eeg_parity_stack"])
@pytest.mark.parametrize("policy", ["round_robin", "least_inflight", "per_key_affinity"])
def test_failover_is_byte_identical_to_single_replica(request, stack_fixture, policy):
    stack = request.getfixturevalue(stack_fixture)
    tile_sizes = stack.tile_sizes
    baseline = build_cluster(
        stack.backend, shard_count=2, replicas=1, tile_sizes=tile_sizes
    )
    replicated = build_cluster(
        stack.backend,
        shard_count=2,
        replicas=2,
        replica_policy=policy,
        tile_sizes=tile_sizes,
    )
    try:
        replica_sets = replicated.router.replica_sets()
        assert set(replica_sets) == {0, 1}
        # Replica 0 of every shard fails every request it is handed.
        for layer in replica_sets.values():
            fault_replica(layer, 0, FaultSchedule.fail_always())

        compared = 0
        for data_request in _all_requests(stack):
            healthy = baseline.router.handle(data_request)
            survived = replicated.router.handle(data_request)
            assert _payload_bytes(survived) == _payload_bytes(healthy), (
                f"failover payload diverged for {data_request}"
            )
            compared += 1
        assert compared > 0

        stats = replicated.router.stats
        # Failures are attributed to the broken replicas and nothing else.
        assert sum(stats.per_replica_failures.values()) > 0
        assert all(key.endswith("/replica0") for key in stats.per_replica_failures)
        for shard_id, layer in replica_sets.items():
            assert layer.stats.failures_for(1) == 0
            assert layer.stats.failures_for(0) == layer.stats.requests_for(0)
            assert stats.per_replica_failures.get(
                f"shard{shard_id}/replica0", 0
            ) == layer.stats.failures_for(0)
            # The healthy replica served every scatter that hit the shard.
            assert layer.stats.requests_for(1) == stats.per_shard_requests.get(
                shard_id, 0
            )
    finally:
        baseline.close()
        replicated.close()


def test_replicated_cluster_without_faults_matches_baseline(usmap_parity_stack):
    """Replication alone must not change payloads (healthy-path parity)."""
    stack = usmap_parity_stack
    tile_sizes = stack.tile_sizes
    baseline = build_cluster(
        stack.backend, shard_count=2, replicas=1, tile_sizes=tile_sizes
    )
    replicated = build_cluster(
        stack.backend, shard_count=2, replicas=3, tile_sizes=tile_sizes
    )
    try:
        for data_request in _all_requests(stack):
            assert _payload_bytes(replicated.router.handle(data_request)) == (
                _payload_bytes(baseline.router.handle(data_request))
            )
        assert not replicated.router.stats.per_replica_failures
    finally:
        baseline.close()
        replicated.close()
