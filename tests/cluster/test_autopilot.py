"""Autopilot control-loop behaviour: hysteresis, autoscaling, read-repair.

Every test drives :meth:`~repro.cluster.autopilot.ClusterAutopilot.tick`
directly with a :class:`~repro.metrics.timer.VirtualClock` — the
background thread is exercised only by the lifecycle test, so nothing
here sleeps or races.  The hysteresis suite pins the nastiest edge: a
hotspot whose skew sits *exactly at* the rebalance threshold on every
pass must still produce at most one migration per cooldown window, in
both worker topologies.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import build_stack, hotspot_box_requests
from repro.cluster import (
    ClusterAutopilot,
    ClusterRouter,
    LoadRebalancer,
    build_cluster,
)
from repro.config import AutopilotConfig
from repro.errors import KyrixError
from repro.metrics.timer import VirtualClock
from repro.serving import build_service, unwrap
from repro.serving.faults import diverge_replica, kill_worker
from repro.telemetry import configure as configure_telemetry
from repro.telemetry import get_registry

from tests.cluster.conftest import payload_bytes

TOPOLOGIES = ("threads", "processes")


@pytest.fixture(scope="module")
def dots_stack():
    return build_stack("skewed", scale="tiny", tile_sizes=())


def hotspot_trace(stack, cluster, steps=80):
    """Box requests confined to shard 0's *current* region.

    With traffic strictly inside one region of an N-shard partitioning
    the per-shard load is ``{0: steps, others: 0}``, so the measured skew
    is exactly ``N == max/mean`` — for a 2-shard grid that is exactly the
    default ``rebalance_skew_threshold`` of 2.0, the hysteresis edge.
    """
    region = cluster.partitionings[stack.canvas_id].region(0).rect
    return hotspot_box_requests("dots", stack.canvas_id, 0, region, steps=steps)


def replay(router, requests):
    """Serve every request as a fresh scatter (the router cache would
    otherwise absorb the repeats and hide the load from the counters)."""
    for request in requests:
        router.cache.clear()
        router.handle(request)


def migrations(autopilot):
    return [
        action
        for action in autopilot.actions
        if action.kind in ("rebalance", "grow", "shrink", "replica_scale")
        and action.report is not None
        and action.report.swapped
    ]


# -- configuration -----------------------------------------------------------------


def test_autopilot_config_validation():
    AutopilotConfig().validate()
    with pytest.raises(KyrixError):
        AutopilotConfig(interval_s=0.0).validate()
    with pytest.raises(KyrixError):
        AutopilotConfig(min_shards=4, max_shards=2).validate()
    with pytest.raises(KyrixError):
        AutopilotConfig(shrink_requests=512, grow_requests=256).validate()
    with pytest.raises(KyrixError):
        AutopilotConfig(hysteresis=-0.1).validate()
    with pytest.raises(KyrixError):
        AutopilotConfig(rearm_windows=0).validate()


def test_autopilot_config_round_trips_through_dict(dots_stack):
    from repro.config import KyrixConfig

    config = KyrixConfig()
    config.cluster.autopilot.enabled = True
    config.cluster.autopilot.cooldown_s = 12.0
    restored = KyrixConfig.from_dict(config.to_dict())
    assert isinstance(restored.cluster.autopilot, AutopilotConfig)
    assert restored.cluster.autopilot.enabled is True
    assert restored.cluster.autopilot.cooldown_s == 12.0


# -- hysteresis / cooldown ---------------------------------------------------------


@pytest.mark.parametrize("worker_mode", TOPOLOGIES)
def test_oscillation_at_threshold_one_migration_per_window(dots_stack, worker_mode):
    """Skew pinned exactly at the threshold must not thrash the cluster.

    Every pass replays a hotspot confined to the current shard 0 region,
    so the autopilot sees skew == 2.0 == threshold on *every* tick.  The
    first pass migrates; after that the cooldown and the hysteresis
    disarm must each independently hold further migrations to at most
    one per cooldown window.
    """
    cluster = build_cluster(
        dots_stack.backend,
        shard_count=2,
        strategy="grid",
        worker_mode=worker_mode,
        rebalance=True,
    )
    clock = VirtualClock()
    autopilot = ClusterAutopilot(cluster, clock=clock)
    cooldown_ms = autopilot.config.cooldown_s * 1000.0
    try:
        # First window: the armed trigger fires exactly once.
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        assert autopilot.tick(), "armed autopilot must act on threshold skew"
        assert len(migrations(autopilot)) == 1

        # Oscillate at the threshold for the rest of the window: traffic
        # re-concentrates on one shard of whatever partitioning is
        # current, so skew == threshold on every pass.
        for _ in range(4):
            clock.advance(cooldown_ms / 8)
            replay(cluster.router, hotspot_trace(dots_stack, cluster))
            autopilot.tick()
        assert len(migrations(autopilot)) == 1, (
            "cooldown window must cap migrations at one"
        )

        # Past the window the trigger is still *disarmed*: skew never
        # fell below threshold - hysteresis, so hysteresis alone must
        # keep holding the line.
        clock.advance(cooldown_ms)
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        autopilot.tick()
        assert len(migrations(autopilot)) == 1, (
            "hysteresis must hold while skew never left the trigger band"
        )

        # A genuinely quiet pass (skew samples 1.0) re-arms; the next
        # hotspot inside a fresh window may migrate exactly once more.
        autopilot.tick()
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        clock.advance(cooldown_ms)
        autopilot.tick()
        assert len(migrations(autopilot)) == 2
    finally:
        cluster.close()


def test_persistent_skew_rearms_after_rearm_windows(dots_stack):
    """One bad split must not disarm the loop forever.

    If skew never leaves the trigger band (so the hysteresis re-arm
    below ``threshold - hysteresis`` never fires), the autopilot retries
    with a fresher load histogram after ``rearm_windows`` full cooldown
    windows — convergence without thrash: still at most one migration
    per window.
    """
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    clock = VirtualClock()
    autopilot = ClusterAutopilot(cluster, clock=clock)
    cooldown_ms = autopilot.config.cooldown_s * 1000.0
    assert autopilot.config.rearm_windows == 2
    try:
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        assert autopilot.tick()
        assert len(migrations(autopilot)) == 1

        # One window later: cooldown has expired but the trigger is
        # still disarmed (skew stayed pinned in the band) and the
        # rearm deadline (2 windows) has not passed.
        clock.advance(cooldown_ms + 1)
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        autopilot.tick()
        assert len(migrations(autopilot)) == 1

        # Two windows after the migration: the escape hatch re-arms the
        # trigger and the persistent skew earns exactly one retry.
        clock.advance(cooldown_ms)
        replay(cluster.router, hotspot_trace(dots_stack, cluster))
        autopilot.tick()
        assert len(migrations(autopilot)) == 2
    finally:
        cluster.close()


def test_rebalance_epoch_and_parity_across_autopilot_migration(dots_stack):
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    autopilot = ClusterAutopilot(cluster, clock=VirtualClock())
    try:
        requests = hotspot_trace(dots_stack, cluster)
        cluster.router.cache.clear()
        before = [payload_bytes(cluster.router.handle(r)) for r in requests[:10]]
        assert any(payload != b"[]" for payload in before)
        replay(cluster.router, requests)
        assert autopilot.tick()
        assert cluster.router.epoch == 1
        cluster.router.cache.clear()
        after = [payload_bytes(cluster.router.handle(r)) for r in requests[:10]]
        assert after == before
    finally:
        cluster.close()


# -- autoscaling -------------------------------------------------------------------


def test_grow_under_sustained_load_and_shrink_when_idle(dots_stack):
    config = AutopilotConfig(
        grow_requests=32, shrink_requests=4, shrink_idle_ticks=2, max_shards=4
    )
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    clock = VirtualClock()
    autopilot = ClusterAutopilot(cluster, config=config, clock=clock)
    cooldown_ms = config.cooldown_s * 1000.0
    try:
        requests = hotspot_trace(dots_stack, cluster)
        cluster.router.cache.clear()
        before = [payload_bytes(cluster.router.handle(r)) for r in requests[:10]]

        replay(cluster.router, requests)
        actions = autopilot.tick()
        assert [a.kind for a in actions] == ["grow"]
        assert cluster.router.shard_count == 4

        # Idle passes: the first shrink_idle_ticks quiet ticks only count
        # up; then the halving starts, one cooldown window per step.
        shrinks = 0
        for _ in range(8):
            clock.advance(cooldown_ms)
            shrinks += sum(1 for a in autopilot.tick() if a.kind == "shrink")
            if cluster.router.shard_count == 1:
                break
        assert cluster.router.shard_count == 1
        assert shrinks == 2  # 4 -> 2 -> 1, one halving per window

        cluster.router.cache.clear()
        after = [payload_bytes(cluster.router.handle(r)) for r in requests[:10]]
        assert after == before
    finally:
        cluster.close()


def test_replica_autoscale_from_pressure(dots_stack):
    config = AutopilotConfig(
        grow_requests=10_000,  # park shard growth: isolate replica pressure
        replica_pressure=16,
        max_replicas=2,
    )
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    # Park the skew trigger too (the hotspot trace is maximally skewed by
    # construction): this test isolates the pressure policy.
    rebalancer = LoadRebalancer(cluster, skew_threshold=1000.0)
    autopilot = ClusterAutopilot(
        cluster, config=config, clock=VirtualClock(), rebalancer=rebalancer
    )
    try:
        replay(cluster.router, hotspot_trace(dots_stack, cluster, steps=80))
        actions = autopilot.tick()
        kinds = [a.kind for a in actions]
        assert "replica_scale" in kinds
        assert cluster.router.cluster_config.replicas == 2
        assert cluster.router.replica_sets(), "shards must now front replica sets"
    finally:
        cluster.close()


# -- read-repair -------------------------------------------------------------------


def test_read_repair_thread_mode(dots_stack):
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", replicas=2,
        rebalance=True,
    )
    autopilot = ClusterAutopilot(cluster, clock=VirtualClock())
    try:
        requests = hotspot_trace(dots_stack, cluster, steps=20)
        cluster.router.cache.clear()
        before = [payload_bytes(cluster.router.handle(r)) for r in requests[:5]]

        previous = diverge_replica(cluster, 0, 1)
        assert previous  # replica sets record spawn-time hashes
        assert cluster.router.divergent_replicas()
        actions = autopilot.tick()
        repairs = [a for a in actions if a.kind == "read_repair"]
        assert len(repairs) == 1
        assert repairs[0].detail["healthy"] is True
        assert not cluster.router.divergent_replicas()

        cluster.router.cache.clear()
        after = [payload_bytes(cluster.router.handle(r)) for r in requests[:5]]
        assert after == before
    finally:
        cluster.close()


def test_read_repair_restores_killed_then_diverged_worker(dots_stack):
    """The acceptance scenario: kill a worker replica, flag it diverged,
    and the autopilot must restore a matching checksum with zero failed
    requests — failover covers the gap, repair closes it."""
    cluster = build_cluster(
        dots_stack.backend,
        shard_count=2,
        strategy="grid",
        replicas=2,
        worker_mode="processes",
        rebalance=True,
    )
    autopilot = ClusterAutopilot(cluster, clock=VirtualClock())
    try:
        requests = hotspot_trace(dots_stack, cluster, steps=20)
        cluster.router.cache.clear()
        before = [payload_bytes(cluster.router.handle(r)) for r in requests[:5]]

        kill_worker(cluster, 0, 1)
        diverge_replica(cluster, 0, 1)
        failed = 0
        for request in requests:
            cluster.router.cache.clear()
            try:
                cluster.router.handle(request)
            except Exception:
                failed += 1
        assert failed == 0, "failover must absorb the dead replica"

        actions = autopilot.tick()
        repairs = [a for a in actions if a.kind == "read_repair"]
        assert len(repairs) == 1
        assert repairs[0].detail["healthy"] is True
        assert not cluster.router.divergent_replicas()
        checksums = cluster.router.stats.replica_checksums
        assert checksums["shard0/replica0"] == checksums["shard0/replica1"]

        failed = 0
        for request in requests:
            cluster.router.cache.clear()
            try:
                cluster.router.handle(request)
            except Exception:
                failed += 1
        assert failed == 0
        cluster.router.cache.clear()
        after = [payload_bytes(cluster.router.handle(r)) for r in requests[:5]]
        assert after == before
    finally:
        cluster.close()


def test_read_repair_can_be_disabled(dots_stack):
    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", replicas=2,
        rebalance=True,
    )
    autopilot = ClusterAutopilot(
        cluster, config=AutopilotConfig(read_repair=False), clock=VirtualClock()
    )
    try:
        diverge_replica(cluster, 0, 1)
        actions = autopilot.tick()
        assert not [a for a in actions if a.kind == "read_repair"]
        assert cluster.router.divergent_replicas()
    finally:
        cluster.close()


# -- lifecycle / telemetry ---------------------------------------------------------


def test_build_service_attaches_and_stops_autopilot(dots_stack):
    service = build_service(
        dots_stack.backend.config,
        backend=dots_stack.backend,
        precompute=False,
        shard_count=2,
        strategy="grid",
        autopilot=True,
    )
    router = unwrap(service, ClusterRouter)
    autopilot = router.cluster.autopilot
    assert autopilot is not None
    assert autopilot._thread is not None and autopilot._thread.is_alive()
    assert router.cluster.rebalancer is not None, "autopilot implies a rebalancer"
    service.close()
    assert autopilot._thread is None


def test_autopilot_actions_counted_in_telemetry(dots_stack):
    configure_telemetry(dots_stack.backend.config.telemetry, enabled=True)
    try:
        cluster = build_cluster(
            dots_stack.backend, shard_count=2, strategy="grid", replicas=2,
            rebalance=True,
        )
        autopilot = ClusterAutopilot(cluster, clock=VirtualClock())
        try:
            diverge_replica(cluster, 0, 1)
            autopilot.tick()
            counters = get_registry().counters_snapshot()
            assert counters.get("autopilot_actions", 0) >= 1
            assert counters.get("autopilot_read_repair", 0) >= 1
            rendered = get_registry().render_prometheus()
            assert 'kyrix_events_total{event="autopilot_read_repair"}' in rendered
            described = autopilot.describe()
            assert described["ticks"] == 1
            assert described["actions"].get("read_repair") == 1
        finally:
            cluster.close()
    finally:
        configure_telemetry(dots_stack.backend.config.telemetry, enabled=False)


def test_decision_state_guarded_by_the_lock(dots_stack):
    """Runtime twin of the ``lock-discipline`` static rule: with the
    autopilot's lock instrumented and its decision state flagged, a full
    control pass performs every write under the lock (no unguarded-write
    violations), while a bare write from outside raises."""
    # The raw factory, not ``threading.Lock``: under REPRO_LOCKWATCH the
    # session watch has patched the latter, and wrapping an
    # already-instrumented lock would feed the session's record-mode
    # watch instead of this test's raising one.
    import _thread

    from repro.analysis.lockwatch import (
        LockWatch,
        UnguardedWriteError,
        guard_attributes,
    )

    cluster = build_cluster(
        dots_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    autopilot = ClusterAutopilot(cluster, clock=VirtualClock())
    try:
        watch = LockWatch()
        autopilot._lock = watch.wrap(_thread.allocate_lock(), "autopilot")
        guard_attributes(
            autopilot,
            autopilot._lock,
            [
                "_tick_count",
                "_armed",
                "_idle_ticks",
                "_last_migration_ms",
                "_last_loads",
                "_last_attempts",
            ],
        )
        replay(cluster.router, hotspot_trace(dots_stack, cluster, steps=20))
        autopilot.tick()
        watch.verify()
        with pytest.raises(UnguardedWriteError, match="_armed"):
            autopilot._armed = False
    finally:
        cluster.close()
