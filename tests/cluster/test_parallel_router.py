"""Parallel scatter-gather parity: thread-pool and sequential routers agree.

The acceptance bar of the parallel rework: on the usmap and EEG parity
stacks, at 2 and 4 shards, a router executing shard queries on its thread
pool returns **byte-identical** object payloads to a sequential router built
from the same backend — and both match the unsharded backend.  Shard calls
cross the wire transport in the parallel cluster (the default build), so
the comparison also covers JSON encode/decode on the shard boundary.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import build_cluster
from repro.net.protocol import DataRequest

from tests.cluster.conftest import parity_requests as _all_requests
from tests.cluster.conftest import payload_bytes as _payload_bytes


@pytest.mark.parametrize("stack_fixture", ["usmap_parity_stack", "eeg_parity_stack"])
@pytest.mark.parametrize("shard_count", [2, 4])
def test_parallel_router_is_byte_identical_to_sequential(
    request, stack_fixture, shard_count
):
    stack = request.getfixturevalue(stack_fixture)
    tile_sizes = stack.tile_sizes
    parallel = build_cluster(
        stack.backend, shard_count=shard_count, tile_sizes=tile_sizes
    )
    sequential = build_cluster(
        stack.backend,
        shard_count=shard_count,
        tile_sizes=tile_sizes,
        parallel=False,
        wire_shards=False,
    )
    try:
        assert parallel.router.parallel is True
        assert sequential.router.parallel is False
        compared = 0
        saw_fanout = False
        for data_request in _all_requests(stack):
            par = parallel.router.handle(data_request)
            seq = sequential.router.handle(data_request)
            assert _payload_bytes(par) == _payload_bytes(seq), (
                f"parallel/sequential payloads diverged for {data_request}"
            )
            single = stack.backend.handle(data_request)
            assert sorted(o["tuple_id"] for o in par.objects) == sorted(
                o["tuple_id"] for o in single.objects
            )
            saw_fanout = saw_fanout or len(par.shard_ms) > 1
            compared += 1
        assert compared > 0
        assert saw_fanout, "the parity suite never exercised a multi-shard fan-out"
    finally:
        parallel.close()
        sequential.close()


def test_parallel_router_under_concurrent_sessions(usmap_parity_stack):
    """Concurrent sessions through one parallel router lose no data or stats."""
    stack = usmap_parity_stack
    cluster = build_cluster(stack.backend, shard_count=4)
    try:
        requests = [
            r for r in _all_requests(stack) if r.granularity == "box"
        ] or _all_requests(stack)[:4]
        expected = {
            req.cache_key(): sorted(
                o["tuple_id"] for o in stack.backend.handle(req).objects
            )
            for req in requests
        }
        threads = 6
        rounds = 5
        barrier = threading.Barrier(threads)
        errors: list[BaseException] = []

        def worker(index):
            try:
                barrier.wait()
                for _ in range(rounds):
                    for req in requests:
                        response = cluster.router.handle(req)
                        got = sorted(o["tuple_id"] for o in response.objects)
                        assert got == expected[req.cache_key()]
            except BaseException as error:
                errors.append(error)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors, errors[0]
        # No lost increments: every handle() call was counted.
        assert cluster.router.stats.requests == threads * rounds * len(requests)
        # Every request after the first per key is a cache hit or coalesced.
        stats = cluster.router.stats
        assert stats.cache_hits + stats.coalesced_requests + stats.scatter_gathers == (
            stats.requests
        )
    finally:
        cluster.close()


def test_executor_is_lazy_and_close_is_idempotent(usmap_parity_stack):
    stack = usmap_parity_stack
    cluster = build_cluster(stack.backend, shard_count=2)
    try:
        router = cluster.router
        assert router._executor is None
        # A fan-out 1 request does not spin up the pool.
        region = cluster.partitionings["statemap"].regions[0].rect
        small = DataRequest(
            app_name=stack.app_name,
            canvas_id="statemap",
            layer_index=0,
            granularity="box",
            xmin=region.xmin + 1.0,
            ymin=region.ymin + 1.0,
            xmax=region.xmin + 4.0,
            ymax=region.ymin + 4.0,
        )
        router.handle(small)
        assert router._executor is None
        # A full-canvas box fans out and creates it.
        plan = stack.backend.compiled.canvas_plan("statemap")
        wide = DataRequest(
            app_name=stack.app_name,
            canvas_id="statemap",
            layer_index=0,
            granularity="box",
            xmin=0.0,
            ymin=0.0,
            xmax=plan.width,
            ymax=plan.height,
        )
        response = router.handle(wide)
        assert len(response.shard_ms) == 2
        assert router._executor is not None
    finally:
        cluster.close()
        cluster.close()  # idempotent


def test_sequential_config_never_creates_an_executor(usmap_parity_stack):
    stack = usmap_parity_stack
    cluster = build_cluster(stack.backend, shard_count=2, parallel=False)
    try:
        plan = stack.backend.compiled.canvas_plan("statemap")
        wide = DataRequest(
            app_name=stack.app_name,
            canvas_id="statemap",
            layer_index=0,
            granularity="box",
            xmin=0.0,
            ymin=0.0,
            xmax=plan.width,
            ymax=plan.height,
        )
        response = cluster.router.handle(wide)
        assert len(response.shard_ms) == 2
        assert cluster.router._executor is None
    finally:
        cluster.close()
