"""Slim parent: process-worker clusters drop the parent-side shard copies.

With ``worker_mode="processes"`` every worker rebuilds its own index from a
:class:`~repro.serving.worker.ShardSpec` dump, so the parent-side shard
databases only exist to seed those dumps.  Keeping them would hold every
shard's rows in the parent a second time for the cluster's whole serving
lifetime — the memory-win assertion here counts live
:class:`~repro.storage.database.Database` instances in the parent and
proves that building a process cluster adds **none** (only the source
backend's database stays), while serving, shard bookkeeping and teardown
keep working without the detached copies.
"""

from __future__ import annotations

import gc
import json

import pytest

from repro.cluster import build_cluster
from repro.errors import KyrixError
from repro.storage.database import Database

from tests.cluster.conftest import parity_requests, payload_bytes


def _live_databases() -> int:
    gc.collect()
    return sum(1 for obj in gc.get_objects() if isinstance(obj, Database))


def test_process_cluster_holds_no_parent_side_shard_databases(usmap_parity_stack):
    stack = usmap_parity_stack
    requests = parity_requests(stack)
    expected = [payload_bytes(stack.backend.handle(r)) for r in requests[:8]]

    databases_before = _live_databases()
    cluster = build_cluster(
        stack.backend,
        shard_count=2,
        worker_mode="processes",
        tile_sizes=stack.tile_sizes,
    )
    try:
        # The memory win: the shard databases built to seed the worker
        # specs are gone from the parent — zero net Database objects.
        assert _live_databases() == databases_before, (
            "process-worker build leaked parent-side shard databases"
        )
        for shard in cluster.shards:
            assert shard.database is None
            assert shard.backend is None
            # The counts survive detachment: describe()/balance reporting
            # never needed the rows themselves.
            assert shard.rows_by_table
            assert shard.total_rows > 0

        # Serving is untouched: workers own the only live copies.
        for data_request, want in zip(requests[:8], expected):
            response = cluster.router.handle(data_request)
            assert sorted(obj["tuple_id"] for obj in response.objects) == sorted(
                obj["tuple_id"] for obj in json.loads(want.decode("utf-8"))
            )
        description = cluster.describe()
        assert len(description["shards"]) == 2
        assert all(entry["rows_by_table"] for entry in description["shards"])
    finally:
        cluster.close()


def test_thread_cluster_keeps_its_embedded_databases(usmap_parity_stack):
    """The thread topology serves *from* the parent copies — no detach."""
    cluster = build_cluster(usmap_parity_stack.backend, shard_count=2)
    try:
        for shard in cluster.shards:
            assert shard.database is not None
            assert shard.backend is not None
    finally:
        cluster.close()


def test_detach_requires_an_attached_service(usmap_parity_stack):
    cluster = build_cluster(usmap_parity_stack.backend, shard_count=2)
    try:
        bare = cluster.shards[0]
        service, bare.service = bare.service, None
        try:
            with pytest.raises(KyrixError):
                bare.detach_database()
        finally:
            bare.service = service
    finally:
        cluster.close()
