"""Cross-codec parity: json, binary and auto serve byte-identical payloads.

The binary columnar codec (:mod:`repro.net.columnar`) only redefines how
bytes cross the shard boundary — never *which* decoded payload comes back.
This suite proves it across the wire-level topologies (in-process wire
stubs and forked worker processes), across mixed-codec clusters where one
side cannot speak binary (negotiation must fall back, not fail), and under
real worker kills with the binary codec negotiated.
"""

from __future__ import annotations

import pytest

from repro.cluster import build_cluster
from repro.errors import ProtocolError
from repro.net.protocol import DataRequest
from repro.serving import (
    LocalTransport,
    RemoteBackendStub,
    WorkerPool,
    build_shard_spec,
    collect_wire_stats,
    kill_worker,
)

from tests.cluster.conftest import parity_requests, payload_bytes

WIRE_TOPOLOGIES = {
    "wire": {"worker_mode": "threads", "wire_shards": True},
    "processes": {"worker_mode": "processes"},
}


@pytest.mark.parametrize("topology", sorted(WIRE_TOPOLOGIES))
def test_codecs_serve_byte_identical_payloads(eeg_parity_stack, topology):
    stack = eeg_parity_stack
    requests = parity_requests(stack)
    payloads: dict[str, list[bytes]] = {}
    wire_bytes: dict[str, int] = {}
    for codec in ("json", "binary", "auto"):
        cluster = build_cluster(
            stack.backend,
            shard_count=2,
            tile_sizes=stack.tile_sizes,
            wire_codec=codec,
            **WIRE_TOPOLOGIES[topology],
        )
        try:
            payloads[codec] = [
                payload_bytes(cluster.router.handle(r)) for r in requests
            ]
            wire_bytes[codec] = collect_wire_stats(cluster.router).bytes_total
        finally:
            cluster.close()
    assert any(payload != b"[]" for payload in payloads["json"])
    # Decoded payloads are the law: byte-identical across every codec.
    assert payloads["binary"] == payloads["json"]
    assert payloads["auto"] == payloads["json"]
    # The codec's reason to exist: the same payloads cost fewer wire bytes.
    assert 0 < wire_bytes["binary"] < wire_bytes["json"]
    assert wire_bytes["auto"] == wire_bytes["binary"]


class TestMixedCodecClusters:
    """One side cannot speak binary: negotiation falls back, payloads agree."""

    def _expected(self, dots_stack, requests):
        return [payload_bytes(dots_stack.backend.handle(r)) for r in requests]

    def _requests(self, dots_stack):
        return [
            DataRequest(
                app_name=dots_stack.compiled.app_name,
                canvas_id="dots",
                layer_index=0,
                granularity="box",
                xmin=0.0,
                ymin=0.0,
                xmax=1000.0 + nudge,
                ymax=2000.0,
            )
            for nudge in range(3)
        ]

    def test_binary_router_against_json_only_worker_falls_back(self, dots_stack):
        spec = build_shard_spec(
            dots_stack.database,
            dots_stack.compiled,
            dots_stack.backend.config,
            shard_id=0,
            codecs=("json",),
        )
        pool = WorkerPool([spec])
        pool.start()
        try:
            transport = pool.handle_for(0).transport()
            stub = RemoteBackendStub(
                transport,
                dots_stack.compiled,
                dots_stack.backend.config,
                codecs=("binary", "json"),
            )
            requests = self._requests(dots_stack)
            served = [payload_bytes(stub.handle(r)) for r in requests]
            assert served == self._expected(dots_stack, requests)
            # The hello really fell back: the connection negotiated JSON.
            assert transport.negotiate(("binary", "json")) == "json"
            stub.close()
        finally:
            pool.close()

    def test_json_pinned_router_against_binary_capable_worker(self, dots_stack):
        spec = build_shard_spec(
            dots_stack.database,
            dots_stack.compiled,
            dots_stack.backend.config,
            shard_id=0,
            codecs=("binary", "json"),
        )
        pool = WorkerPool([spec])
        pool.start()
        try:
            transport = pool.handle_for(0).transport()
            stub = RemoteBackendStub(
                transport,
                dots_stack.compiled,
                dots_stack.backend.config,
                codecs=("json",),
            )
            requests = self._requests(dots_stack)
            served = [payload_bytes(stub.handle(r)) for r in requests]
            assert served == self._expected(dots_stack, requests)
            # A json-pinned client never sends a hello: its wire stays the
            # legacy untagged framing against old and new servers alike.
            assert transport.negotiate(("json",)) == "json"
            stub.close()
        finally:
            pool.close()

    def test_binary_pinned_client_against_json_only_endpoint_is_typed(
        self, dots_stack
    ):
        server = LocalTransport(dots_stack.backend, codecs=("json",))
        with pytest.raises(ProtocolError, match="negotiation failed"):
            server.negotiate(("binary",))


def test_killed_worker_fails_over_under_the_binary_codec(dots_stack):
    def box(nudge):
        return DataRequest(
            app_name=dots_stack.compiled.app_name,
            canvas_id="dots",
            layer_index=0,
            granularity="box",
            xmin=0.0,
            ymin=0.0,
            xmax=2000.0 + nudge,
            ymax=2000.0,
        )

    baseline = build_cluster(dots_stack.backend, shard_count=2, replicas=1)
    cluster = build_cluster(
        dots_stack.backend,
        shard_count=2,
        replicas=2,
        worker_mode="processes",
        wire_codec="binary",
    )
    try:
        requests = [box(i) for i in range(4)]
        expected = [payload_bytes(baseline.router.handle(r)) for r in requests]
        assert any(payload != b"[]" for payload in expected)

        handle = kill_worker(cluster, shard_id=0, replica_index=0)
        assert not handle.alive

        degraded = [payload_bytes(cluster.router.handle(r)) for r in requests]
        assert degraded == expected, "binary-codec failover changed the payload"
        # The surviving replica's connection renegotiated after failover
        # traffic; the stub accounting proves binary frames moved.
        assert collect_wire_stats(cluster.router).calls > 0
    finally:
        cluster.close()
        baseline.close()
