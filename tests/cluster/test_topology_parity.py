"""Cross-topology parity: threads, wire-stub and worker processes agree.

The acceptance bar of the process-worker rework: for every deployment
topology the cluster supports —

* ``threads`` — in-process shard stacks called directly (``wire_shards``
  off),
* ``wire`` — in-process shard stacks behind the ``LocalTransport`` /
  ``RemoteBackendStub`` JSON wire (the default),
* ``processes`` — one forked worker process per shard replica behind a
  ``SocketTransport`` speaking length-prefixed frames on localhost TCP —

the same request stream must produce **byte-identical** ``DataResponse``
payloads and exactly the same ``ClusterStats`` attribution (scatter counts,
per-shard requests, fan-out histogram, per-replica attempts) on both
evaluation applications (usmap + EEG), at 2 and 4 shards, with 1 and 2
replicas per shard.  The router cannot tell the topologies apart, and the
stats prove none of them drops, duplicates or re-routes a single request.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import build_cluster

from tests.cluster.conftest import parity_requests, payload_bytes

#: topology name -> build_cluster keyword overrides.
TOPOLOGIES = {
    "threads": {"worker_mode": "threads", "wire_shards": False},
    "wire": {"worker_mode": "threads", "wire_shards": True},
    "processes": {"worker_mode": "processes"},
}


def _attribution(stats) -> dict:
    """The traffic-attribution identity of one router's ClusterStats."""
    return {
        "requests": stats.requests,
        "cache_hits": stats.cache_hits,
        "scatter_gathers": stats.scatter_gathers,
        "shard_queries": stats.shard_queries,
        "duplicates_removed": stats.duplicates_removed,
        "objects_returned": stats.objects_returned,
        "per_shard_requests": dict(stats.per_shard_requests),
        "fanout": dict(stats.fanout),
        "per_replica_requests": dict(stats.per_replica_requests),
        "per_replica_failures": dict(stats.per_replica_failures),
    }


@pytest.mark.parametrize("stack_fixture", ["usmap_parity_stack", "eeg_parity_stack"])
@pytest.mark.parametrize("shard_count", [2, 4])
@pytest.mark.parametrize("replicas", [1, 2])
def test_topologies_are_byte_identical_and_attribute_identically(
    request, stack_fixture, shard_count, replicas
):
    stack = request.getfixturevalue(stack_fixture)
    requests = parity_requests(stack)
    payloads: dict[str, list[bytes]] = {}
    attributions: dict[str, dict] = {}
    checksums: dict[str, dict[str, str]] = {}

    for topology, overrides in TOPOLOGIES.items():
        cluster = build_cluster(
            stack.backend,
            shard_count=shard_count,
            replicas=replicas,
            tile_sizes=stack.tile_sizes,
            **overrides,
        )
        try:
            payloads[topology] = [
                payload_bytes(cluster.router.handle(r)) for r in requests
            ]
            attributions[topology] = _attribution(cluster.router.stats)
            checksums[topology] = dict(cluster.router.stats.replica_checksums)
            assert cluster.router.stats.divergent_replicas() == {}
        finally:
            cluster.close()

    # Byte-identity across topologies: every deployment shape returns the
    # exact same payload bytes for the same request stream.
    for topology in TOPOLOGIES:
        assert payloads[topology] == payloads["threads"], (
            f"{topology} payloads diverged from the threads topology "
            f"at {shard_count} shards x {replicas} replicas"
        )
        assert attributions[topology] == attributions["threads"], (
            f"{topology} attribution diverged at "
            f"{shard_count} shards x {replicas} replicas"
        )

    # Identical shard content must hash identically in every topology that
    # records checksums: worker processes always hash their own rebuilt
    # index copies; in-process topologies only bother for replica *sets*
    # (a single shared copy per shard has nothing to diverge from).
    full_key_set = {
        f"shard{shard}/replica{replica}"
        for shard in range(shard_count)
        for replica in range(replicas)
    }
    assert set(checksums["processes"]) == full_key_set
    if replicas > 1:
        assert checksums["wire"] == checksums["threads"]
        assert checksums["processes"] == checksums["threads"]
    else:
        assert checksums["threads"] == {} and checksums["wire"] == {}

    # Against the unsharded backend, the gathered tuple *sets* must match
    # exactly (gather order is shard-id order, so bytes are compared across
    # topologies above, not against the single backend's natural order).
    for data_request, cluster_payload in zip(requests, payloads["threads"]):
        single = stack.backend.handle(data_request)
        gathered = json.loads(cluster_payload.decode("utf-8"))
        assert sorted(o["tuple_id"] for o in gathered) == sorted(
            o["tuple_id"] for o in single.objects
        ), f"cluster tuple set diverged from single backend for {data_request}"

    # The matrix only proves anything if shards actually held the traffic.
    reference = attributions["threads"]
    assert reference["scatter_gathers"] > 0
    assert sum(reference["per_shard_requests"].values()) == reference["shard_queries"]
    if replicas > 1:
        assert sum(reference["per_replica_requests"].values()) == (
            reference["shard_queries"]
        )


def test_process_topology_rejects_bad_worker_config(usmap_parity_stack):
    from repro.errors import KyrixError

    with pytest.raises(KyrixError):
        build_cluster(
            usmap_parity_stack.backend, shard_count=2, worker_mode="fibers"
        )
