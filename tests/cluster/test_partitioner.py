"""Unit tests for the spatial partitioners, boundary dedup and coalescer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench.apps import default_config
from repro.cluster import (
    BalancedKDPartitioner,
    GridPartitioner,
    LoadHistogram,
    LoadWeightedKDPartitioner,
    RequestCoalescer,
    build_cluster,
    make_partitioner,
)
from repro.compiler import compile_application
from repro.core import App, Canvas, ColumnPlacement, Layer, Transform, dot_renderer
from repro.errors import KyrixError
from repro.net.protocol import DataRequest
from repro.server.backend import KyrixBackend
from repro.serving import build_service
from repro.storage.database import Database
from repro.storage.rtree import Rect
from repro.storage.statistics import SpatialDistribution


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------


def _assert_exact_cover(partitioning, width, height):
    total_area = sum(region.rect.area for region in partitioning.regions)
    assert total_area == pytest.approx(width * height)
    union = partitioning.regions[0].rect
    for region in partitioning.regions[1:]:
        union = union.union(region.rect)
    assert union.as_tuple() == (0.0, 0.0, width, height)


@pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
def test_grid_partitioner_covers_canvas(shard_count):
    partitioning = GridPartitioner(shard_count).partition("c", 1000.0, 500.0)
    assert partitioning.shard_count == shard_count
    _assert_exact_cover(partitioning, 1000.0, 500.0)


def test_grid_prefers_cells_matching_canvas_aspect():
    # A wide canvas should be cut into columns, not stacked rows.
    partitioning = GridPartitioner(4).partition("c", 4000.0, 1000.0)
    assert all(region.rect.height == 1000.0 for region in partitioning.regions)


def test_shards_for_rect_straddling_boundary_returns_both():
    partitioning = GridPartitioner(2).partition("c", 100.0, 100.0)
    straddler = Rect(40.0, 45.0, 60.0, 55.0)
    assert len(partitioning.shards_for_rect(straddler)) == 2
    inside = Rect(10.0, 10.0, 20.0, 20.0)
    assert len(partitioning.shards_for_rect(inside)) == 1


def test_shard_for_point_is_deterministic_on_boundary():
    partitioning = GridPartitioner(2).partition("c", 100.0, 100.0)
    assert partitioning.shard_for_point(50.0, 50.0) == 0
    with pytest.raises(KyrixError):
        partitioning.shard_for_point(500.0, 50.0)


def test_kd_partitioner_balances_skewed_points():
    distribution = SpatialDistribution()
    # 90% of the mass in the left tenth of the canvas, the rest spread out.
    for i in range(900):
        distribution.observe(float(i % 100), float(i % 97))
    for i in range(100):
        distribution.observe(100.0 + i * 9.0, float(i % 89) * 10.0)
    partitioning = BalancedKDPartitioner(4).partition(
        "c", 1000.0, 1000.0, distribution
    )
    assert partitioning.shard_count == 4
    _assert_exact_cover(partitioning, 1000.0, 1000.0)
    counts = [
        sum(
            1
            for x, y in distribution.points
            if region.rect.contains_point(x, y)
        )
        for region in partitioning.regions
    ]
    # Boundary points are counted in every touching region, so the sum can
    # slightly exceed the sample; balance is what matters.
    assert max(counts) <= 3 * (len(distribution.points) // 4)
    assert min(counts) >= len(distribution.points) // 16


def test_kd_falls_back_to_grid_without_distribution():
    partitioning = BalancedKDPartitioner(4).partition("c", 800.0, 800.0, None)
    assert partitioning.strategy == "grid"
    _assert_exact_cover(partitioning, 800.0, 800.0)


def test_make_partitioner_rejects_unknown_strategy():
    assert isinstance(make_partitioner("grid", 2), GridPartitioner)
    assert isinstance(make_partitioner("kd", 2), BalancedKDPartitioner)
    with pytest.raises(KyrixError):
        make_partitioner("hash", 2)


# ---------------------------------------------------------------------------
# Partitioning edge cases (degenerate canvases, shared edges, load splits)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("width,height", [(0.0, 0.0), (0.0, 400.0), (640.0, 0.0)])
@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_degenerate_canvases_still_cover_exactly(width, height, shard_count):
    """A zero-area canvas (empty app, collapsed axis) must not crash or gap."""
    for partitioning in (
        GridPartitioner(shard_count).partition("c", width, height),
        BalancedKDPartitioner(shard_count).partition("c", width, height, None),
        LoadWeightedKDPartitioner(shard_count).partition(
            "c", width, height, LoadHistogram()
        ),
    ):
        assert partitioning.shard_count == shard_count
        union = partitioning.regions[0].rect
        for region in partitioning.regions[1:]:
            union = union.union(region.rect)
        assert union.as_tuple() == (0.0, 0.0, width, height)
        assert sum(region.rect.area for region in partitioning.regions) == 0.0
        # Every canvas point (there is exactly one when both axes collapse)
        # still resolves to a deterministic shard.
        assert partitioning.shard_for_point(0.0, 0.0) == 0


def test_shards_for_rect_on_shared_edges():
    """Region edges are shared: queries exactly on them scatter to all
    touching shards, and zero-area query rects behave like their boundary."""
    partitioning = GridPartitioner(4).partition("c", 100.0, 100.0)
    # The full vertical boundary line (zero width) touches both columns.
    vertical_edge = Rect(50.0, 0.0, 50.0, 100.0)
    assert partitioning.shards_for_rect(vertical_edge) == [0, 1, 2, 3]
    # The centre point (zero area) touches all four regions.
    center_point = Rect(50.0, 50.0, 50.0, 50.0)
    assert partitioning.shards_for_rect(center_point) == [0, 1, 2, 3]
    # A corner point touches exactly one region.
    corner = Rect(0.0, 0.0, 0.0, 0.0)
    assert partitioning.shards_for_rect(corner) == [0]
    # A rect that *reaches* the shared boundary scatters to every shard
    # touching it (boundary objects are replicated, so any of them can
    # answer; dedup handles the rest)...
    flush = Rect(0.0, 0.0, 50.0, 50.0)
    assert partitioning.shards_for_rect(flush) == [0, 1, 2, 3]
    # ... while stopping short of the boundary stays single-shard.
    inside = Rect(0.0, 0.0, 49.0, 49.0)
    assert partitioning.shards_for_rect(inside) == [0]


def test_load_weighted_partitioner_splits_where_the_weight_is():
    histogram = LoadHistogram()
    # All observed traffic inside the left tenth of a wide canvas.
    for i in range(100):
        histogram.observe(float(i), float(i % 37) * 2.0)
    partitioning = LoadWeightedKDPartitioner(4).partition(
        "c", 1000.0, 100.0, histogram
    )
    assert partitioning.shard_count == 4
    _assert_exact_cover(partitioning, 1000.0, 100.0)
    hot_shards = {
        partitioning.shard_for_point(x, y) for x, y, _ in histogram.points
    }
    assert len(hot_shards) >= 3, (
        f"hot traffic should spread over most shards, landed on {hot_shards}"
    )


def test_load_weighted_partitioner_clamps_out_of_canvas_samples():
    histogram = LoadHistogram()
    histogram.observe(-500.0, 50.0)
    histogram.observe(1500.0, -50.0)
    histogram.observe(200.0, 200.0, weight=3.0)
    partitioning = LoadWeightedKDPartitioner(2).partition(
        "c", 1000.0, 100.0, histogram
    )
    _assert_exact_cover(partitioning, 1000.0, 100.0)


def test_load_weighted_partitioner_without_signal_falls_back_to_midpoints():
    partitioning = LoadWeightedKDPartitioner(4).partition("c", 800.0, 800.0, None)
    _assert_exact_cover(partitioning, 800.0, 800.0)
    # Midpoint splits of a square: four equal quadrants.
    assert sorted(region.rect.area for region in partitioning.regions) == (
        [160_000.0] * 4
    )


def test_load_histogram_ring_buffer_drops_oldest():
    histogram = LoadHistogram(limit=3)
    for i in range(5):
        histogram.observe(float(i), 0.0)
    assert len(histogram) == 3
    assert [x for x, _, _ in histogram.points] == [2.0, 3.0, 4.0]
    assert histogram.total_weight() == 3.0
    # Zero/negative weights are ignored outright.
    histogram.observe(9.0, 9.0, weight=0.0)
    assert len(histogram) == 3
    clone = histogram.copy()
    clone.observe(7.0, 7.0)
    assert len(histogram) == 3 and len(clone) == 3  # bounded copy, detached


def test_load_weighted_partitioner_rejects_bad_shard_count():
    with pytest.raises(KyrixError):
        LoadWeightedKDPartitioner(0)


# ---------------------------------------------------------------------------
# Boundary replication + gather-time dedup
# ---------------------------------------------------------------------------


def build_straddler_backend() -> KyrixBackend:
    """Three objects on a 100x100 canvas; one straddles the shard boundary."""
    config = default_config(viewport=100)
    database = Database(config.storage)
    table = database.create_table(
        "pts",
        [
            ("tuple_id", "integer"), ("x", "float"), ("y", "float"),
            ("w", "float"), ("h", "float"), ("bbox", "bbox"),
        ],
    )
    rows = [
        (0, 25.0, 50.0, 2.0, 2.0, (24.0, 49.0, 26.0, 51.0)),
        (1, 75.0, 50.0, 2.0, 2.0, (74.0, 49.0, 76.0, 51.0)),
        (2, 50.0, 50.0, 20.0, 10.0, (40.0, 45.0, 60.0, 55.0)),  # straddler
    ]
    table.bulk_load(rows)

    app = App(name="straddle", config=config)
    canvas = Canvas(canvas_id="main", width=100.0, height=100.0)
    app.add_canvas(canvas)
    canvas.add_transform(
        Transform(
            transform_id="t",
            query="SELECT tuple_id, x, y, w, h FROM pts",
            columns=("tuple_id", "x", "y", "w", "h"),
        )
    )
    layer = Layer("t", False)
    canvas.add_layer(layer)
    layer.add_placement(ColumnPlacement(x_column="x", y_column="y", width="w", height="h"))
    layer.add_rendering_func(dot_renderer("x", "y"))
    app.set_initial_canvas("main", 0, 0)
    compiled = compile_application(app)
    return build_service(
        config, database=database, compiled=compiled, tile_sizes=(50,)
    )


def test_straddling_object_replicated_but_deduplicated():
    backend = build_straddler_backend()
    cluster = build_cluster(backend, shard_count=2, strategy="grid", tile_sizes=(50,))
    place_table = backend.compiled.layer_plan("main", 0).placement_table

    # Precompute-time routing replicated the straddler into both shards.
    per_shard = [shard.rows_by_table[place_table] for shard in cluster.shards]
    assert sum(per_shard) == 4  # 3 objects + 1 boundary replica
    assert per_shard == [2, 2]

    # ... but a gathered query returns it exactly once.
    box = DataRequest(
        app_name="straddle", canvas_id="main", layer_index=0, granularity="box",
        xmin=0.0, ymin=0.0, xmax=100.0, ymax=100.0,
    )
    response = cluster.router.handle(box)
    assert sorted(obj["tuple_id"] for obj in response.objects) == [0, 1, 2]
    assert cluster.router.stats.duplicates_removed == 1

    # Same through the mapping design: each of the two 50px tile columns
    # holding the straddler returns it once.
    for tile_id, expected in ((2, [0, 2]), (3, [1, 2])):
        tile = DataRequest(
            app_name="straddle", canvas_id="main", layer_index=0,
            granularity="tile", design="mapping", tile_id=tile_id, tile_size=50,
        )
        routed = cluster.router.handle(tile)
        assert sorted(obj["tuple_id"] for obj in routed.objects) == expected


# ---------------------------------------------------------------------------
# Request coalescing
# ---------------------------------------------------------------------------


def test_coalescer_runs_leader_once_for_concurrent_followers():
    coalescer = RequestCoalescer()
    compute_calls = []
    release = threading.Event()

    def compute():
        compute_calls.append(threading.get_ident())
        release.wait(timeout=5.0)
        return "payload"

    results: list[tuple[str, bool]] = []

    def worker():
        results.append(coalescer.coalesce("key", compute))

    deadline = time.monotonic() + 5.0
    threads = [threading.Thread(target=worker) for _ in range(4)]
    threads[0].start()
    while not compute_calls and time.monotonic() < deadline:
        time.sleep(0.001)  # leader is inside compute()
    assert compute_calls, "leader never entered compute()"
    for thread in threads[1:]:
        thread.start()
    while coalescer.stats.followers < 3 and time.monotonic() < deadline:
        time.sleep(0.001)  # all followers are queued
    assert coalescer.stats.followers == 3, "followers never coalesced"
    release.set()
    for thread in threads:
        thread.join(timeout=5.0)

    assert len(compute_calls) == 1
    assert sorted(follower for _, follower in results) == [False, True, True, True]
    assert all(value == "payload" for value, _ in results)
    assert coalescer.stats.leaders == 1
    assert coalescer.stats.followers == 3
    assert coalescer.stats.coalesce_rate() == pytest.approx(0.75)


def test_coalescer_sequential_requests_each_lead():
    coalescer = RequestCoalescer()
    for _ in range(3):
        value, follower = coalescer.coalesce("key", lambda: 42)
        assert value == 42
        assert follower is False
    assert coalescer.stats.leaders == 3
    assert coalescer.stats.followers == 0


def test_coalescer_propagates_leader_errors():
    coalescer = RequestCoalescer()

    def explode():
        raise ValueError("boom")

    with pytest.raises(ValueError):
        coalescer.coalesce("key", explode)
    # The key is released: the next request leads again.
    value, follower = coalescer.coalesce("key", lambda: 1)
    assert (value, follower) == (1, False)
