"""Fixtures for the cluster tests: small usmap and EEG serving stacks.

The parity tests need real applications whose layers go through full
placement precomputation (so both database designs are exercised) on both
evaluation datasets.  The stacks here are shrunk versions of the example
applications: small canvases, few thousand rows, one dynamic layer per
canvas — large enough that shard regions hold distinct data, small enough
to build in well under a second.

The request-building helpers (:func:`tile_requests` / :func:`box_requests`
/ :func:`parity_requests`) and :func:`payload_bytes` are shared by every
parity suite in this package — import them from here instead of redefining
them per test module.

With ``REPRO_LOCKWATCH=1`` in the environment (CI sets it on the
autopilot smoke job) the whole package — router swaps, replica sets,
the autopilot control loop — runs under
:mod:`repro.analysis.lockwatch`: every lock created after session start
is instrumented and each test verifies the global lock-order graph is
acyclic, so a lock-order cycle between e.g. the autopilot's decision
lock and the router's table lock fails even when the deadlock never
fires.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.analysis import lockwatch
from repro.bench.apps import build_eeg_backend, default_config
from repro.compiler import compile_application
from repro.core import App, Canvas, ColumnPlacement, Jump, Layer, Transform, dot_renderer
from repro.datagen.eeg import EEGSpec
from repro.datagen.usmap import USMapSpec, load_usmap
from repro.net.protocol import DataRequest
from repro.server.backend import KyrixBackend
from repro.server.schemes import DESIGN_MAPPING, DESIGN_SPATIAL
from repro.serving import build_service
from repro.server.tile import TileScheme
from repro.storage.database import Database


@pytest.fixture(scope="session", autouse=True)
def _lockwatch_session():
    if not lockwatch.watching_requested() or lockwatch.installed():
        yield None
        return
    watch = lockwatch.install()
    try:
        yield watch
    finally:
        lockwatch.uninstall()
        watch.verify()


@pytest.fixture(autouse=True)
def _lockwatch_verify(_lockwatch_session):
    yield
    if _lockwatch_session is not None:
        _lockwatch_session.verify()


@dataclass
class ParityStack:
    """A precomputed single backend plus the request shapes to test."""

    backend: KyrixBackend
    app_name: str
    #: (canvas_id, layer_index, tile_size) triples to issue tile requests on.
    canvases: list[tuple[str, int, int]]
    #: (canvas_id, layer_index, rect-tuple) dynamic-box requests to issue.
    boxes: list[tuple[str, int, tuple[float, float, float, float]]]

    @property
    def tile_sizes(self) -> tuple[int, ...]:
        """The distinct tile sizes of the stack (mapping tables to prebuild)."""
        return tuple(sorted({tile_size for _, _, tile_size in self.canvases}))


def payload_bytes(response) -> bytes:
    """The byte-parity identity of a response's object payload."""
    return json.dumps(response.objects, sort_keys=True).encode("utf-8")


def tile_requests(stack: ParityStack) -> list[DataRequest]:
    """Every tile of every canvas, in both database designs."""
    requests = []
    for canvas_id, layer_index, tile_size in stack.canvases:
        plan = stack.backend.compiled.canvas_plan(canvas_id)
        scheme = TileScheme(plan.width, plan.height, tile_size)
        for design in (DESIGN_SPATIAL, DESIGN_MAPPING):
            for tile_id in range(scheme.tile_count):
                requests.append(
                    DataRequest(
                        app_name=stack.app_name,
                        canvas_id=canvas_id,
                        layer_index=layer_index,
                        granularity="tile",
                        design=design,
                        tile_id=tile_id,
                        tile_size=tile_size,
                    )
                )
    return requests


def box_requests(stack: ParityStack) -> list[DataRequest]:
    """The stack's dynamic-box request shapes."""
    requests = []
    for canvas_id, layer_index, (xmin, ymin, xmax, ymax) in stack.boxes:
        requests.append(
            DataRequest(
                app_name=stack.app_name,
                canvas_id=canvas_id,
                layer_index=layer_index,
                granularity="box",
                design=DESIGN_SPATIAL,
                xmin=xmin,
                ymin=ymin,
                xmax=xmax,
                ymax=ymax,
            )
        )
    return requests


def parity_requests(stack: ParityStack) -> list[DataRequest]:
    """The full parity workload: every tile request plus every box request."""
    return tile_requests(stack) + box_requests(stack)


def build_usmap_parity_stack() -> ParityStack:
    """Two-canvas US map (states + counties), full placement precompute."""
    spec = USMapSpec(
        state_canvas_width=4096.0, state_canvas_height=4096.0, county_zoom=4.0
    )
    config = default_config(viewport=1024)
    database = Database(config.storage)
    load_usmap(database, spec)

    app = App("usmap", config=config)
    statemap = Canvas(
        "statemap", width=spec.state_canvas_width, height=spec.state_canvas_height
    )
    app.add_canvas(statemap)
    statemap.add_transform(
        Transform(
            transform_id="stateTrans",
            query="SELECT state_id, name, cx, cy, width, height, rate, bbox FROM states",
            columns=("state_id", "name", "cx", "cy", "width", "height", "rate", "bbox"),
        )
    )
    state_layer = Layer("stateTrans", False)
    statemap.add_layer(state_layer)
    state_layer.add_placement(
        ColumnPlacement(x_column="cx", y_column="cy", width="width", height="height")
    )
    state_layer.add_rendering_func(dot_renderer("cx", "cy"))

    countymap = Canvas(
        "countymap",
        width=spec.county_canvas_width,
        height=spec.county_canvas_height,
        zoom_level=spec.county_zoom,
    )
    app.add_canvas(countymap)
    countymap.add_transform(
        Transform(
            transform_id="countyTrans",
            query=(
                "SELECT county_id, state_id, name, cx, cy, width, height, rate, bbox "
                "FROM counties"
            ),
            columns=(
                "county_id", "state_id", "name", "cx", "cy", "width", "height",
                "rate", "bbox",
            ),
        )
    )
    county_layer = Layer("countyTrans", False)
    countymap.add_layer(county_layer)
    county_layer.add_placement(
        ColumnPlacement(x_column="cx", y_column="cy", width="width", height="height")
    )
    county_layer.add_rendering_func(dot_renderer("cx", "cy"))

    app.add_jump(Jump("statemap", "countymap", "semantic_zoom"))
    app.set_initial_canvas("statemap", 0, 0)
    compiled = compile_application(app)
    backend = build_service(config, database=database, compiled=compiled, tile_sizes=(1024,))
    return ParityStack(
        backend=backend,
        app_name="usmap",
        canvases=[("statemap", 0, 1024), ("countymap", 0, 4096)],
        boxes=[
            ("statemap", 0, (0.0, 0.0, 4096.0, 4096.0)),
            ("statemap", 0, (900.0, 900.0, 2100.0, 2100.0)),
            ("countymap", 0, (3000.0, 5000.0, 9000.0, 11000.0)),
        ],
    )


def build_eeg_parity_stack() -> ParityStack:
    """One temporal EEG canvas with per-sample placement precompute.

    Reuses the benchmark suite's EEG application builder
    (:func:`repro.bench.apps.build_eeg_backend`) so the tests and the
    cluster-scaling benchmark exercise the same app.
    """
    spec = EEGSpec(channels=2, sample_rate_hz=16.0, duration_s=120.0, epoch_s=30.0)
    stack = build_eeg_backend(
        spec, config=default_config(viewport=400), tile_sizes=(32768,)
    )
    return ParityStack(
        backend=stack.backend,
        app_name="eeg",
        canvases=[("temporal", 0, 32768)],
        boxes=[
            ("temporal", 0, (0.0, 0.0, stack.canvas_width, stack.canvas_height)),
            ("temporal", 0, (10_000.0, 50.0, 45_000.0, 350.0)),
            ("temporal", 0, (59_000.0, 0.0, 61_000.0, stack.canvas_height)),
        ],
    )


@pytest.fixture(scope="module")
def usmap_parity_stack() -> ParityStack:
    return build_usmap_parity_stack()


@pytest.fixture(scope="module")
def eeg_parity_stack() -> ParityStack:
    return build_eeg_parity_stack()
