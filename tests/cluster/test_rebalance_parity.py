"""Online rebalance parity: byte-identical responses across a live migration.

The acceptance bar of the adaptive-repartitioning rework: on both
evaluation applications (usmap + EEG), in both worker topologies (threads +
processes), a cluster serving a skewed hotspot workload must be able to
re-split 2 -> 4 shards **while requests are in flight**, with

* every payload served before, *during* and after the swap byte-identical
  to the pre-rebalance payloads,
* the post-rebalance max/mean per-shard load ratio on the same hotspot
  trace strictly lower than the pre-rebalance ratio (the whole point of
  load-weighted splits), and
* the epoch bookkeeping (``ClusterStats.rebalance_epochs``, fresh replica
  checksums, swapped shard tables) consistent afterwards.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.experiments import hotspot_box_requests
from repro.cluster import build_cluster

from tests.cluster.conftest import parity_requests, payload_bytes

TOPOLOGIES = ("threads", "processes")


def hotspot_requests(stack, partitioning, count: int = 200):
    """Box requests confined to the interior of shard 0's region.

    Every request lands on one shard of the pre-rebalance partitioning, so
    the observed per-shard load is maximally skewed (skew == shard count)
    and the recorded load histogram concentrates in that region.  The
    trace itself is the benchmark's skewed pan workload
    (:func:`repro.bench.experiments.hotspot_box_requests`), so the test
    asserts on exactly the traffic shape the benchmark measures.
    """
    canvas_id, layer_index, _ = stack.boxes[0]
    region = partitioning.region(0).rect
    return hotspot_box_requests(
        stack.app_name, canvas_id, layer_index, region, steps=count
    )


@pytest.mark.parametrize("stack_fixture", ["usmap_parity_stack", "eeg_parity_stack"])
@pytest.mark.parametrize("worker_mode", TOPOLOGIES)
def test_live_rebalance_is_byte_invisible_and_lowers_skew(
    request, stack_fixture, worker_mode
):
    stack = request.getfixturevalue(stack_fixture)
    requests = parity_requests(stack)
    cluster = build_cluster(
        stack.backend,
        shard_count=2,
        strategy="grid",
        worker_mode=worker_mode,
        rebalance=True,
        tile_sizes=stack.tile_sizes,
    )
    router = cluster.router
    rebalancer = cluster.rebalancer
    assert rebalancer is not None, "rebalance=True must attach a LoadRebalancer"
    try:
        canvas_id = stack.boxes[0][0]
        hotspot = hotspot_requests(stack, cluster.partitionings[canvas_id])

        # Pre-rebalance ground truth: every parity request and every
        # hotspot request, as served by the 2-shard cluster.
        expected = [payload_bytes(router.handle(r)) for r in requests]
        expected_hot = [payload_bytes(router.handle(r)) for r in hotspot]

        # The hotspot trace alone drives the skew decision.
        router.stats.reset()
        router.cache.clear()
        for data_request in hotspot:
            router.handle(data_request)
        skew_before = rebalancer.skew()
        assert skew_before == pytest.approx(2.0), (
            "hotspot requests must all land on shard 0 of the grid split"
        )
        assert rebalancer.should_rebalance()

        # Live migration: re-split 2 -> 4 in the background while the
        # foreground keeps hammering the hotspot (cache cleared every
        # round, so requests really scatter against whichever shard table
        # is current mid-swap).
        report_box: list = []
        worker = threading.Thread(
            target=lambda: report_box.append(rebalancer.rebalance(4)),
            daemon=True,
        )
        worker.start()
        while worker.is_alive():
            router.cache.clear()
            for data_request, want in zip(hotspot, expected_hot):
                assert payload_bytes(router.handle(data_request)) == want, (
                    f"payload diverged mid-rebalance ({worker_mode})"
                )
        worker.join(timeout=60.0)
        report = report_box[0]
        assert report.swapped and report.reason == "rebalanced"
        assert report.shard_count_before == 2
        assert report.shard_count_after == 4
        assert report.drained

        # Post-swap bookkeeping: new epoch, four shards, fresh counters.
        assert router.epoch == 1
        assert router.stats.rebalance_epochs == 1
        assert router.shard_count == 4
        assert cluster.shards is router.shards
        assert len(cluster.partitionings[canvas_id].regions) == 4
        assert router.stats.divergent_replicas() == {}
        if worker_mode == "processes":
            assert cluster.worker_pool is not None
            assert cluster.worker_pool.generation == 1
            assert {w["alive"] for w in cluster.worker_pool.describe()} == {True}

        # Byte parity after the swap: the full parity workload (every tile
        # in both designs plus every box) served by the new 4-shard set is
        # identical to the 2-shard bytes.
        router.cache.clear()
        for data_request, want in zip(requests, expected):
            assert payload_bytes(router.handle(data_request)) == want, (
                f"payload diverged after rebalance ({worker_mode})"
            )

        # Load balance: the same hotspot trace now spreads across the
        # load-weighted splits — strictly better than before.
        router.stats.reset()
        router.cache.clear()
        for data_request in hotspot:
            router.handle(data_request)
        skew_after = rebalancer.skew()
        assert skew_after < skew_before, (
            f"rebalance did not improve the load split: "
            f"{skew_before:.3f} -> {skew_after:.3f} ({worker_mode})"
        )
    finally:
        cluster.close()


def test_single_shard_rebalance_is_a_no_op(usmap_parity_stack):
    cluster = build_cluster(
        usmap_parity_stack.backend, shard_count=1, rebalance=True
    )
    try:
        report = cluster.rebalancer.rebalance()
        assert not report.swapped
        assert report.reason == "single_shard"
        assert cluster.router.epoch == 0
        assert cluster.router.stats.rebalance_epochs == 0
        # Below the traffic floor, maybe_rebalance declines quietly too.
        assert cluster.rebalancer.maybe_rebalance() is None
    finally:
        cluster.close()


def test_rebalance_after_close_refuses_and_leaks_nothing(usmap_parity_stack):
    """A rebalance racing (or following) close() must not strand a new
    shard generation: the swap is refused and the built stacks torn down."""
    from repro.errors import KyrixError

    cluster = build_cluster(
        usmap_parity_stack.backend,
        shard_count=2,
        worker_mode="processes",
        rebalance=True,
    )
    cluster.close()
    with pytest.raises(KyrixError):
        cluster.rebalancer.rebalance(4)
    # Whatever the refused rebalance built was closed again: the live
    # pool is still generation 0 and fully terminated.
    assert cluster.worker_pool.generation == 0
    assert all(not handle.alive for handle in cluster.worker_pool.handles)
    assert cluster.router.epoch == 0


def test_should_rebalance_needs_traffic_and_skew(usmap_parity_stack):
    cluster = build_cluster(
        usmap_parity_stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    try:
        rebalancer = cluster.rebalancer
        # No traffic at all: perfectly balanced by definition.
        assert rebalancer.skew() == 1.0
        assert not rebalancer.should_rebalance()

        # Plenty of traffic, evenly spread: still no reason to act.
        requests = parity_requests(usmap_parity_stack)
        for data_request in requests:
            cluster.router.handle(data_request)
        assert rebalancer.observed_requests() >= rebalancer.min_requests
        assert rebalancer.skew() < rebalancer.skew_threshold
        assert not rebalancer.should_rebalance()
        assert rebalancer.maybe_rebalance() is None
    finally:
        cluster.close()
