"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that the package can be installed in
fully offline environments that lack the ``wheel`` package (legacy editable
installs via ``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
