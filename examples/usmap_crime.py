"""The paper's example application: an interactive map of US crime rates.

Reproduces Figures 2 and 3: a two-canvas application where the initial
canvas shows a state-level crime-rate choropleth and clicking a state jumps
(geometric + semantic zoom) into a pannable county-level canvas centred on
the clicked state.  The declarative specification below intentionally reads
like the JavaScript snippet of Figure 3 — ``App``, ``Canvas``, ``Layer``,
``addTransform``, ``addJump``, ``initialCanvas`` — but in Python.

Run with::

    python examples/usmap_crime.py
"""

from __future__ import annotations

from repro.bench.apps import default_config
from repro.client import KyrixFrontend
from repro.compiler import compile_application
from repro.serving import build_service
from repro.core import (
    App,
    Canvas,
    ColumnPlacement,
    Jump,
    Layer,
    Transform,
    choropleth_renderer,
    legend_renderer,
)
from repro.datagen import USMapSpec, load_usmap
from repro.server import dbox50_scheme
from repro.storage import Database


def build_usmap_application(spec: USMapSpec | None = None) -> tuple[App, Database]:
    """Build the two-canvas US crime-rate application and its database."""
    spec = spec or USMapSpec()
    config = default_config(viewport=1024)
    database = Database(config.storage)
    load_usmap(database, spec)

    # -- construct an application object (Figure 3, line 2) -------------------
    app = App("usmap", config=config)

    # ================== state map canvas ====================================
    state_map_canvas = Canvas(
        "statemap", width=spec.state_canvas_width, height=spec.state_canvas_height
    )
    app.addCanvas(state_map_canvas)

    # add data transforms
    state_map_canvas.addTransform(Transform.empty())
    state_map_canvas.addTransform(
        Transform(
            transform_id="stateMapTrans",
            query="SELECT state_id, name, cx, cy, width, height, rate, bbox FROM states",
            columns=("state_id", "name", "cx", "cy", "width", "height", "rate", "bbox"),
        )
    )

    # static legend layer
    state_map_legend_layer = Layer("empty", True)
    state_map_canvas.addLayer(state_map_legend_layer)
    state_map_legend_layer.addRenderingFunc(legend_renderer("state crime rate"))

    # state border layer
    state_border_layer = Layer("stateMapTrans", False)
    state_map_canvas.addLayer(state_border_layer)
    state_border_layer.addPlacement(
        ColumnPlacement(x_column="cx", y_column="cy", width="width", height="height")
    )
    state_border_layer.addRenderingFunc(
        choropleth_renderer("cx", "cy", "width", "height", "rate", value_range=(0, 10))
    )

    # ================== county map canvas ====================================
    county_map_canvas = Canvas(
        "countymap",
        width=spec.county_canvas_width,
        height=spec.county_canvas_height,
        zoom_level=spec.county_zoom,
    )
    app.addCanvas(county_map_canvas)
    county_map_canvas.addTransform(Transform.empty())
    county_map_canvas.addTransform(
        Transform(
            transform_id="countyMapTrans",
            query=(
                "SELECT county_id, state_id, name, cx, cy, width, height, rate, bbox "
                "FROM counties"
            ),
            columns=(
                "county_id", "state_id", "name", "cx", "cy", "width", "height",
                "rate", "bbox",
            ),
        )
    )
    county_legend_layer = Layer("empty", True)
    county_map_canvas.addLayer(county_legend_layer)
    county_legend_layer.addRenderingFunc(legend_renderer("county crime rate"))

    county_layer = Layer("countyMapTrans", False)
    county_map_canvas.addLayer(county_layer)
    county_layer.addPlacement(
        ColumnPlacement(x_column="cx", y_column="cy", width="width", height="height")
    )
    county_layer.addRenderingFunc(
        choropleth_renderer("cx", "cy", "width", "height", "rate", value_range=(0, 12))
    )

    # =================== state -> county jump ================================
    def selector(row, layer_id):
        # Only clicks on the state border layer (layer 1) trigger the jump.
        return layer_id == 1

    def new_viewport(row):
        # Center the county canvas on the clicked state (Figure 3 line 31
        # multiplies state coordinates by the zoom factor).
        return (0, row["cx"] * spec.county_zoom, row["cy"] * spec.county_zoom)

    def jump_name(row):
        return f"County map of {row['name']}"

    app.addJump(
        Jump(
            "statemap", "countymap", "geometric_semantic_zoom",
            selector=selector, new_viewport=new_viewport, name=jump_name,
        )
    )
    # A jump back from the county map to the state overview.
    app.addJump(Jump("countymap", "statemap", "semantic_zoom"))

    # set initial canvas
    app.initialCanvas("statemap", 0, 0)
    return app, database


def main() -> dict[str, float]:
    """Drive the application through the interaction of Figure 2."""
    spec = USMapSpec()
    app, database = build_usmap_application(spec)
    compiled = compile_application(app)
    # One factory call builds and precomputes the serving stack (a cached
    # backend here; flipping ``config.cluster.enabled`` shards it).
    service = build_service(app.config, database=database, compiled=compiled)

    frontend = KyrixFrontend(service, dbox50_scheme(), render=True)
    load = frontend.load_initial_canvas()
    print(f"[statemap] initial load: {load.total_ms:.1f} ms, "
          f"{load.objects_fetched} states fetched")

    # Figure 2(a)->(c): click a state, zoom into the county map centred on it.
    clicked_state = frontend.visible_objects[1][-1]
    jumps = frontend.available_jumps(clicked_state, layer_index=1)
    print(f"clicking {clicked_state['name']} offers: "
          f"{[label for _, label in jumps]}")
    jump_latency = frontend.click(clicked_state, layer_index=1)
    print(f"[countymap] jump: {jump_latency.total_ms:.1f} ms, "
          f"{jump_latency.objects_fetched} counties fetched")

    # Figure 2(d): pan on the county-level map.
    pan_latency = frontend.pan_by(2048, 0)
    print(f"[countymap] pan: {pan_latency.total_ms:.1f} ms")

    print(f"average response time: {frontend.average_response_ms():.1f} ms")
    return {
        "load_ms": load.total_ms,
        "jump_ms": jump_latency.total_ms,
        "pan_ms": pan_latency.total_ms,
    }


if __name__ == "__main__":
    main()
