"""Adaptive repartitioning demo: a hotspot workload rebalanced live.

Builds the skewed dots application sharded 2 ways with a static grid,
replays a pan session confined to one shard's region (the "everyone pans
over Manhattan" traffic shape), shows the per-shard load skew the static
partitioning produces, then performs an **online** load-driven rebalance
to 4 shards — while a second session keeps issuing requests and checks
every payload stays byte-identical through the swap — and replays the
hotspot again to show the load spreading across the new splits.

Run with::

    python examples/rebalance_cluster.py
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

import json

from repro.bench.apps import build_dots_backend, default_config
from repro.cluster import build_cluster
from repro.datagen.synthetic import skewed_spec
from repro.net.protocol import DataRequest


def payload(response) -> bytes:
    return json.dumps(response.objects, sort_keys=True).encode("utf-8")


def main() -> None:
    spec = skewed_spec(
        num_points=20_000, canvas_width=16_384.0, canvas_height=8_192.0
    )
    stack = build_dots_backend(spec, config=default_config(viewport=1024))
    cluster = build_cluster(
        stack.backend, shard_count=2, strategy="grid", rebalance=True
    )
    router, rebalancer = cluster.router, cluster.rebalancer

    # A pan session confined to shard 0's region: the hotspot.
    region = cluster.partitionings["dots"].region(0).rect
    box_w, box_h = region.width / 8.0, region.height / 8.0
    hotspot = [
        DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0, granularity="box",
            xmin=(x := region.xmin + (step * 311.0) % (region.width - box_w)),
            ymin=(y := region.ymin + (step * 173.0) % (region.height - box_h)),
            xmax=x + box_w, ymax=y + box_h,
        )
        for step in range(120)
    ]

    for request in hotspot:
        router.handle(request)
    print(f"static grid @ 2 shards, hotspot session of {len(hotspot)} pans:")
    print(f"  per-shard load: {rebalancer.shard_loads()}")
    print(f"  skew (max/mean): {rebalancer.skew():.3f}"
          f"  -> should_rebalance: {rebalancer.should_rebalance()}")

    # Rebalance online while a concurrent session keeps reading.
    expected = [payload(router.handle(r)) for r in hotspot]
    mismatches = []

    def keep_reading() -> None:
        while not done.is_set():
            router.cache.clear()
            for request, want in zip(hotspot, expected):
                if payload(router.handle(request)) != want:
                    mismatches.append(request)

    done = threading.Event()
    reader = threading.Thread(target=keep_reading, daemon=True)
    reader.start()
    report = rebalancer.rebalance(4)
    done.set()
    reader.join()
    print(f"\nonline rebalance: {report.describe()}")
    print(f"  payload mismatches during the swap: {len(mismatches)}")

    router.stats.reset()
    router.cache.clear()
    for request in hotspot:
        router.handle(request)
    print(f"\nload-weighted splits @ 4 shards, same hotspot session:")
    print(f"  per-shard load: {rebalancer.shard_loads()}")
    print(f"  skew (max/mean): {rebalancer.skew():.3f}")
    cluster.close()


if __name__ == "__main__":
    main()
