"""Compare fetching schemes on the paper's synthetic workloads.

A command-line rendition of Section 3.3: runs the eight fetching schemes of
Figures 6 and 7 over the three viewport-movement traces of Figure 5, on the
Uniform and Skewed datasets, and prints the per-trace average response times
as a table and an ASCII bar chart.

Run with::

    python examples/fetching_comparison.py            # smoke scale (fast)
    python examples/fetching_comparison.py --bench    # benchmark scale
"""

from __future__ import annotations

import argparse

from repro.bench import (
    build_stack,
    figure6,
    figure7,
    format_comparison,
    format_experiment_table,
    format_figure,
    speedup_summary,
)


def main(scale: str = "smoke") -> None:
    print(f"running the Figure 6 / Figure 7 measurement loop at {scale!r} scale\n")

    uniform = figure6(scale=scale)
    print(format_figure(uniform, title="Figure 6 — Uniform dataset"))
    print()
    print(format_experiment_table(uniform))
    print()

    skewed = figure7(scale=scale)
    print(format_figure(skewed, title="Figure 7 — Skewed dataset"))
    print()
    print(format_experiment_table(skewed))
    print()

    print("dbox vs the best static-tile scheme (tile spatial 1024):")
    for experiment in (uniform, skewed):
        speedups = speedup_summary(experiment, "tile spatial 1024", "dbox")
        formatted = ", ".join(f"trace-{t}: {s:.2f}x" for t, s in speedups.items())
        print(f"  {experiment.dataset:8s} {formatted}")
    print()
    print(format_comparison([uniform, skewed], ["dbox", "dbox 50%", "tile spatial 1024"]))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", action="store_true",
        help="run at full benchmark scale (250k dots) instead of smoke scale",
    )
    arguments = parser.parse_args()
    main(scale="bench" if arguments.bench else "smoke")
