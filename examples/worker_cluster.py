"""Process-worker cluster demo: shards in real OS processes, killed live.

Builds the temporal EEG application twice — once with in-process thread
shards, once with one forked worker process per shard replica speaking the
wire envelope over localhost TCP — proves both topologies serve
byte-identical payloads, compares their wall-clock on the same pan
workload, then SIGKILLs one worker mid-session and shows the replica layer
failing over with the dead worker's breaker open.

Run with::

    python examples/worker_cluster.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.apps import build_eeg_backend, default_config
from repro.cluster import build_cluster
from repro.datagen.eeg import EEGSpec
from repro.net.protocol import DataRequest
from repro.serving import kill_worker


def main() -> None:
    spec = EEGSpec(channels=4, sample_rate_hz=32.0, duration_s=240.0)
    stack = build_eeg_backend(spec, config=default_config(viewport=512))
    width, height = stack.canvas_width, stack.canvas_height
    window_ms = width / 8.0

    def requests(count: int = 16) -> list[DataRequest]:
        step = (width - window_ms) / count
        return [
            DataRequest(
                app_name="eeg", canvas_id=stack.canvas_id, layer_index=0,
                granularity="box", xmin=i * step, ymin=0.0,
                xmax=i * step + window_ms, ymax=height,
            )
            for i in range(count)
        ]

    def run(cluster, workload) -> tuple[float, bytes]:
        started = time.perf_counter()
        payloads = [
            json.dumps(cluster.router.handle(r).objects, sort_keys=True)
            for r in workload
        ]
        elapsed_ms = (time.perf_counter() - started) * 1000.0 / len(workload)
        return elapsed_ms, "".join(payloads).encode("utf-8")

    workload = requests()
    threads = build_cluster(stack.backend, shard_count=4, worker_mode="threads")
    processes = build_cluster(
        stack.backend, shard_count=4, replicas=2, worker_mode="processes"
    )
    try:
        print("worker processes:")
        for worker in processes.worker_pool.describe():
            print(f"  shard{worker['shard_id']}/replica{worker['replica_index']}: "
                  f"pid {worker['pid']} on port {worker['port']}")
        divergent = processes.router.stats.divergent_replicas()
        print(f"replica index divergence: {divergent or 'none — all copies agree'}")

        thread_ms, thread_bytes = run(threads, workload)
        process_ms, process_bytes = run(processes, workload)
        print(f"threads:   {thread_ms:7.2f} ms/step")
        print(f"processes: {process_ms:7.2f} ms/step")
        print(f"payloads byte-identical: {thread_bytes == process_bytes}")

        handle = kill_worker(processes, shard_id=0, replica_index=0)
        print(f"\nSIGKILLed shard0/replica0 (pid {handle.pid})")
        # Pan inside shard 0's time range so the dead worker is actually hit.
        shard0_span = width / 4.0
        degraded = [
            DataRequest(
                app_name="eeg", canvas_id=stack.canvas_id, layer_index=0,
                granularity="box", xmin=i * 1000.0, ymin=0.0,
                xmax=i * 1000.0 + shard0_span / 2.0, ymax=height,
            )
            for i in range(6)
        ]
        run(processes, degraded)
        replica_set = processes.router.replica_sets()[0]
        state = "open" if replica_set.breaker_open(0) else "closed"
        print(f"served through the kill; shard0/replica0 breaker: {state}")
        print("per-replica failures:",
              processes.router.stats.per_replica_failures or "{}")
    finally:
        threads.close()
        processes.close()
    alive = [h.alive for h in processes.worker_pool.handles]
    print(f"after close(): workers alive = {alive}")


if __name__ == "__main__":
    main()
