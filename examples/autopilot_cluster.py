"""The self-driving cluster: a hotspot shift detected, rebalanced, repaired.

Everything ``examples/rebalance_cluster.py`` did by hand, the
:class:`~repro.cluster.autopilot.ClusterAutopilot` does unattended.  This
walkthrough drives the control loop tick by tick on a virtual clock so
every decision is deterministic and narrated:

1. build the skewed dots application, sharded 2 ways with 2 replicas per
   shard, and put an autopilot over it;
2. concentrate a pan session on one shard (hotspot A) — the next tick
   observes the skew and performs an **autonomous online rebalance**;
3. show the stability machinery: a settled window re-arms the hysteresis
   trigger, and when the hotspot **shifts** to the other end of the
   canvas, the cooldown holds the thrash bound (no second migration
   until the window expires) before the loop converges again;
4. corrupt one replica's recorded index checksum through the fault seam
   — the next tick **read-repairs** it: rebuilds the replica, swaps it
   in behind the breaker, and payloads stay byte-identical throughout.

In production you would not tick by hand: ``build_service(...,
autopilot=True)`` (or ``config.cluster.autopilot.enabled``) attaches and
*starts* the same loop on a background thread at ``interval_s`` cadence.

Run with::

    python examples/autopilot_cluster.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.apps import build_dots_backend, default_config
from repro.cluster import ClusterAutopilot, build_cluster
from repro.datagen.synthetic import skewed_spec
from repro.metrics.timer import VirtualClock
from repro.net.protocol import DataRequest
from repro.serving.faults import diverge_replica


def payload(response) -> bytes:
    return json.dumps(response.objects, sort_keys=True).encode("utf-8")


def hotspot(cluster, region_index: int, steps: int = 80) -> list[DataRequest]:
    """A pan session confined to one shard region of the *current* epoch."""
    region = cluster.partitionings["dots"].region(region_index).rect
    box_w, box_h = region.width / 8.0, region.height / 8.0
    # Strictly inside the region: a box that touches the shard boundary
    # scatters to both neighbours, and those stray counts would dilute
    # the window skew right below the trigger threshold.
    x0, y0 = region.xmin + box_w / 2.0, region.ymin + box_h / 2.0
    span_x, span_y = region.width - 2.0 * box_w, region.height - 2.0 * box_h
    return [
        DataRequest(
            app_name="dots", canvas_id="dots", layer_index=0, granularity="box",
            xmin=(x := x0 + (step * 311.0) % span_x),
            ymin=(y := y0 + (step * 173.0) % span_y),
            xmax=x + box_w, ymax=y + box_h,
        )
        for step in range(steps)
    ]


def replay(router, requests) -> None:
    # Fresh scatters every time: the router cache would otherwise absorb
    # the repeats and hide the load from the autopilot's sensors.
    for request in requests:
        router.cache.clear()
        router.handle(request)


def main() -> None:
    spec = skewed_spec(
        num_points=20_000, canvas_width=16_384.0, canvas_height=8_192.0
    )
    stack = build_dots_backend(spec, config=default_config(viewport=1024))
    cluster = build_cluster(
        stack.backend, shard_count=2, strategy="grid", replicas=2,
        rebalance=True,
    )
    router, rebalancer = cluster.router, cluster.rebalancer
    clock = VirtualClock()
    pilot = ClusterAutopilot(cluster, clock=clock)
    cooldown_ms = pilot.config.cooldown_s * 1000.0
    threshold = rebalancer.skew_threshold

    print("phase 1 -- a hotspot forms, the autopilot rebalances")
    session_a = hotspot(cluster, 0)
    replay(router, session_a)
    print(f"  80 pans confined to shard 0's region; per-shard load "
          f"{rebalancer.shard_loads()} -> skew {rebalancer.skew():.3f} "
          f"(threshold {threshold})")
    for action in pilot.tick():
        print(f"  tick {action.tick}: {action.describe()}")
    replay(router, session_a)
    print(f"  same hotspot session on the new load-weighted boundaries: "
          f"load {rebalancer.shard_loads()} -> skew {rebalancer.skew():.3f}")

    print("\nphase 2 -- hysteresis re-arms, cooldown holds the thrash bound")
    clock.advance(cooldown_ms / 4)
    actions = pilot.tick()
    print(f"  settled window (skew < {threshold - pilot.config.hysteresis}):"
          f" trigger re-armed, actions taken: {len(actions)}")
    session_b = hotspot(cluster, 1)
    replay(router, session_b)
    actions = pilot.tick()
    print(f"  the hotspot SHIFTS to shard 1's region (skew back at "
          f"{threshold}); still inside the cooldown window -> "
          f"actions taken: {len(actions)} (no thrash)")
    expected = [payload(router.handle(r)) for r in session_b]
    clock.advance(cooldown_ms)
    replay(router, session_b)
    for action in pilot.tick():
        print(f"  cooldown expired; tick {action.tick}: {action.describe()}")
    router.cache.clear()
    mismatches = sum(
        payload(router.handle(request)) != want
        for request, want in zip(session_b, expected)
    )
    replay(router, session_b)
    print(f"  shifted hotspot after the second migration: "
          f"load {rebalancer.shard_loads()} -> skew {rebalancer.skew():.3f}; "
          f"payload mismatches across the swap: {mismatches}")

    print("\nphase 3 -- a replica diverges, the next tick read-repairs it")
    probes = session_b[:5]
    router.cache.clear()
    before = [payload(router.handle(r)) for r in probes]
    diverge_replica(cluster, 0, 1)
    print(f"  divergent replicas flagged: {router.divergent_replicas()}")
    for action in pilot.tick():
        print(f"  tick {action.tick}: {action.describe()}")
    router.cache.clear()
    after = [payload(router.handle(r)) for r in probes]
    print(f"  divergence cleared: {not router.divergent_replicas()}; "
          f"payloads byte-identical through the repair: {after == before}")

    print(f"\nautopilot summary: {pilot.describe()}")
    pilot.close()
    cluster.close()


if __name__ == "__main__":
    main()
