"""Debugging a slow step: tracing one pan session end to end.

The question every serving regression starts with is "where did my time
go?".  This walkthrough answers it with the telemetry plane:

1. build a 2-shard x 2-replica **worker-process** cluster with tracing on
   (every serving layer -- router cache, coalescer, scatter, replica
   attempts, the JSON wire, the worker-side query -- opens a timed span,
   and worker spans cross the socket back into the caller's trace);
2. replay a short pan session plus one revisited step, with a fault
   schedule slowing one replica of shard 0;
3. read the traces three ways: the wall-clock-slowest step as an
   indented span tree, the step that actually hit the injected fault
   (its replica_attempt span carries a ``fault_injected`` event), and
   the per-stage latency percentiles the registry accumulated.

The same tree is what ``GET /trace/<trace_id>`` serves over HTTP, and the
same percentiles back ``GET /metrics``; for offline exports
(``config.telemetry.export_path``) the ``python -m repro.telemetry.dump``
CLI renders exactly this view.

Run with::

    python examples/trace_session.py
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench.apps import build_eeg_backend, default_config
from repro.cluster import build_cluster
from repro.datagen.eeg import EEGSpec
from repro.net.protocol import DataRequest
from repro.serving.faults import FaultSchedule, fault_replica
from repro.serving.replica import ReplicaService
from repro.telemetry import get_registry, get_tracer
from repro.telemetry.dump import format_trace, trace_duration_ms


def pan_session(stack, steps: int = 8) -> list[DataRequest]:
    """A rightward pan across the temporal EEG canvas, then one revisit."""
    width, height = stack.canvas_width, stack.canvas_height
    window = width / 8.0
    stride = (width - window) / steps
    requests = [
        DataRequest(
            app_name="eeg", canvas_id="temporal", layer_index=0,
            granularity="box", xmin=step * stride, ymin=0.0,
            xmax=step * stride + window, ymax=height,
        )
        for step in range(steps)
    ]
    # The user pans back to where they started: this step repeats the
    # first viewport exactly, so the router cache answers it.
    return requests + [requests[0]]


def fault_events(trace: dict) -> list[tuple[str, dict]]:
    """(span name, event dict) pairs for every fault stamped in ``trace``."""
    return [
        (span["name"], event)
        for span in trace["spans"]
        for event in span["events"]
        if event["name"] == "fault_injected"
    ]


def main() -> None:
    spec = EEGSpec(channels=4, sample_rate_hz=32.0, duration_s=240.0)
    stack = build_eeg_backend(spec, config=default_config(viewport=512))

    # Step 1 -- a traced process cluster: telemetry=True configures the
    # process-wide tracer from config.telemetry and folds the flag into
    # the ShardSpec dumps, so the forked workers trace their side too.
    cluster = build_cluster(
        stack.backend, shard_count=2, replicas=2,
        worker_mode="processes", telemetry=True,
    )
    try:
        # Step 2 -- slow down one replica of shard 0 at the fault seam.
        # Latency faults charge the *virtual* clock (the simulated-latency
        # plane the benchmarks measure), so they show up in traces as
        # fault_injected events rather than longer wall-clock spans.
        replica_set = cluster.shards[0].service
        assert isinstance(replica_set, ReplicaService)
        fault_replica(
            replica_set, 0, FaultSchedule.slow(40.0),
            clock=stack.database.clock,
        )

        for request in pan_session(stack):
            cluster.router.handle(request)
    finally:
        cluster.close()

    # Step 3a -- where did the wall time go?  Rank finished traces by
    # root-span duration.  The slowest steps are the cache misses that
    # fanned out to the workers (their trees reach rpc/execute spans);
    # the revisited step short-circuits at the router cache span.
    tracer = get_tracer()
    traces = sorted(tracer.traces(), key=trace_duration_ms, reverse=True)
    print(f"{len(traces)} traces; slowest step took "
          f"{trace_duration_ms(traces[0]):.2f} ms -- its span tree:\n")
    print(format_trace(traces[0]))
    fastest = traces[-1]
    print(f"\nfastest step ({trace_duration_ms(fastest):.2f} ms, "
          f"the revisit) stops at the cache:\n")
    print(format_trace(fastest))

    # Step 3b -- which steps hit the slow replica?  The injected fault is
    # visible *in the trace*: a fault_injected event on the attempt span.
    faulted = [trace for trace in traces if fault_events(trace)]
    print(f"\n{len(faulted)} of {len(traces)} steps hit the slow replica:")
    for trace in faulted:
        for span_name, event in fault_events(trace):
            print(f"  trace {trace['trace_id']}: {event['name']} on "
                  f"'{span_name}' (+{event['latency_ms']} virtual ms)")

    # Step 3c -- the aggregate view (what GET /metrics serves).
    print("\nper-stage latency percentiles:")
    for stage, snapshot in sorted(get_registry().snapshot().items()):
        print(f"  {stage:<16} n={snapshot['count']:<6.0f} "
              f"p50={snapshot['p50']:8.3f} ms  p99={snapshot['p99']:8.3f} ms")


if __name__ == "__main__":
    main()
