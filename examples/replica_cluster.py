"""Replica failover demo: kill half the cluster mid-session, keep serving.

Builds a 2-shard cluster with two replicas per shard, pans across the
canvas, then fault-injects replica 0 of every shard to fail each request —
the session continues uninterrupted because the replica layer fails over to
the surviving copies, and the router's stats attribute every failure to the
dead replicas.

Run with::

    python examples/replica_cluster.py
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.bench import build_dots_application, default_config
from repro.cluster import ClusterRouter
from repro.compiler import compile_application
from repro.datagen import load_dots, uniform_spec
from repro.net.protocol import DataRequest
from repro.serving import FaultSchedule, build_service, fault_replica, unwrap
from repro.storage import Database


def main(num_points: int = 20_000) -> None:
    dataset = uniform_spec(
        num_points=num_points, canvas_width=8_192, canvas_height=4_096
    )
    config = default_config(viewport=1024)
    config.cluster.enabled = True
    config.cluster.shard_count = 2
    config.cluster.replicas = 2
    config.cluster.replica_policy = "least_inflight"
    database = Database(config.storage)
    load_dots(database, dataset)
    compiled = compile_application(build_dots_application(dataset, config))
    service = build_service(config, database=database, compiled=compiled)
    router = unwrap(service, ClusterRouter)
    print(f"cluster: {router.describe()['shard_count']} shards x "
          f"{router.describe()['replicas']} replicas "
          f"({router.describe()['replica_policy']})")

    def pan(start: int, steps: int) -> int:
        served = 0
        for step in range(start, start + steps):
            x = (step * 512.0) % (dataset.canvas_width - 1024.0)
            y = (step * 256.0) % (dataset.canvas_height - 1024.0)
            response = service.handle(
                DataRequest(
                    app_name=compiled.app_name, canvas_id="dots", layer_index=0,
                    granularity="box", xmin=x, ymin=y, xmax=x + 1024.0,
                    ymax=y + 1024.0,
                )
            )
            served += len(response.objects)
        return served

    print(f"healthy pan: {pan(0, 8):,} objects over 8 steps")

    for shard_id, layer in router.replica_sets().items():
        fault_replica(layer, 0, FaultSchedule.fail_always())
        print(f"killed shard {shard_id} replica 0")

    print(f"degraded pan: {pan(8, 8):,} objects over 8 steps "
          "(failover masked every fault)")
    stats = router.stats
    print("per-replica requests:", stats.per_replica_requests)
    print("per-replica failures:", stats.per_replica_failures)
    for shard_id, layer in router.replica_sets().items():
        state = "open" if layer.breaker_open(0) else "closed"
        print(f"shard {shard_id} replica 0 breaker: {state}")
    service.close()


if __name__ == "__main__":
    main()
