"""EEG exploration: the MGH scenario of Section 4.

The paper's collaborators want to explore sleep EEG with a *spectral*
overview (per-epoch band powers) and a *temporal* detail view (raw traces),
connected by a semantic zoom.  This example builds exactly that with the
declarative API over the synthetic EEG generator:

* ``spectral`` canvas — one epoch-feature rectangle per (channel, epoch),
  intensity encoding delta-band power;
* ``temporal`` canvas — the raw multi-channel traces, 100x wider, reached by
  clicking an epoch (semantic zoom into the corresponding time range).

Run with::

    python examples/eeg_explorer.py
"""

from __future__ import annotations

from repro.bench.apps import default_config
from repro.client import KyrixFrontend
from repro.compiler import compile_application
from repro.core import (
    App,
    Canvas,
    ColumnPlacement,
    Jump,
    Layer,
    Transform,
    legend_renderer,
    line_renderer,
    rect_renderer,
)
from repro.datagen import EEGSpec, load_eeg
from repro.server import KyrixBackend, dbox_scheme
from repro.serving import build_service, unwrap
from repro.storage import Database

#: Vertical lane height used by the epoch (spectral) canvas.
SPECTRAL_LANE = 100.0
#: Vertical lane height used by the sample (temporal) canvas.
TEMPORAL_LANE = 200.0


def build_eeg_application(spec: EEGSpec | None = None) -> tuple[App, Database]:
    """Build the two-view EEG application and its database."""
    spec = spec or EEGSpec(channels=4, sample_rate_hz=64.0, duration_s=600.0)
    config = default_config(viewport=1024)
    database = Database(config.storage)
    load_eeg(database, spec)

    total_ms = spec.duration_s * 1000.0
    app = App("eeg", config=config)

    # -- spectral overview canvas ------------------------------------------------
    spectral = Canvas(
        "spectral",
        width=max(2048.0, total_ms / 10.0),  # 10 ms of recording per pixel
        height=max(1024.0, spec.channels * SPECTRAL_LANE * 2),
    )
    spectral.addTransform(Transform.empty())
    spectral.addTransform(
        Transform(
            transform_id="epochTrans",
            query=(
                "SELECT epoch_id, channel, t_ms, delta, theta, alpha, spindle, bbox "
                "FROM eeg_epochs"
            ),
            columns=(
                "epoch_id", "channel", "t_ms", "delta", "theta", "alpha",
                "spindle", "bbox", "px", "py", "epoch_w", "epoch_h",
            ),
            transform_func=lambda row: {
                **row,
                # Position epochs on the spectral canvas: x = time / 10,
                # y = channel lane; intensity column normalised later.
                "px": row["t_ms"] / 10.0,
                "py": row["channel"] * SPECTRAL_LANE + SPECTRAL_LANE / 2.0,
                "epoch_w": 3000.0 / 10.0,
                "epoch_h": SPECTRAL_LANE * 0.8,
            },
        )
    )
    legend = Layer("empty", True)
    legend.addRenderingFunc(legend_renderer("delta-band power per 30s epoch"))
    spectral.addLayer(legend)

    epoch_layer = Layer("epochTrans", False)
    epoch_layer.addPlacement(
        ColumnPlacement(x_column="px", y_column="py", width="epoch_w", height="epoch_h")
    )
    epoch_layer.addRenderingFunc(
        rect_renderer("px", "py", "epoch_w", "epoch_h", intensity_column="delta")
    )
    spectral.addLayer(epoch_layer)
    app.addCanvas(spectral)

    # -- temporal detail canvas ----------------------------------------------------
    temporal = Canvas(
        "temporal",
        width=max(4096.0, total_ms),  # one pixel per millisecond
        height=max(1024.0, spec.channels * TEMPORAL_LANE * 2),
    )
    temporal.addTransform(Transform.empty())
    temporal.addTransform(
        Transform(
            transform_id="sampleTrans",
            query="SELECT sample_id, channel, t_ms, value, bbox FROM eeg_samples",
            columns=("sample_id", "channel", "t_ms", "value", "bbox", "px", "py"),
            transform_func=lambda row: {
                **row,
                "px": row["t_ms"],
                "py": row["channel"] * TEMPORAL_LANE
                + TEMPORAL_LANE / 2.0
                + row["value"],
            },
        )
    )
    temporal_legend = Layer("empty", True)
    temporal_legend.addRenderingFunc(legend_renderer("raw EEG traces (µV)"))
    temporal.addLayer(temporal_legend)

    sample_layer = Layer("sampleTrans", False)
    sample_layer.addPlacement(ColumnPlacement(x_column="px", y_column="py", width=1, height=1))
    sample_layer.addRenderingFunc(line_renderer("px", "py"))
    temporal.addLayer(sample_layer)
    app.addCanvas(temporal)

    # -- semantic zoom: epoch -> raw traces of that time range ---------------------
    app.addJump(
        Jump(
            "spectral", "temporal", "semantic_zoom",
            selector=lambda row, layer_id: layer_id == 1,
            new_viewport=lambda row: (row["t_ms"], row["channel"] * TEMPORAL_LANE),
            name=lambda row: f"Raw traces at {row['t_ms'] / 1000.0:.0f}s",
        )
    )
    app.addJump(Jump("temporal", "spectral", "semantic_zoom"))
    app.initialCanvas("spectral", 0, 0)
    return app, database


def main() -> dict[str, float]:
    """Explore the synthetic recording: overview, zoom into an epoch, pan."""
    spec = EEGSpec(channels=4, sample_rate_hz=64.0, duration_s=600.0)
    app, database = build_eeg_application(spec)
    compiled = compile_application(app)
    # precompute=False: the factory would precompute silently; this example
    # wants the per-layer placement reports to print, so it runs the pass
    # itself on the built backend.
    service = build_service(
        app.config, database=database, compiled=compiled, precompute=False
    )
    backend = unwrap(service, KyrixBackend)
    print("precomputing placement tables for both canvases ...")
    reports = backend.precompute()
    for report in reports:
        print(f"  layer {report.layer}: {report.rows} objects placed "
              f"({report.elapsed_ms:.0f} ms)")

    frontend = KyrixFrontend(backend, dbox_scheme(), render=True)
    load = frontend.load_initial_canvas()
    print(f"[spectral] initial load: {load.total_ms:.1f} ms, "
          f"{load.objects_fetched} epochs")

    # Click a mid-recording epoch on the epoch layer (layer index 1).
    epochs = frontend.visible_objects[1]
    clicked = epochs[len(epochs) // 2]
    jump = frontend.click(clicked, layer_index=1)
    print(f"[temporal] semantic zoom to t={clicked['t_ms'] / 1000:.0f}s: "
          f"{jump.total_ms:.1f} ms, {jump.objects_fetched} samples")

    pan = frontend.pan_by(2000, 0)
    print(f"[temporal] pan 2s forward: {pan.total_ms:.1f} ms")
    print(f"average response time: {frontend.average_response_ms():.1f} ms")
    return {"load_ms": load.total_ms, "jump_ms": jump.total_ms, "pan_ms": pan.total_ms}


if __name__ == "__main__":
    main()
