"""Quickstart: build a dots application, pan around, print response times.

This is the smallest end-to-end use of the public API:

1. generate a synthetic dot dataset and load it into the embedded database,
2. declare a one-canvas Kyrix application over it,
3. compile it and build the serving stack with ``serving.build_service``
   (one factory assembles backend, caches and — when configured — the
   sharded cluster), then drive it with the headless frontend using the
   paper's dynamic-box fetching,
4. print the average response time per interaction (the paper's 500 ms goal).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench import build_dots_application, default_config
from repro.client import KyrixFrontend
from repro.compiler import compile_application
from repro.config import INTERACTIVITY_BUDGET_MS
from repro.datagen import load_dots, uniform_spec
from repro.server import dbox_scheme
from repro.serving import build_service
from repro.storage import Database


def main(num_points: int = 50_000) -> float:
    """Build the stack, pan across the canvas, return the average latency."""
    dataset = uniform_spec(
        num_points=num_points, canvas_width=16_384, canvas_height=8_192
    )
    print(f"Loading {dataset.num_points:,} dots on a "
          f"{dataset.canvas_width:.0f} x {dataset.canvas_height:.0f} canvas ...")
    config = default_config(viewport=1024)
    database = Database(config.storage)
    load_dots(database, dataset)
    application = build_dots_application(dataset, config)
    compiled = compile_application(application)

    # The one factory call that replaces hand-assembled serving stacks:
    # precomputes the backend and composes the configured middleware.
    service = build_service(config, database=database, compiled=compiled)

    frontend = KyrixFrontend(service, dbox_scheme(), render=True)
    frontend.load_initial_canvas()
    print(f"initial load: {frontend.metrics.steps[0].total_ms:.1f} ms, "
          f"{frontend.metrics.steps[0].objects_fetched} objects")

    # Pan right across the canvas, then diagonally back.
    for _ in range(6):
        frontend.pan_by(1024, 0)
    for _ in range(6):
        frontend.pan_by(-1024, 512)

    average = frontend.average_response_ms()
    print(f"average response time over {len(frontend.metrics)} interactions: "
          f"{average:.1f} ms (budget: {INTERACTIVITY_BUDGET_MS:.0f} ms)")
    print(f"pixels rendered in last frame: {frontend.renderer.nonzero_pixels()}")
    return average


if __name__ == "__main__":
    main()
