"""Compiled execution plans.

The compiler turns a validated :class:`~repro.core.application.Application`
into a :class:`CompiledApplication`: a per-layer description of which
database tables hold the layer's placed objects, which indexes exist, and
which fetching granularity the backend should use.  The backend server and
the indexer work exclusively from this plan, never from the raw spec.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from ..core.application import Application
from ..core.canvas import Canvas
from ..core.layer import Layer
from ..core.transform import Transform
from ..errors import UnknownCanvasError, UnknownLayerError


@dataclass
class LayerPlan:
    """Everything the backend needs to serve one dynamic layer.

    Attributes
    ----------
    canvas_id / layer_index:
        Which layer of which canvas this plan describes.
    placement_table:
        Name of the precomputed table holding one row per placed object:
        the transformed columns plus ``tuple_id``, ``cx``, ``cy`` and
        ``bbox``.
    mapping_table:
        Name of the tuple–tile mapping table (``tuple_id``, ``tile_id``)
        used by the tuple-tile database design; built lazily per tile size.
    separable:
        True when placement precomputation can be skipped (Section 3.2) and
        queries can run against the raw table's own spatial index.
    source_table:
        For separable layers: the raw table that queries run against.
    columns:
        Output columns of the layer's transform (what the frontend receives).
    static:
        Static layers are fetched once per canvas load and never re-fetched
        on pan.
    """

    canvas_id: str
    layer_index: int
    layer_name: str
    transform_id: str
    static: bool
    placement_table: str | None = None
    mapping_table_prefix: str | None = None
    separable: bool = False
    source_table: str | None = None
    columns: tuple[str, ...] = ()
    fetching: str | None = None

    def mapping_table_for(self, tile_size: int) -> str:
        """Mapping-table name for one tile size (one table per size)."""
        prefix = self.mapping_table_prefix or f"{self.placement_table}_map"
        return f"{prefix}_{tile_size}"

    @property
    def key(self) -> tuple[str, int]:
        return (self.canvas_id, self.layer_index)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable form (``columns`` stays a list on the wire)."""
        data = asdict(self)
        data["columns"] = list(self.columns)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LayerPlan":
        data = dict(data)
        data["columns"] = tuple(data.get("columns", ()))
        return cls(**data)


@dataclass
class CanvasPlan:
    """Compiled form of one canvas."""

    canvas_id: str
    width: float
    height: float
    zoom_level: float
    layers: list[LayerPlan] = field(default_factory=list)

    def dynamic_layers(self) -> list[LayerPlan]:
        return [layer for layer in self.layers if not layer.static]

    def to_dict(self) -> dict[str, Any]:
        return {
            "canvas_id": self.canvas_id,
            "width": self.width,
            "height": self.height,
            "zoom_level": self.zoom_level,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CanvasPlan":
        return cls(
            canvas_id=data["canvas_id"],
            width=data["width"],
            height=data["height"],
            zoom_level=data["zoom_level"],
            layers=[LayerPlan.from_dict(layer) for layer in data.get("layers", [])],
        )


@dataclass
class CompiledApplication:
    """The full compiled plan for an application."""

    app_name: str
    canvases: dict[str, CanvasPlan] = field(default_factory=dict)
    #: The original (validated) specification, kept for jump resolution and
    #: renderer access at runtime.
    spec: Application | None = None

    def canvas_plan(self, canvas_id: str) -> CanvasPlan:
        return self.canvases[canvas_id]

    def layer_plan(self, canvas_id: str, layer_index: int) -> LayerPlan:
        return self.canvases[canvas_id].layers[layer_index]

    def require_layer_plan(self, canvas_id: str, layer_index: int) -> LayerPlan:
        """Like :meth:`layer_plan` but with serving-grade validation.

        The backend and the cluster router share this so a bad request
        raises the same error regardless of deployment shape.
        """
        if canvas_id not in self.canvases:
            raise UnknownCanvasError(f"no canvas {canvas_id!r}")
        canvas_plan = self.canvases[canvas_id]
        if layer_index < 0 or layer_index >= len(canvas_plan.layers):
            raise UnknownLayerError(
                f"canvas {canvas_id!r} has no layer {layer_index}"
            )
        return canvas_plan.layers[layer_index]

    def all_layer_plans(self) -> list[LayerPlan]:
        plans: list[LayerPlan] = []
        for canvas in self.canvases.values():
            plans.extend(canvas.layers)
        return plans

    def to_dict(self) -> dict[str, Any]:  # repolint: disable=protocol-drift
        """The plan as plain JSON-serialisable data.

        The attached ``spec`` (live :class:`Application` with transform
        closures and renderer callables) is deliberately dropped: the dict
        form is what ships to shard worker processes, which serve purely
        from the compiled plan and the precomputed tables.
        """
        return {
            "app_name": self.app_name,
            "canvases": {
                canvas_id: plan.to_dict()
                for canvas_id, plan in self.canvases.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompiledApplication":
        """Rebuild a (spec-less) plan from its :meth:`to_dict` form."""
        return cls(
            app_name=data["app_name"],
            canvases={
                canvas_id: CanvasPlan.from_dict(plan)
                for canvas_id, plan in data.get("canvases", {}).items()
            },
            spec=None,
        )

    def describe(self) -> dict[str, Any]:
        return {
            "app": self.app_name,
            "canvases": {
                cid: {
                    "size": [plan.width, plan.height],
                    "layers": [
                        {
                            "name": layer.layer_name,
                            "static": layer.static,
                            "separable": layer.separable,
                            "placement_table": layer.placement_table,
                            "source_table": layer.source_table,
                            "fetching": layer.fetching,
                        }
                        for layer in plan.layers
                    ],
                }
                for cid, plan in self.canvases.items()
            },
        }


def placement_table_name(app_name: str, canvas: Canvas, layer_index: int) -> str:
    """Canonical name of the precomputed placement table for a layer."""
    return f"{app_name}_{canvas.canvas_id}_layer{layer_index}_place".lower()
