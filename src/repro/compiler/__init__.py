"""The Kyrix compiler: constraint checking and plan generation.

``compile_application`` validates a declarative
:class:`~repro.core.application.Application` and lowers it to a
:class:`~repro.compiler.plan.CompiledApplication` that the backend server
executes against.
"""

from .compiler import compile_application
from .plan import CanvasPlan, CompiledApplication, LayerPlan, placement_table_name
from .validator import collect_issues, validate

__all__ = [
    "CanvasPlan",
    "CompiledApplication",
    "LayerPlan",
    "collect_issues",
    "compile_application",
    "placement_table_name",
    "validate",
]
