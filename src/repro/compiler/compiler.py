"""The Kyrix compiler: validated spec -> compiled execution plan."""

from __future__ import annotations

from ..core.application import Application
from ..core.placement import ColumnPlacement
from ..core.transform import Transform
from ..errors import CompileError
from ..minisql.ast import SelectStatement
from ..minisql.parser import parse
from .plan import CanvasPlan, CompiledApplication, LayerPlan, placement_table_name
from .validator import validate


def compile_application(app: Application, *, skip_validation: bool = False) -> CompiledApplication:
    """Compile a declarative application into a :class:`CompiledApplication`.

    The compiler:

    1. runs the constraint checker (unless ``skip_validation``),
    2. assigns a placement-table name to every dynamic layer,
    3. detects *separable* layers (Section 3.2) — those whose transform and
       placement read x/y straight from raw columns — and records the raw
       source table so precomputation can be skipped for them,
    4. records the transform's output columns for the wire format.
    """
    if not skip_validation:
        validate(app)

    compiled = CompiledApplication(app_name=app.name, spec=app)
    for canvas_id, canvas in app.canvases.items():
        canvas_plan = CanvasPlan(
            canvas_id=canvas_id,
            width=canvas.width,
            height=canvas.height,
            zoom_level=canvas.zoom_level,
        )
        for layer_index, layer in enumerate(canvas.layers):
            transform = canvas.transform_for(layer)
            separable = _is_separable(transform, layer)
            layer_plan = LayerPlan(
                canvas_id=canvas_id,
                layer_index=layer_index,
                layer_name=layer.name or f"{canvas_id}_layer{layer_index}",
                transform_id=layer.transform_id,
                static=layer.static or layer.is_empty,
                separable=separable,
                columns=tuple(transform.columns),
                fetching=layer.fetching,
            )
            if not layer_plan.static:
                table_name = placement_table_name(app.name, canvas, layer_index)
                layer_plan.mapping_table_prefix = f"{table_name}_map"
                if separable:
                    # Separable layers skip placement precomputation and are
                    # served straight from the raw table (Section 3.2).
                    layer_plan.source_table = _source_table(transform)
                else:
                    layer_plan.placement_table = table_name
            canvas_plan.layers.append(layer_plan)
        compiled.canvases[canvas_id] = canvas_plan
    return compiled


def _is_separable(transform: Transform, layer) -> bool:
    """A layer is separable when its transform declares raw x/y columns, it
    has no arbitrary post-processing, and its placement reads those columns
    directly."""
    if not transform.separable:
        return False
    if transform.transform_func is not None:
        return False
    placement = layer.placement
    if not isinstance(placement, ColumnPlacement):
        return False
    return (
        placement.x_column == transform.x_column
        and placement.y_column == transform.y_column
    )


def _source_table(transform: Transform) -> str:
    """The raw table a separable layer's query reads from."""
    try:
        statement = parse(transform.query)
    except Exception as exc:  # pragma: no cover - validator catches this first
        raise CompileError(
            f"transform {transform.transform_id!r}: cannot parse query"
        ) from exc
    if not isinstance(statement, SelectStatement) or statement.table is None:
        raise CompileError(
            f"transform {transform.transform_id!r}: separable transforms need a "
            "single-table SELECT query"
        )
    return statement.table.name
