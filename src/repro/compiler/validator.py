"""Constraint checking of declarative specifications.

"The compiler parses developers' specification and performs basic constraint
checkings."  The validator collects *every* problem it finds before raising,
so a developer can fix a whole specification in one pass.
"""

from __future__ import annotations

from ..core.application import Application
from ..core.jump import JumpType
from ..errors import ValidationError
from ..minisql.ast import SelectStatement
from ..minisql.parser import parse
from ..errors import SQLError


def collect_issues(app: Application) -> list[str]:
    """Return every constraint violation found in ``app`` (empty = valid)."""
    issues: list[str] = []
    issues.extend(_check_application(app))
    for canvas_id, canvas in app.canvases.items():
        issues.extend(_check_canvas(app, canvas_id))
    issues.extend(_check_jumps(app))
    return issues


def validate(app: Application) -> None:
    """Raise :class:`~repro.errors.ValidationError` when the spec is invalid."""
    issues = collect_issues(app)
    if issues:
        raise ValidationError(issues)


# ---------------------------------------------------------------------------
# Individual checks
# ---------------------------------------------------------------------------


def _check_application(app: Application) -> list[str]:
    issues: list[str] = []
    if not app.canvases:
        issues.append("application defines no canvases")
        return issues
    if app.initial_canvas_id is None:
        issues.append("initial canvas has not been set (call initialCanvas)")
    elif app.initial_canvas_id not in app.canvases:
        issues.append(
            f"initial canvas {app.initial_canvas_id!r} is not a defined canvas"
        )
    else:
        canvas = app.canvases[app.initial_canvas_id]
        viewport_w = app.config.viewport_width
        viewport_h = app.config.viewport_height
        if (
            app.initial_viewport_x < 0
            or app.initial_viewport_y < 0
            or app.initial_viewport_x + viewport_w > canvas.width
            or app.initial_viewport_y + viewport_h > canvas.height
        ):
            issues.append(
                f"initial viewport ({app.initial_viewport_x}, {app.initial_viewport_y}, "
                f"{viewport_w}x{viewport_h}) does not fit inside canvas "
                f"{app.initial_canvas_id!r} ({canvas.width}x{canvas.height})"
            )
    try:
        app.config.validate()
    except Exception as exc:  # noqa: BLE001 - surface as a spec issue
        issues.append(f"invalid configuration: {exc}")
    return issues


def _check_canvas(app: Application, canvas_id: str) -> list[str]:
    issues: list[str] = []
    canvas = app.canvases[canvas_id]
    if not canvas.layers:
        issues.append(f"canvas {canvas_id!r} has no layers")
    viewport_w = app.config.viewport_width
    viewport_h = app.config.viewport_height
    if canvas.width < viewport_w or canvas.height < viewport_h:
        issues.append(
            f"canvas {canvas_id!r} ({canvas.width}x{canvas.height}) is smaller than "
            f"the viewport ({viewport_w}x{viewport_h})"
        )
    for index, layer in enumerate(canvas.layers):
        label = f"canvas {canvas_id!r} layer {index}"
        if layer.transform_id not in canvas.transforms and not layer.is_empty:
            issues.append(
                f"{label}: references unknown transform {layer.transform_id!r}"
            )
            continue
        transform = canvas.transform_for(layer)
        if layer.needs_placement and layer.placement is None:
            issues.append(f"{label}: dynamic layer has no placement function")
        if layer.renderer is None:
            issues.append(f"{label}: layer has no rendering function")
        if not layer.is_empty and transform.query:
            issues.extend(_check_query(label, transform.query))
        if layer.fetching is not None and layer.fetching not in (
            "tile", "dbox", "dbox50",
        ):
            issues.append(
                f"{label}: unknown fetching granularity {layer.fetching!r} "
                "(expected 'tile', 'dbox' or 'dbox50')"
            )
    return issues


def _check_query(label: str, query: str) -> list[str]:
    try:
        statement = parse(query)
    except SQLError as exc:
        return [f"{label}: layer query does not parse: {exc}"]
    if not isinstance(statement, SelectStatement):
        return [f"{label}: layer query must be a SELECT statement"]
    return []


def _check_jumps(app: Application) -> list[str]:
    issues: list[str] = []
    for index, jump in enumerate(app.jumps):
        label = f"jump {index} ({jump.source!r} -> {jump.destination!r})"
        if jump.source not in app.canvases:
            issues.append(f"{label}: source canvas is not defined")
        if jump.destination not in app.canvases:
            issues.append(f"{label}: destination canvas is not defined")
        if not isinstance(jump.jump_type, JumpType):
            issues.append(f"{label}: invalid jump type {jump.jump_type!r}")
        if jump.source == jump.destination and jump.jump_type is not JumpType.PAN:
            issues.append(
                f"{label}: self-jumps must use the 'pan' transition type"
            )
    # Reachability: every canvas other than the initial one should be the
    # destination of at least one jump, otherwise users can never see it.
    if app.initial_canvas_id in app.canvases:
        reachable = {app.initial_canvas_id}
        frontier = [app.initial_canvas_id]
        while frontier:
            current = frontier.pop()
            for jump in app.jumps_from(current):
                if jump.destination in app.canvases and jump.destination not in reachable:
                    reachable.add(jump.destination)
                    frontier.append(jump.destination)
        for canvas_id in app.canvases:
            if canvas_id not in reachable:
                issues.append(
                    f"canvas {canvas_id!r} is unreachable from the initial canvas"
                )
    return issues
