"""Viewports and canvas-space geometry.

A *canvas* in Kyrix is an arbitrarily sized worksheet; the *viewport* is the
window (typically the browser window) through which the user looks at a
canvas.  Panning moves the viewport across the canvas; a jump moves the
viewport to another canvas.  The viewport is the unit the frontend asks the
backend to fill with data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ViewportError
from ..storage.rtree import Rect


@dataclass(frozen=True)
class Viewport:
    """A rectangular window onto a canvas.

    ``x`` and ``y`` are the canvas-space coordinates of the viewport's
    top-left corner; ``width`` and ``height`` are its pixel dimensions.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ViewportError(
                f"viewport dimensions must be positive: {self.width}x{self.height}"
            )

    # -- derived geometry -----------------------------------------------------

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def to_rect(self) -> Rect:
        """The viewport as a :class:`~repro.storage.rtree.Rect`."""
        return Rect(self.x, self.y, self.x + self.width, self.y + self.height)

    def area(self) -> float:
        return self.width * self.height

    # -- movement --------------------------------------------------------------

    def panned(self, dx: float, dy: float) -> "Viewport":
        """Return a viewport moved by ``(dx, dy)`` canvas pixels."""
        return Viewport(self.x + dx, self.y + dy, self.width, self.height)

    def moved_to(self, x: float, y: float) -> "Viewport":
        """Return a viewport whose top-left corner is at ``(x, y)``."""
        return Viewport(x, y, self.width, self.height)

    def centered_at(self, cx: float, cy: float) -> "Viewport":
        """Return a viewport of the same size centred on ``(cx, cy)``."""
        return Viewport(cx - self.width / 2.0, cy - self.height / 2.0, self.width, self.height)

    def clamped_to(self, canvas_width: float, canvas_height: float) -> "Viewport":
        """Return a viewport shifted (not resized) to lie within the canvas.

        Viewports larger than the canvas are anchored at the canvas origin.
        """
        x = min(max(self.x, 0.0), max(0.0, canvas_width - self.width))
        y = min(max(self.y, 0.0), max(0.0, canvas_height - self.height))
        return Viewport(x, y, self.width, self.height)

    def within(self, canvas_width: float, canvas_height: float) -> bool:
        """True when the viewport lies entirely inside the canvas."""
        return (
            self.x >= 0
            and self.y >= 0
            and self.x + self.width <= canvas_width
            and self.y + self.height <= canvas_height
        )

    def intersects(self, other: "Viewport") -> bool:
        return self.to_rect().intersects(other.to_rect())

    def overlap_fraction(self, other: "Viewport") -> float:
        """Fraction of this viewport's area covered by ``other``."""
        overlap = self.to_rect().intersection(other.to_rect())
        if overlap is None:
            return 0.0
        return overlap.area / self.area()

    @classmethod
    def from_rect(cls, rect: Rect) -> "Viewport":
        return cls(rect.xmin, rect.ymin, rect.width, rect.height)
