"""Layers: the unit of data + placement + rendering on a canvas.

A canvas is "an arbitrary size worksheet with one or more overlaid layers".
Each layer names the data transform feeding it, whether it is *static*
(rendered once, not re-fetched on pan — e.g. a legend), how its objects are
placed on the canvas and how they are rendered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SpecError
from .placement import Placement
from .rendering import Renderer
from .transform import EMPTY_TRANSFORM_ID


@dataclass
class Layer:
    """One overlaid layer of a canvas.

    Mirrors ``new Layer("stateMapTrans", false)`` from the paper's Figure 3:
    the first argument is the transform id, the second whether the layer is
    static.
    """

    transform_id: str
    static: bool = False
    placement: Placement | None = None
    renderer: Renderer | None = None
    #: Optional human-readable name used in logs and the compiled plan.
    name: str | None = None
    #: Fetching granularity override for this layer (None = application default).
    fetching: str | None = None

    def __post_init__(self) -> None:
        if not self.transform_id:
            raise SpecError("layer requires a transform_id")

    # -- JS-style mutators from the paper's example ----------------------------------

    def addPlacement(self, placement: Placement) -> "Layer":  # noqa: N802
        """Attach a placement (JS-style alias of :meth:`add_placement`)."""
        return self.add_placement(placement)

    def add_placement(self, placement: Placement) -> "Layer":
        if not isinstance(placement, Placement):
            raise SpecError("add_placement expects a Placement instance")
        self.placement = placement
        return self

    def addRenderingFunc(self, renderer: Renderer) -> "Layer":  # noqa: N802
        """Attach a renderer (JS-style alias of :meth:`add_rendering_func`)."""
        return self.add_rendering_func(renderer)

    def add_rendering_func(self, renderer: Renderer) -> "Layer":
        if not isinstance(renderer, Renderer):
            raise SpecError("add_rendering_func expects a Renderer instance")
        self.renderer = renderer
        return self

    # -- queries -----------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the layer uses the empty transform (no data to fetch)."""
        return self.transform_id == EMPTY_TRANSFORM_ID

    @property
    def needs_placement(self) -> bool:
        """Dynamic, data-backed layers must define where objects go."""
        return not self.static and not self.is_empty

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "transform": self.transform_id,
            "static": self.static,
            "has_placement": self.placement is not None,
            "has_renderer": self.renderer is not None,
            "fetching": self.fetching,
        }
