"""Placement functions: where each data object lands on a canvas.

Section 2.1(2): "The location of each returned data object on the canvas.
This is specified using a placement function."  A placement maps one
transformed row to a bounding box in canvas coordinates.  The backend's
indexer evaluates placements during precomputation to build either the
tuple–tile mapping table or the ``bbox`` column with its spatial index.

Two styles are supported:

* :class:`ColumnPlacement` — declarative: name the columns that hold the
  object's centre (plus constant or column-driven width/height).  This is
  the *separable* case of Section 3.2.
* :class:`CallablePlacement` — arbitrary Python, for non-separable layouts
  (the paper's pie-chart example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import SpecError
from ..storage.rtree import Rect


class Placement:
    """Base class of placement strategies."""

    #: Whether the placement only reads single x/y attributes (separable).
    separable: bool = False

    def place(self, row: dict[str, Any]) -> Rect:  # pragma: no cover - overridden
        """Return the object's bounding box on the canvas."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class ColumnPlacement(Placement):
    """Place objects by reading their centre (and size) from row columns.

    ``width``/``height`` may be constants (float) or column names (str).
    Scale factors support the "simple scaling of raw data attributes" case.
    """

    x_column: str
    y_column: str
    width: float | str = 1.0
    height: float | str = 1.0
    x_scale: float = 1.0
    y_scale: float = 1.0
    x_offset: float = 0.0
    y_offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.x_column or not self.y_column:
            raise SpecError("ColumnPlacement requires x_column and y_column")
        self.separable = True

    def _dimension(self, row: dict[str, Any], spec: float | str, name: str) -> float:
        if isinstance(spec, str):
            if spec not in row:
                raise SpecError(f"placement {name} column {spec!r} missing from row")
            return float(row[spec])
        return float(spec)

    def place(self, row: dict[str, Any]) -> Rect:
        if self.x_column not in row or self.y_column not in row:
            raise SpecError(
                f"placement columns {self.x_column!r}/{self.y_column!r} missing from row"
            )
        cx = float(row[self.x_column]) * self.x_scale + self.x_offset
        cy = float(row[self.y_column]) * self.y_scale + self.y_offset
        half_w = self._dimension(row, self.width, "width") / 2.0
        half_h = self._dimension(row, self.height, "height") / 2.0
        return Rect(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    def describe(self) -> dict[str, Any]:
        return {
            "kind": "column",
            "x_column": self.x_column,
            "y_column": self.y_column,
            "width": self.width,
            "height": self.height,
            "x_scale": self.x_scale,
            "y_scale": self.y_scale,
            "separable": True,
        }


@dataclass
class CallablePlacement(Placement):
    """Place objects with an arbitrary function ``row -> (cx, cy, w, h)``.

    This covers non-separable layouts where an object's position depends on
    several attributes or on other objects (already folded into the row by
    the transform function).
    """

    func: Callable[[dict[str, Any]], tuple[float, float, float, float]]
    name: str = "custom"

    def __post_init__(self) -> None:
        if not callable(self.func):
            raise SpecError("CallablePlacement requires a callable")
        self.separable = False

    def place(self, row: dict[str, Any]) -> Rect:
        result = self.func(dict(row))
        if not isinstance(result, (tuple, list)) or len(result) != 4:
            raise SpecError(
                f"placement function {self.name!r} must return (cx, cy, w, h), "
                f"got {result!r}"
            )
        cx, cy, width, height = (float(v) for v in result)
        if width < 0 or height < 0:
            raise SpecError(
                f"placement function {self.name!r} returned negative size "
                f"({width}x{height})"
            )
        return Rect(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    def describe(self) -> dict[str, Any]:
        return {"kind": "callable", "name": self.name, "separable": False}
