"""JSON (de)serialisation of declarative application specifications.

The original Kyrix stores developer specifications as files that the
compiler reads ("Developer spec -> compile" in Figure 1).  This module
provides the equivalent round trip for the Python model: an
:class:`~repro.core.application.Application` can be exported to a plain JSON
document and rebuilt from one.

Callables (transform functions, callable placements, renderers, jump
selectors/viewport functions) cannot be serialised directly; they are
referenced *by name* through a :class:`FunctionRegistry` the caller
populates.  Declarative pieces (column placements, SQL queries, jump types,
canvas geometry) are serialised literally.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from ..config import KyrixConfig
from ..errors import SpecError
from .application import Application
from .canvas import Canvas
from .jump import Jump
from .layer import Layer
from .placement import CallablePlacement, ColumnPlacement, Placement
from .rendering import Renderer
from .transform import Transform


class FunctionRegistry:
    """Named callables referenced by serialised specifications."""

    def __init__(self) -> None:
        self._functions: dict[str, Callable] = {}
        self._renderers: dict[str, Renderer] = {}

    # -- registration -------------------------------------------------------

    def register(self, name: str, func: Callable) -> None:
        """Register a plain callable (transform func, placement, selector...)."""
        if not callable(func):
            raise SpecError(f"registry entry {name!r} must be callable")
        self._functions[name] = func

    def register_renderer(self, name: str, renderer: Renderer) -> None:
        if not isinstance(renderer, Renderer):
            raise SpecError(f"registry entry {name!r} must be a Renderer")
        self._renderers[name] = renderer

    # -- lookup --------------------------------------------------------------

    def function(self, name: str) -> Callable:
        if name not in self._functions:
            raise SpecError(f"no function registered under {name!r}")
        return self._functions[name]

    def renderer(self, name: str) -> Renderer:
        if name not in self._renderers:
            raise SpecError(f"no renderer registered under {name!r}")
        return self._renderers[name]

    def name_of(self, func: Callable) -> str | None:
        """Reverse lookup of a registered callable (None when unregistered)."""
        for name, registered in self._functions.items():
            if registered is func:
                return name
        return None

    def name_of_renderer(self, renderer: Renderer) -> str | None:
        for name, registered in self._renderers.items():
            if registered is renderer:
                return name
        return None


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


def application_to_dict(app: Application, registry: FunctionRegistry | None = None) -> dict[str, Any]:
    """Serialise an application to a JSON-compatible dictionary.

    Callables that are not present in ``registry`` are exported as ``null``
    references; importing such a spec requires re-attaching them manually.
    """
    registry = registry or FunctionRegistry()
    return {
        "name": app.name,
        "config": app.config.to_dict(),
        "initial_canvas": app.initial_canvas_id,
        "initial_viewport": [app.initial_viewport_x, app.initial_viewport_y],
        "canvases": [
            _canvas_to_dict(canvas, registry) for canvas in app.canvases.values()
        ],
        "jumps": [_jump_to_dict(jump, registry) for jump in app.jumps],
    }


def application_to_json(app: Application, registry: FunctionRegistry | None = None) -> str:
    return json.dumps(application_to_dict(app, registry), indent=2, sort_keys=True)


def _canvas_to_dict(canvas: Canvas, registry: FunctionRegistry) -> dict[str, Any]:
    return {
        "id": canvas.canvas_id,
        "width": canvas.width,
        "height": canvas.height,
        "zoom_level": canvas.zoom_level,
        "transforms": [
            {
                "id": transform.transform_id,
                "query": transform.query,
                "columns": list(transform.columns),
                "separable": transform.separable,
                "x_column": transform.x_column,
                "y_column": transform.y_column,
                "x_scale": transform.x_scale,
                "y_scale": transform.y_scale,
                "transform_func": (
                    registry.name_of(transform.transform_func)
                    if transform.transform_func is not None
                    else None
                ),
            }
            for transform in canvas.transforms.values()
        ],
        "layers": [_layer_to_dict(layer, registry) for layer in canvas.layers],
    }


def _layer_to_dict(layer: Layer, registry: FunctionRegistry) -> dict[str, Any]:
    return {
        "name": layer.name,
        "transform": layer.transform_id,
        "static": layer.static,
        "fetching": layer.fetching,
        "placement": _placement_to_dict(layer.placement, registry),
        "renderer": (
            registry.name_of_renderer(layer.renderer) if layer.renderer else None
        ),
    }


def _placement_to_dict(placement: Placement | None, registry: FunctionRegistry) -> dict[str, Any] | None:
    if placement is None:
        return None
    if isinstance(placement, ColumnPlacement):
        return {
            "kind": "column",
            "x_column": placement.x_column,
            "y_column": placement.y_column,
            "width": placement.width,
            "height": placement.height,
            "x_scale": placement.x_scale,
            "y_scale": placement.y_scale,
            "x_offset": placement.x_offset,
            "y_offset": placement.y_offset,
        }
    if isinstance(placement, CallablePlacement):
        return {"kind": "callable", "function": registry.name_of(placement.func)}
    raise SpecError(f"cannot serialise placement of type {type(placement).__name__}")


def _jump_to_dict(jump: Jump, registry: FunctionRegistry) -> dict[str, Any]:
    return {
        "source": jump.source,
        "destination": jump.destination,
        "type": jump.jump_type.value,
        "selector": registry.name_of(jump.selector),
        "new_viewport": (
            registry.name_of(jump.new_viewport) if jump.new_viewport else None
        ),
        "name": registry.name_of(jump.name),
    }


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------


def application_from_dict(data: dict[str, Any], registry: FunctionRegistry | None = None) -> Application:
    """Rebuild an application from :func:`application_to_dict` output."""
    registry = registry or FunctionRegistry()
    config = KyrixConfig.from_dict(data.get("config", {}))
    app = Application(name=data["name"], config=config)

    for canvas_data in data.get("canvases", []):
        canvas = Canvas(
            canvas_id=canvas_data["id"],
            width=canvas_data["width"],
            height=canvas_data["height"],
            zoom_level=canvas_data.get("zoom_level", 1.0),
        )
        for transform_data in canvas_data.get("transforms", []):
            func_name = transform_data.get("transform_func")
            canvas.add_transform(
                Transform(
                    transform_id=transform_data["id"],
                    query=transform_data.get("query", ""),
                    columns=tuple(transform_data.get("columns", ())),
                    separable=transform_data.get("separable", False),
                    x_column=transform_data.get("x_column"),
                    y_column=transform_data.get("y_column"),
                    x_scale=transform_data.get("x_scale", 1.0),
                    y_scale=transform_data.get("y_scale", 1.0),
                    transform_func=registry.function(func_name) if func_name else None,
                )
            )
        for layer_data in canvas_data.get("layers", []):
            layer = Layer(
                transform_id=layer_data["transform"],
                static=layer_data.get("static", False),
                name=layer_data.get("name"),
                fetching=layer_data.get("fetching"),
            )
            placement = _placement_from_dict(layer_data.get("placement"), registry)
            if placement is not None:
                layer.add_placement(placement)
            renderer_name = layer_data.get("renderer")
            if renderer_name:
                layer.add_rendering_func(registry.renderer(renderer_name))
            canvas.add_layer(layer)
        app.add_canvas(canvas)

    for jump_data in data.get("jumps", []):
        kwargs: dict[str, Any] = {}
        if jump_data.get("selector"):
            kwargs["selector"] = registry.function(jump_data["selector"])
        if jump_data.get("new_viewport"):
            kwargs["new_viewport"] = registry.function(jump_data["new_viewport"])
        if jump_data.get("name"):
            kwargs["name"] = registry.function(jump_data["name"])
        app.add_jump(
            Jump(
                source=jump_data["source"],
                destination=jump_data["destination"],
                jump_type=jump_data.get("type", "semantic_zoom"),
                **kwargs,
            )
        )

    initial = data.get("initial_canvas")
    if initial:
        viewport = data.get("initial_viewport", [0.0, 0.0])
        app.set_initial_canvas(initial, viewport[0], viewport[1])
    return app


def application_from_json(text: str, registry: FunctionRegistry | None = None) -> Application:
    return application_from_dict(json.loads(text), registry)


def _placement_from_dict(data: dict[str, Any] | None, registry: FunctionRegistry) -> Placement | None:
    if data is None:
        return None
    if data.get("kind") == "column":
        return ColumnPlacement(
            x_column=data["x_column"],
            y_column=data["y_column"],
            width=data.get("width", 1.0),
            height=data.get("height", 1.0),
            x_scale=data.get("x_scale", 1.0),
            y_scale=data.get("y_scale", 1.0),
            x_offset=data.get("x_offset", 0.0),
            y_offset=data.get("y_offset", 0.0),
        )
    if data.get("kind") == "callable":
        function_name = data.get("function")
        if not function_name:
            raise SpecError("callable placement in spec has no registered function name")
        return CallablePlacement(func=registry.function(function_name), name=function_name)
    raise SpecError(f"unknown placement kind {data.get('kind')!r}")
