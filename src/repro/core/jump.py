"""Jumps: customised transitions between canvases.

"A jump transition can be established simply by specifying a from canvas, a
to canvas and a transition type (right now it can be geometric zoom, semantic
zoom or both)."  Jumps can further be customised with a *selector* (which
objects on the source canvas trigger the jump), a *new-viewport* function
(where the destination viewport lands, as a function of the clicked object's
row) and a *name* function (the label shown to the user).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SpecError


class JumpType(enum.Enum):
    """The transition types supported by the declarative language."""

    PAN = "pan"
    GEOMETRIC_ZOOM = "geometric_zoom"
    SEMANTIC_ZOOM = "semantic_zoom"
    GEOMETRIC_SEMANTIC_ZOOM = "geometric_semantic_zoom"

    @classmethod
    def parse(cls, name: "str | JumpType") -> "JumpType":
        if isinstance(name, JumpType):
            return name
        normalized = name.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise SpecError(f"unknown jump type: {name!r}")


#: Selector: (row, layer_id) -> bool — which objects can trigger the jump.
SelectorFunc = Callable[[dict[str, Any], int], bool]

#: New-viewport: row -> (x, y) or (canvas_offset, x, y) — destination viewport
#: top-left (the paper's example returns a 3-element list whose first item is
#: reserved; both forms are accepted).
NewViewportFunc = Callable[[dict[str, Any]], tuple[float, ...]]

#: Name: row -> str — the label of the jump option ("County map of Texas").
NameFunc = Callable[[dict[str, Any]], str]


def _default_selector(row: dict[str, Any], layer_id: int) -> bool:
    return True


def _default_name(row: dict[str, Any]) -> str:
    return ""


@dataclass
class Jump:
    """A transition from ``source`` canvas to ``destination`` canvas.

    Mirrors ``new Jump("statemap", "countymap", "geometric_semantic_zoom",
    selector, newViewport, jumpName)`` from Figure 3.
    """

    source: str
    destination: str
    jump_type: JumpType | str = JumpType.SEMANTIC_ZOOM
    selector: SelectorFunc = _default_selector
    new_viewport: NewViewportFunc | None = None
    name: NameFunc = _default_name

    def __post_init__(self) -> None:
        if not self.source or not self.destination:
            raise SpecError("jump requires both a source and a destination canvas")
        self.jump_type = JumpType.parse(self.jump_type)
        if not callable(self.selector):
            raise SpecError("jump selector must be callable")
        if self.new_viewport is not None and not callable(self.new_viewport):
            raise SpecError("jump new_viewport must be callable")
        if not callable(self.name):
            raise SpecError("jump name must be callable")

    # -- runtime helpers used by the frontend -------------------------------------

    def triggered_by(self, row: dict[str, Any], layer_id: int) -> bool:
        """True when clicking ``row`` on layer ``layer_id`` can take this jump."""
        return bool(self.selector(dict(row), layer_id))

    def destination_viewport_center(self, row: dict[str, Any]) -> tuple[float, float] | None:
        """Compute the destination viewport centre for a clicked object.

        Returns None when the jump does not customise the viewport (the
        frontend then centres on the destination canvas' midpoint).
        """
        if self.new_viewport is None:
            return None
        result = self.new_viewport(dict(row))
        if not isinstance(result, (tuple, list)) or len(result) not in (2, 3):
            raise SpecError(
                f"jump {self.source}->{self.destination}: new_viewport must return "
                f"(x, y) or (_, x, y), got {result!r}"
            )
        if len(result) == 3:
            _, x, y = result
        else:
            x, y = result
        return float(x), float(y)

    def label_for(self, row: dict[str, Any]) -> str:
        """The user-facing label of this jump for a clicked object."""
        return str(self.name(dict(row)))

    @property
    def changes_canvas(self) -> bool:
        return self.source != self.destination

    def describe(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "destination": self.destination,
            "type": self.jump_type.value,
            "has_selector": self.selector is not _default_selector,
            "has_new_viewport": self.new_viewport is not None,
        }
