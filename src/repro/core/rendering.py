"""Rendering functions: canvas objects to pixels.

Section 2.1(3): "A rendering function that converts a canvas object to
pixels on the screen."  In the original system these are D3 snippets run in
the browser; here a rendering function is a Python callable invoked by the
frontend's raster renderer (:mod:`repro.client.renderer`) for every fetched
object.  A small library of ready-made renderers (dots, rectangles,
choropleth polygons approximated by their bounding boxes, text labels) is
provided so examples don't have to hand-roll pixel math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SpecError

#: A render instruction understood by the frontend raster renderer.
#: ``kind`` is one of "dot", "rect", "label"; coordinates are canvas-space.
RenderPrimitive = dict[str, Any]

#: Signature of a rendering function: one object row -> list of primitives.
RenderingFunc = Callable[[dict[str, Any]], list[RenderPrimitive]]


@dataclass
class Renderer:
    """A named rendering function."""

    name: str
    func: RenderingFunc

    def __post_init__(self) -> None:
        if not callable(self.func):
            raise SpecError(f"renderer {self.name!r} requires a callable")

    def render(self, row: dict[str, Any]) -> list[RenderPrimitive]:
        primitives = self.func(dict(row))
        if not isinstance(primitives, list):
            raise SpecError(
                f"renderer {self.name!r} must return a list of primitives, "
                f"got {type(primitives).__name__}"
            )
        return primitives


# ---------------------------------------------------------------------------
# Built-in renderers
# ---------------------------------------------------------------------------


def dot_renderer(
    x_column: str = "x",
    y_column: str = "y",
    radius: float = 1.0,
    intensity: float = 1.0,
) -> Renderer:
    """Render each object as a dot at ``(row[x_column], row[y_column])``."""

    def _render(row: dict[str, Any]) -> list[RenderPrimitive]:
        return [
            {
                "kind": "dot",
                "x": float(row[x_column]),
                "y": float(row[y_column]),
                "radius": radius,
                "intensity": intensity,
            }
        ]

    return Renderer(name=f"dot({x_column},{y_column})", func=_render)


def rect_renderer(
    x_column: str = "x",
    y_column: str = "y",
    width_column: str | None = None,
    height_column: str | None = None,
    width: float = 10.0,
    height: float = 10.0,
    intensity_column: str | None = None,
) -> Renderer:
    """Render each object as an axis-aligned rectangle centred on its x/y."""

    def _render(row: dict[str, Any]) -> list[RenderPrimitive]:
        w = float(row[width_column]) if width_column else width
        h = float(row[height_column]) if height_column else height
        intensity = float(row[intensity_column]) if intensity_column else 1.0
        return [
            {
                "kind": "rect",
                "x": float(row[x_column]),
                "y": float(row[y_column]),
                "width": w,
                "height": h,
                "intensity": intensity,
            }
        ]

    return Renderer(name="rect", func=_render)


def choropleth_renderer(
    x_column: str = "x",
    y_column: str = "y",
    width_column: str = "width",
    height_column: str = "height",
    value_column: str = "rate",
    value_range: tuple[float, float] = (0.0, 1.0),
) -> Renderer:
    """Render regions (states / counties) as filled rectangles whose
    intensity encodes ``value_column`` — the crime-rate map of Figure 2."""

    low, high = value_range
    span = (high - low) or 1.0

    def _render(row: dict[str, Any]) -> list[RenderPrimitive]:
        value = float(row.get(value_column, low))
        intensity = min(1.0, max(0.0, (value - low) / span))
        return [
            {
                "kind": "rect",
                "x": float(row[x_column]),
                "y": float(row[y_column]),
                "width": float(row[width_column]),
                "height": float(row[height_column]),
                "intensity": intensity,
            },
            {
                "kind": "label",
                "x": float(row[x_column]),
                "y": float(row[y_column]),
                "text": str(row.get("name", "")),
            },
        ]

    return Renderer(name="choropleth", func=_render)


def legend_renderer(text: str = "legend") -> Renderer:
    """A static legend box pinned to the viewport's top-right corner.

    The frontend treats primitives with ``viewport_anchored=True`` as screen
    space rather than canvas space, which is what static layers need.
    """

    def _render(row: dict[str, Any]) -> list[RenderPrimitive]:
        return [
            {
                "kind": "label",
                "x": 0.0,
                "y": 0.0,
                "text": text,
                "viewport_anchored": True,
            }
        ]

    return Renderer(name=f"legend({text})", func=_render)


def line_renderer(
    x_column: str = "t",
    y_column: str = "value",
    intensity: float = 1.0,
) -> Renderer:
    """Render time-series samples (EEG traces) as short vertical ticks."""

    def _render(row: dict[str, Any]) -> list[RenderPrimitive]:
        return [
            {
                "kind": "dot",
                "x": float(row[x_column]),
                "y": float(row[y_column]),
                "radius": 0.5,
                "intensity": intensity,
            }
        ]

    return Renderer(name="line", func=_render)
