"""Data transforms: the "data needed for the layer".

The paper (Section 2.1) specifies a layer's data as "a SQL query to a DBMS
along with a transform function postprocessing the query result".  A
:class:`Transform` bundles exactly that: a mini-SQL query, an optional
post-processing callable, and the names of the columns it produces.

Transforms can also be flagged *separable* (Section 3.2): when the x/y
placement of an object is directly a raw data attribute (or a simple scaling
of one), the backend can skip placement precomputation and query the raw
table's spatial index directly.  ``x_column`` / ``y_column`` and the optional
scale factors describe that case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SpecError

#: Signature of a post-processing function: one input row dict -> output row dict.
TransformFunc = Callable[[dict[str, Any]], dict[str, Any]]

#: The identity transform used by empty/legend layers.
EMPTY_TRANSFORM_ID = "empty"


@dataclass
class Transform:
    """A named data transform feeding one or more layers.

    Parameters
    ----------
    transform_id:
        Identifier referenced by layers (``Layer("stateMapTrans", ...)``).
    query:
        A mini-SQL SELECT against the application's database.  Empty for
        static layers that render without data (e.g. legends).
    transform_func:
        Optional Python callable applied to every query-result row.  The
        Kyrix paper lets developers express this with D3/Vega; here any
        ``dict -> dict`` callable works.
    columns:
        Names of the columns produced after post-processing.  When empty,
        the query's output columns are used as-is.
    separable:
        True when object placement is a direct (possibly scaled) copy of raw
        data attributes, letting the backend skip placement precomputation.
    x_column / y_column:
        The raw attributes holding the x / y placement for separable
        transforms.
    x_scale / y_scale:
        Constant factors applied to ``x_column`` / ``y_column`` for the
        "simple scaling of raw data attributes" separable case.
    """

    transform_id: str
    query: str = ""
    transform_func: TransformFunc | None = None
    columns: tuple[str, ...] = ()
    separable: bool = False
    x_column: str | None = None
    y_column: str | None = None
    x_scale: float = 1.0
    y_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.transform_id:
            raise SpecError("transform_id must be non-empty")
        if self.separable and (not self.x_column or not self.y_column):
            raise SpecError(
                f"transform {self.transform_id!r}: separable transforms must name "
                "x_column and y_column"
            )
        self.columns = tuple(self.columns)

    @property
    def is_empty(self) -> bool:
        """True for the data-less transform used by static legend layers."""
        return not self.query

    def apply(self, row: dict[str, Any]) -> dict[str, Any]:
        """Run the post-processing function on one row (identity if none)."""
        if self.transform_func is None:
            return dict(row)
        result = self.transform_func(dict(row))
        if not isinstance(result, dict):
            raise SpecError(
                f"transform {self.transform_id!r}: transform_func must return a dict, "
                f"got {type(result).__name__}"
            )
        return result

    @classmethod
    def empty(cls) -> "Transform":
        """The canonical empty transform (``transforms.emptyTransform``)."""
        return cls(transform_id=EMPTY_TRANSFORM_ID, query="")

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary (callables are reported by name only)."""
        return {
            "id": self.transform_id,
            "query": self.query,
            "has_transform_func": self.transform_func is not None,
            "columns": list(self.columns),
            "separable": self.separable,
            "x_column": self.x_column,
            "y_column": self.y_column,
        }
