"""The Kyrix declarative model.

This package implements the paper's two basic abstractions — *canvas* and
*jump* — plus the pieces a layer is specified with: a data *transform* (SQL
query + post-processing function), a *placement* function and a *rendering*
function.  An :class:`~repro.core.application.Application` ties them
together, and the JS-flavoured aliases (``App``, ``addCanvas``, ``addJump``,
``initialCanvas`` ...) let the examples read like the paper's Figure 3.
"""

from .application import App, Application
from .canvas import Canvas
from .spec import (
    FunctionRegistry,
    application_from_dict,
    application_from_json,
    application_to_dict,
    application_to_json,
)
from .jump import Jump, JumpType
from .layer import Layer
from .placement import CallablePlacement, ColumnPlacement, Placement
from .rendering import (
    Renderer,
    choropleth_renderer,
    dot_renderer,
    legend_renderer,
    line_renderer,
    rect_renderer,
)
from .transform import EMPTY_TRANSFORM_ID, Transform
from .viewport import Viewport

__all__ = [
    "App",
    "Application",
    "FunctionRegistry",
    "application_from_dict",
    "application_from_json",
    "application_to_dict",
    "application_to_json",
    "CallablePlacement",
    "Canvas",
    "ColumnPlacement",
    "EMPTY_TRANSFORM_ID",
    "Jump",
    "JumpType",
    "Layer",
    "Placement",
    "Renderer",
    "Transform",
    "Viewport",
    "choropleth_renderer",
    "dot_renderer",
    "legend_renderer",
    "line_renderer",
    "rect_renderer",
]
