"""Canvases: arbitrarily sized worksheets made of overlaid layers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SpecError
from .layer import Layer
from .transform import Transform


@dataclass
class Canvas:
    """A single static view of the application.

    Mirrors ``new Canvas("statemap")`` plus the width/height the Kyrix
    compiler attaches; transforms are registered per-canvas
    (``canvas.addTransform(...)``) and referenced by layers.
    """

    canvas_id: str
    width: float = 1_000_000.0
    height: float = 100_000.0
    layers: list[Layer] = field(default_factory=list)
    transforms: dict[str, Transform] = field(default_factory=dict)
    #: Zoom factor relative to the application's top canvas (1 = overview).
    zoom_level: float = 1.0

    def __post_init__(self) -> None:
        if not self.canvas_id:
            raise SpecError("canvas_id must be non-empty")
        if self.width <= 0 or self.height <= 0:
            raise SpecError(
                f"canvas {self.canvas_id!r}: dimensions must be positive "
                f"({self.width}x{self.height})"
            )

    # -- JS-style mutators ------------------------------------------------------

    def addTransform(self, transform: Transform) -> "Canvas":  # noqa: N802
        """Register a transform (JS-style alias of :meth:`add_transform`)."""
        return self.add_transform(transform)

    def add_transform(self, transform: Transform) -> "Canvas":
        if transform.transform_id in self.transforms:
            raise SpecError(
                f"canvas {self.canvas_id!r}: duplicate transform "
                f"{transform.transform_id!r}"
            )
        self.transforms[transform.transform_id] = transform
        return self

    def addLayer(self, layer: Layer) -> "Canvas":  # noqa: N802
        """Append a layer (JS-style alias of :meth:`add_layer`)."""
        return self.add_layer(layer)

    def add_layer(self, layer: Layer) -> "Canvas":
        if layer.name is None:
            layer.name = f"{self.canvas_id}_layer{len(self.layers)}"
        self.layers.append(layer)
        return self

    # -- queries --------------------------------------------------------------------

    def layer(self, index: int) -> Layer:
        if index < 0 or index >= len(self.layers):
            raise SpecError(
                f"canvas {self.canvas_id!r} has no layer {index} "
                f"(it has {len(self.layers)})"
            )
        return self.layers[index]

    def transform_for(self, layer: Layer) -> Transform:
        """Resolve a layer's transform, falling back to the empty transform."""
        if layer.transform_id in self.transforms:
            return self.transforms[layer.transform_id]
        if layer.is_empty:
            return Transform.empty()
        raise SpecError(
            f"canvas {self.canvas_id!r}: layer references unknown transform "
            f"{layer.transform_id!r}"
        )

    @property
    def dynamic_layers(self) -> list[tuple[int, Layer]]:
        """The (index, layer) pairs that need data fetched on pan."""
        return [
            (index, layer)
            for index, layer in enumerate(self.layers)
            if not layer.static and not layer.is_empty
        ]

    def describe(self) -> dict[str, Any]:
        return {
            "id": self.canvas_id,
            "width": self.width,
            "height": self.height,
            "zoom_level": self.zoom_level,
            "layers": [layer.describe() for layer in self.layers],
            "transforms": {tid: t.describe() for tid, t in self.transforms.items()},
        }
