"""The application object: the root of a Kyrix declarative specification.

Mirrors the paper's ``var app = new App("usmap", "config.txt")`` — an
application owns its canvases, jumps, the initial canvas/viewport, and the
configuration naming the backing database and performance knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import KyrixConfig
from ..errors import SpecError
from .canvas import Canvas
from .jump import Jump
from .viewport import Viewport


@dataclass
class Application:
    """A complete declarative specification of a Kyrix application."""

    name: str
    config: KyrixConfig = field(default_factory=KyrixConfig)
    canvases: dict[str, Canvas] = field(default_factory=dict)
    jumps: list[Jump] = field(default_factory=list)
    initial_canvas_id: str | None = None
    initial_viewport_x: float = 0.0
    initial_viewport_y: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("application name must be non-empty")
        self.config.app_name = self.name

    # -- JS-style builder API (Figure 3) -------------------------------------------

    def addCanvas(self, canvas: Canvas) -> "Application":  # noqa: N802
        """Register a canvas (JS-style alias of :meth:`add_canvas`)."""
        return self.add_canvas(canvas)

    def add_canvas(self, canvas: Canvas) -> "Application":
        if canvas.canvas_id in self.canvases:
            raise SpecError(f"duplicate canvas id {canvas.canvas_id!r}")
        self.canvases[canvas.canvas_id] = canvas
        return self

    def addJump(self, jump: Jump) -> "Application":  # noqa: N802
        """Register a jump (JS-style alias of :meth:`add_jump`)."""
        return self.add_jump(jump)

    def add_jump(self, jump: Jump) -> "Application":
        self.jumps.append(jump)
        return self

    def initialCanvas(  # noqa: N802
        self, canvas_id: str, viewport_x: float = 0.0, viewport_y: float = 0.0
    ) -> "Application":
        """Set the initial canvas and viewport (JS-style alias)."""
        return self.set_initial_canvas(canvas_id, viewport_x, viewport_y)

    def set_initial_canvas(
        self, canvas_id: str, viewport_x: float = 0.0, viewport_y: float = 0.0
    ) -> "Application":
        self.initial_canvas_id = canvas_id
        self.initial_viewport_x = viewport_x
        self.initial_viewport_y = viewport_y
        return self

    # -- queries -------------------------------------------------------------------------

    def canvas(self, canvas_id: str) -> Canvas:
        if canvas_id not in self.canvases:
            raise SpecError(f"application {self.name!r} has no canvas {canvas_id!r}")
        return self.canvases[canvas_id]

    def jumps_from(self, canvas_id: str) -> list[Jump]:
        """Jumps whose source is ``canvas_id``."""
        return [jump for jump in self.jumps if jump.source == canvas_id]

    def jumps_to(self, canvas_id: str) -> list[Jump]:
        return [jump for jump in self.jumps if jump.destination == canvas_id]

    def initial_viewport(self) -> Viewport:
        """The initial viewport (sized from the configuration)."""
        if self.initial_canvas_id is None:
            raise SpecError("initial canvas has not been set")
        return Viewport(
            self.initial_viewport_x,
            self.initial_viewport_y,
            self.config.viewport_width,
            self.config.viewport_height,
        )

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly summary of the whole specification."""
        return {
            "name": self.name,
            "initial_canvas": self.initial_canvas_id,
            "initial_viewport": [self.initial_viewport_x, self.initial_viewport_y],
            "canvases": {cid: canvas.describe() for cid, canvas in self.canvases.items()},
            "jumps": [jump.describe() for jump in self.jumps],
        }


#: JS-flavoured alias so examples can read like the paper's Figure 3.
App = Application
