"""Global configuration objects for the Kyrix reproduction.

The original Kyrix reads a ``config.txt`` file naming the backing DBMS and
the web-server ports.  Here the equivalent is :class:`KyrixConfig`, a plain
dataclass that applications pass to :class:`repro.core.application.Application`.
It bundles the storage-engine configuration, the simulated network link
parameters and the interactivity budget (the paper's 500 ms goal).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from .errors import KyrixError

#: The interactivity budget the paper targets for every interaction (ms).
INTERACTIVITY_BUDGET_MS = 500.0


@dataclass
class StorageConfig:
    """Configuration of the embedded storage engine.

    Attributes
    ----------
    page_size:
        Size of a heap-file page in bytes.  Records never span pages, so the
        page size bounds the maximum record size.
    buffer_pool_pages:
        Number of pages the buffer pool keeps in memory before evicting.
    simulate_io:
        When true, the pager charges ``page_read_ms`` / ``page_write_ms`` of
        simulated latency for every page miss, emulating a disk-backed DBMS.
    page_read_ms / page_write_ms:
        Simulated latency per page read / write miss, in milliseconds.
    """

    page_size: int = 8192
    buffer_pool_pages: int = 1024
    simulate_io: bool = False
    page_read_ms: float = 0.05
    page_write_ms: float = 0.08

    def validate(self) -> None:
        if self.page_size < 512:
            raise KyrixError(f"page_size must be >= 512 bytes, got {self.page_size}")
        if self.buffer_pool_pages < 8:
            raise KyrixError(
                f"buffer_pool_pages must be >= 8, got {self.buffer_pool_pages}"
            )
        if self.page_read_ms < 0 or self.page_write_ms < 0:
            raise KyrixError("simulated I/O latencies must be non-negative")


@dataclass
class NetworkConfig:
    """Parameters of the simulated frontend <-> backend link.

    The paper's experiments ran the browser and the backend on the same EC2
    instance, so the defaults model a fast local link.  The per-request
    round-trip time is the term that penalises fetching schemes that issue
    many small requests (e.g. 256-pixel tiles); the bandwidth term penalises
    schemes that transfer a lot of data (e.g. 4096-pixel tiles).
    """

    rtt_ms: float = 2.0
    bandwidth_mbps: float = 1000.0
    per_object_bytes: int = 64
    request_overhead_bytes: int = 256
    simulate_delay: bool = False

    def validate(self) -> None:
        if self.rtt_ms < 0:
            raise KyrixError("rtt_ms must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise KyrixError("bandwidth_mbps must be positive")
        if self.per_object_bytes <= 0:
            raise KyrixError("per_object_bytes must be positive")


@dataclass
class CacheConfig:
    """Sizes of the backend and frontend caches (number of cached responses)."""

    backend_entries: int = 256
    frontend_entries: int = 64
    enabled: bool = True

    def validate(self) -> None:
        if self.backend_entries < 0 or self.frontend_entries < 0:
            raise KyrixError("cache sizes must be non-negative")


@dataclass
class PrefetchConfig:
    """Configuration of the momentum-based prefetcher (Section 4)."""

    enabled: bool = False
    strategy: str = "momentum"
    lookahead_steps: int = 1
    history_window: int = 4

    def validate(self) -> None:
        if self.strategy not in ("momentum", "semantic", "none"):
            raise KyrixError(f"unknown prefetch strategy: {self.strategy!r}")
        if self.lookahead_steps < 0:
            raise KyrixError("lookahead_steps must be non-negative")
        if self.history_window < 1:
            raise KyrixError("history_window must be >= 1")


#: The replica selection policies a cluster's replica sets understand
#: (:class:`~repro.serving.replica.ReplicaService` re-exports this).
REPLICA_POLICIES = ("round_robin", "least_inflight", "per_key_affinity")


@dataclass
class AutopilotConfig:
    """Configuration of the self-driving control loop (:mod:`repro.cluster.autopilot`).

    Attributes
    ----------
    enabled:
        When true, :func:`repro.cluster.builder.build_cluster` attaches a
        running :class:`~repro.cluster.autopilot.ClusterAutopilot` to the
        built cluster: a background daemon thread that periodically
        snapshots load skew and replica health, triggers online rebalances,
        autoscales the shard and replica counts, and read-repairs divergent
        replicas.  Off by default — nothing moves unless asked to.
    interval_s:
        Seconds between control-loop ticks (wall-clock, for the background
        thread; tests drive :meth:`~repro.cluster.autopilot.ClusterAutopilot.tick`
        directly on a :class:`~repro.metrics.timer.VirtualClock`).
    cooldown_s:
        Minimum clock time between two autopilot *migrations* (rebalance,
        grow, shrink, replica re-scale).  Damping: however noisy the load
        signal, topology changes cannot happen more often than this.
    hysteresis:
        Re-arm band below the skew threshold.  After a skew-triggered
        migration the loop is *disarmed* and stays disarmed until observed
        skew falls below ``rebalance_skew_threshold - hysteresis`` — a
        hotspot oscillating right at the threshold therefore produces at
        most one migration per cooldown window instead of thrashing.
    rearm_windows:
        Persistent-skew escape hatch for the hysteresis disarm: when skew
        *never* leaves the trigger band (the previous migration did not
        fix it, e.g. it split on a stale load histogram), the loop re-arms
        anyway after this many cooldown windows and retries with fresher
        load data.  Without it a single bad split would disarm the
        autopilot forever; with it, retries still pace at a multiple of
        the cooldown, so the thrash bound holds.
    min_shards / max_shards:
        Bounds of the shard-count autoscaler (grow doubles, shrink halves,
        always clamped into ``[min_shards, max_shards]``).
    grow_requests:
        Scatter-gathers per tick above which traffic counts as sustained
        load and the shard count grows (2→4→8 under a heavy workload).
    shrink_idle_ticks:
        Consecutive idle ticks (fewer than ``shrink_requests`` scatters
        each) after which the shard count shrinks toward ``min_shards``.
    shrink_requests:
        Scatter-gathers per tick at or below which a tick counts as idle.
    replica_pressure:
        Mean per-replica attempts per tick above which every shard gains a
        replica (capped at ``max_replicas``); an idle shrink drops the
        replica count back toward 1.
    max_replicas:
        Upper bound of the replica autoscaler.
    read_repair:
        When true, a tick that finds
        :meth:`~repro.cluster.router.ClusterStats.divergent_replicas`
        non-empty rebuilds each flagged replica from a fresh
        :class:`~repro.serving.worker.ShardSpec` and swaps it in behind
        its circuit breaker without dropping in-flight requests.
    """

    enabled: bool = False
    interval_s: float = 5.0
    cooldown_s: float = 30.0
    hysteresis: float = 0.25
    rearm_windows: int = 2
    min_shards: int = 1
    max_shards: int = 8
    grow_requests: int = 256
    shrink_idle_ticks: int = 3
    shrink_requests: int = 8
    replica_pressure: int = 128
    max_replicas: int = 4
    read_repair: bool = True

    def validate(self) -> None:
        if self.interval_s <= 0:
            raise KyrixError("autopilot interval_s must be positive")
        if self.cooldown_s < 0:
            raise KyrixError("autopilot cooldown_s must be non-negative")
        if self.hysteresis < 0:
            raise KyrixError("autopilot hysteresis must be non-negative")
        if self.rearm_windows < 1:
            raise KyrixError("autopilot rearm_windows must be >= 1")
        if self.min_shards < 1:
            raise KyrixError(
                f"autopilot min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise KyrixError(
                "autopilot max_shards must be >= min_shards, got "
                f"{self.max_shards} < {self.min_shards}"
            )
        if self.grow_requests < 1:
            raise KyrixError("autopilot grow_requests must be >= 1")
        if self.shrink_idle_ticks < 1:
            raise KyrixError("autopilot shrink_idle_ticks must be >= 1")
        if self.shrink_requests < 0:
            raise KyrixError("autopilot shrink_requests must be non-negative")
        if self.shrink_requests >= self.grow_requests:
            raise KyrixError(
                "autopilot shrink_requests must be below grow_requests "
                f"(got {self.shrink_requests} >= {self.grow_requests})"
            )
        if self.replica_pressure < 1:
            raise KyrixError("autopilot replica_pressure must be >= 1")
        if self.max_replicas < 1:
            raise KyrixError("autopilot max_replicas must be >= 1")

#: How shard replicas execute: ``"threads"`` keeps every shard engine in
#: the router's process behind a lock; ``"processes"`` forks one worker
#: process per shard replica speaking the wire envelope over localhost TCP
#: (:mod:`repro.serving.worker`), removing the GIL from the scatter path.
WORKER_MODES = ("threads", "processes")

#: What the shard-boundary ``handle`` hot path speaks on the wire:
#: ``"auto"`` prefers the :mod:`repro.net.columnar` binary codec and falls
#: back to the JSON envelope when the peer cannot negotiate it, ``"json"``
#: pins the legacy JSON envelope (byte-identical to pre-codec deployments),
#: ``"binary"`` requires the binary codec and refuses JSON ``handle`` calls.
WIRE_CODECS = ("auto", "json", "binary")


@dataclass
class ClusterConfig:
    """Configuration of the sharded serving cluster (:mod:`repro.cluster`).

    Attributes
    ----------
    enabled:
        When true, :func:`repro.bench.apps.build_dots_backend` (and the
        stack builders layered on it) additionally shard the precomputed
        backend and expose a :class:`~repro.cluster.router.ClusterRouter`
        as the stack's ``serving`` endpoint.
    shard_count:
        Number of shard backends each canvas is partitioned across.
    strategy:
        Spatial partitioning strategy: ``"grid"`` (uniform grid of shard
        regions) or ``"kd"`` (balanced KD splits driven by the observed
        object-density statistics).
    coalescing:
        When true, identical in-flight requests from concurrent sessions are
        coalesced behind one backend scatter-gather.
    router_cache_entries:
        Size of the router's shared response cache (0 disables it).
    kd_sample_limit:
        Maximum number of object centres sampled per canvas when the KD
        strategy measures the spatial distribution.
    parallel_shards:
        When true, multi-shard scatter-gathers execute their shard queries
        on a thread pool instead of sequentially, so measured wall-clock
        matches the modelled critical path.  Gathered responses are
        byte-identical to the sequential path (shard results are merged in
        shard-id order either way).
    max_parallel_shards:
        Size of the scatter-gather thread pool; 0 means one worker per
        shard.
    wire_shards:
        When true, every shard call crosses a wire-level transport
        (``encode -> decode -> handle -> encode -> decode`` through
        :mod:`repro.net.protocol`), so shard conversations are exactly what
        a multi-node deployment would put on the network.
    replicas:
        Number of interchangeable replicas serving each shard.  With more
        than one, the cluster builder fronts every shard with a
        :class:`~repro.serving.replica.ReplicaService` that load-balances,
        circuit-breaks and fails over across the replicas; ``1`` keeps the
        single-copy serving stack.
    replica_policy:
        Replica selection policy: ``"round_robin"`` (even spread),
        ``"least_inflight"`` (steer to the least-loaded replica) or
        ``"per_key_affinity"`` (identical cache keys hit the same replica's
        cache).
    replica_retry_limit:
        Maximum replica attempts per request; ``0`` means try every replica
        once before raising
        :class:`~repro.errors.AllReplicasFailedError`.
    breaker_threshold:
        Consecutive failures after which a replica's circuit breaker opens
        and the replica stops receiving traffic.
    breaker_reset_s:
        Seconds an open breaker waits before letting one trial request
        probe the replica again.
    worker_mode:
        ``"threads"`` (default) serves every shard replica in-process
        behind a :class:`~repro.serving.middleware.SerializedService`
        lock; ``"processes"`` forks one worker process per shard replica
        (:mod:`repro.serving.worker`) speaking the wire envelope over
        length-prefixed frames on localhost TCP, so pure-Python shard
        queries execute on real parallel cores.
    wire_codec:
        Codec preference for the shard-boundary ``handle`` hot path (one
        of :data:`WIRE_CODECS`): ``"auto"`` (default) negotiates the
        binary columnar codec with JSON fallback, ``"json"`` pins the
        legacy JSON envelope, ``"binary"`` requires the binary codec.
        Metadata operations always ride JSON regardless.
    worker_port_base:
        First TCP port assigned to worker processes (worker ``i`` binds
        ``worker_port_base + i``); ``0`` (default) lets every worker bind
        an ephemeral port and report it back.  Across rebalances, each
        worker generation offsets its ports by ``generation * pool size``
        so a new pool can come up while the old one still serves.
    worker_spawn_timeout_s:
        Seconds the cluster builder waits for each worker process to
        report ready before failing the build.
    rebalance_enabled:
        When true, :func:`repro.cluster.builder.build_cluster` attaches a
        :class:`~repro.cluster.rebalancer.LoadRebalancer` to the built
        cluster (``cluster.rebalancer``), so callers can snapshot live
        load skew and perform online shard migration without assembling
        the rebalancer by hand.  The router records the per-canvas request
        load either way; this knob only controls the convenience wiring.
    rebalance_skew_threshold:
        Load-skew trigger for :meth:`LoadRebalancer.should_rebalance`:
        the maximum per-shard request count divided by the mean, above
        which the observed traffic counts as skewed.  ``1.0`` is perfect
        balance; the default ``2.0`` means one shard carries at least
        twice the average load.
    rebalance_min_requests:
        Minimum number of scatter-gathers that must have been observed
        before the skew metric is trusted (a handful of requests can look
        arbitrarily skewed without meaning anything).
    rebalance_load_samples:
        Per-canvas cap on the recorded request-footprint centres the
        router keeps for the load-weighted repartitioner (a ring buffer:
        old samples fall off, so the histogram tracks *recent* traffic).
    rebalance_drain_timeout_s:
        Seconds an online swap waits for in-flight requests against the
        retired shard table to drain before closing its shard stacks (and
        worker pool) anyway.
    autopilot:
        The self-driving control loop's own section
        (:class:`AutopilotConfig`): tick interval, migration cooldown,
        skew hysteresis band, shard/replica autoscaling bounds and the
        read-repair switch.
    """

    enabled: bool = False
    shard_count: int = 4
    strategy: str = "grid"
    coalescing: bool = True
    router_cache_entries: int = 256
    kd_sample_limit: int = 50_000
    parallel_shards: bool = True
    max_parallel_shards: int = 0
    wire_shards: bool = True
    replicas: int = 1
    replica_policy: str = "round_robin"
    replica_retry_limit: int = 0
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    worker_mode: str = "threads"
    wire_codec: str = "auto"
    worker_port_base: int = 0
    worker_spawn_timeout_s: float = 10.0
    rebalance_enabled: bool = False
    rebalance_skew_threshold: float = 2.0
    rebalance_min_requests: int = 64
    rebalance_load_samples: int = 4096
    rebalance_drain_timeout_s: float = 30.0
    autopilot: AutopilotConfig = field(default_factory=AutopilotConfig)

    def __post_init__(self) -> None:
        # ``KyrixConfig.from_dict`` builds this section with
        # ``ClusterConfig(**data)``, so a round-tripped configuration hands
        # the nested autopilot section in as a plain dict; coerce it back.
        if isinstance(self.autopilot, dict):
            self.autopilot = AutopilotConfig(**self.autopilot)

    def validate(self) -> None:
        if self.shard_count < 1:
            raise KyrixError(f"shard_count must be >= 1, got {self.shard_count}")
        if self.strategy not in ("grid", "kd"):
            raise KyrixError(f"unknown partitioning strategy: {self.strategy!r}")
        if self.router_cache_entries < 0:
            raise KyrixError("router_cache_entries must be non-negative")
        if self.kd_sample_limit < 1:
            raise KyrixError("kd_sample_limit must be >= 1")
        if self.max_parallel_shards < 0:
            raise KyrixError("max_parallel_shards must be non-negative")
        if self.replicas < 1:
            raise KyrixError(f"replicas must be >= 1, got {self.replicas}")
        if self.replica_policy not in REPLICA_POLICIES:
            raise KyrixError(f"unknown replica policy: {self.replica_policy!r}")
        if self.replica_retry_limit < 0:
            raise KyrixError("replica_retry_limit must be non-negative")
        if self.breaker_threshold < 1:
            raise KyrixError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s < 0:
            raise KyrixError("breaker_reset_s must be non-negative")
        if self.worker_mode not in WORKER_MODES:
            raise KyrixError(f"unknown worker mode: {self.worker_mode!r}")
        if self.wire_codec not in WIRE_CODECS:
            raise KyrixError(f"unknown wire codec: {self.wire_codec!r}")
        if not 0 <= self.worker_port_base <= 65535:
            raise KyrixError(
                f"worker_port_base must be in [0, 65535], got {self.worker_port_base}"
            )
        if self.worker_spawn_timeout_s <= 0:
            raise KyrixError("worker_spawn_timeout_s must be positive")
        if self.rebalance_skew_threshold < 1.0:
            raise KyrixError(
                "rebalance_skew_threshold must be >= 1.0 (1.0 is perfect "
                f"balance), got {self.rebalance_skew_threshold}"
            )
        if self.rebalance_min_requests < 1:
            raise KyrixError("rebalance_min_requests must be >= 1")
        if self.rebalance_load_samples < 1:
            raise KyrixError("rebalance_load_samples must be >= 1")
        if self.rebalance_drain_timeout_s <= 0:
            raise KyrixError("rebalance_drain_timeout_s must be positive")
        self.autopilot.validate()


@dataclass
class TelemetryConfig:
    """Configuration of the tracing + metrics plane (:mod:`repro.telemetry`).

    Attributes
    ----------
    enabled:
        When true, every serving layer opens timed spans and feeds the
        process-wide latency histograms.  Off by default: disabled tracing
        reduces to a shared no-op span object on the hot path.
    sample_rate:
        Fraction of traces recorded in full span detail (``1.0`` keeps
        every trace).  Sampling is deterministic (counter-based), so a rate
        of ``0.1`` keeps exactly every tenth trace.  Unsampled requests
        still feed the duration histograms.
    trace_buffer:
        Number of newest completed traces retained in the in-memory ring
        buffer served by ``GET /trace/<trace_id>``.
    export_path:
        Optional path of a JSONL file that every sampled trace is appended
        to (one line per trace), consumable by
        ``python -m repro.telemetry.dump``.
    """

    enabled: bool = False
    sample_rate: float = 1.0
    trace_buffer: int = 256
    export_path: str | None = None

    def validate(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise KyrixError(
                f"sample_rate must be in [0.0, 1.0], got {self.sample_rate}"
            )
        if self.trace_buffer < 1:
            raise KyrixError(f"trace_buffer must be >= 1, got {self.trace_buffer}")


@dataclass
class KyrixConfig:
    """Top-level configuration for a Kyrix application.

    The equivalent of the ``config.txt`` file referenced in the paper's
    example (``new App("usmap", "config.txt")``).
    """

    app_name: str = "kyrix-app"
    storage: StorageConfig = field(default_factory=StorageConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    interactivity_budget_ms: float = INTERACTIVITY_BUDGET_MS
    viewport_width: int = 1000
    viewport_height: int = 1000
    random_seed: int = 1729

    def validate(self) -> None:
        """Raise :class:`KyrixError` if any sub-configuration is invalid."""
        if not self.app_name:
            raise KyrixError("app_name must be a non-empty string")
        if self.viewport_width <= 0 or self.viewport_height <= 0:
            raise KyrixError("viewport dimensions must be positive")
        if self.interactivity_budget_ms <= 0:
            raise KyrixError("interactivity_budget_ms must be positive")
        self.storage.validate()
        self.network.validate()
        self.cache.validate()
        self.prefetch.validate()
        self.cluster.validate()
        self.telemetry.validate()

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable dictionary of this configuration."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KyrixConfig":
        """Build a configuration from a (possibly partial) dictionary."""
        known = dict(data)
        storage = StorageConfig(**known.pop("storage", {}))
        network = NetworkConfig(**known.pop("network", {}))
        cache = CacheConfig(**known.pop("cache", {}))
        prefetch = PrefetchConfig(**known.pop("prefetch", {}))
        cluster = ClusterConfig(**known.pop("cluster", {}))
        telemetry = TelemetryConfig(**known.pop("telemetry", {}))
        config = cls(
            storage=storage,
            network=network,
            cache=cache,
            prefetch=prefetch,
            cluster=cluster,
            telemetry=telemetry,
            **known,
        )
        config.validate()
        return config

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "KyrixConfig":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "KyrixConfig":
        """Load a configuration from a JSON file (the ``config.txt`` analogue)."""
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())
