"""Process-based shard workers: the scatter path without the GIL.

Every topology so far kept shard engines in the router's process behind a
:class:`~repro.serving.middleware.SerializedService` lock, so multi-shard
scatter-gathers parallelised I/O but never pure-Python query execution.
This module moves each shard replica into its **own worker process**:

* :class:`ShardSpec` — a fully serialisable description of one shard: the
  application's compiled plan (:meth:`CompiledApplication.to_dict`,
  closures dropped), the configuration, and a dump of every table in the
  shard's database (schema, rows, index definitions).  Replicas run the
  same spec; each worker reports the :func:`database_checksum` of its own
  *rebuilt* index, so divergent replica rebuilds are detectable.
* :func:`worker_main` — the worker process entry point: rebuild the shard
  database from the spec, compose the shard's serving stack
  (``LocalTransport ∘ CachingService ∘ SerializedService`` over the
  backend's query core — exactly the per-replica stack the in-process
  topology builds), then answer tagged wire frames (codec hellos,
  :mod:`repro.net.columnar` binary messages, JSON envelopes) over
  length-prefixed frames on a localhost TCP socket until told to stop.
  ``SIGTERM`` drains: in-flight requests finish, the listener closes, the
  process exits 0.
* :class:`WorkerPool` — the parent-side manager: forks one process per
  spec, waits for each worker's ready report (bound port + index checksum)
  within ``spawn_timeout_s``, hands out
  :class:`~repro.net.socket_transport.SocketTransport` endpoints, and on
  ``close()`` terminates and joins every worker.

The wire above the socket is byte-identical to the in-process transport
pair, which is what makes the cross-topology parity suite
(``tests/cluster/test_topology_parity.py``) possible: the router cannot
tell a :class:`~repro.serving.transport.LocalTransport` from a worker
process on the other end of a frame stream.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import signal
import socket
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..compiler.plan import CompiledApplication
from ..config import KyrixConfig
from ..errors import WorkerError, WorkerSpawnError
from ..net.socket_transport import SocketTransport, serve_connection
from .middleware import CachingService, SerializedService
from .transport import LocalTransport

if TYPE_CHECKING:
    from ..storage.database import Database

__all__ = [
    "GENERATION_PORT_STRIDE",
    "ShardSpec",
    "TableDump",
    "WorkerHandle",
    "WorkerPool",
    "build_shard_spec",
    "database_checksum",
    "worker_main",
]


# ---------------------------------------------------------------------------
# Shard specification (what crosses the process boundary)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableDump:
    """One table of a shard database in transportable form."""

    name: str
    #: ``(column_name, type_name)`` pairs, schema order.
    columns: tuple[tuple[str, str], ...]
    #: Heap rows in scan order (plain tuples of column values).
    rows: tuple[tuple, ...]
    #: ``(index_name, column, kind, unique)`` definitions.
    indexes: tuple[tuple[str, str, str, bool], ...]


def _dump_database(database: "Database") -> tuple[TableDump, ...]:
    """Dump every table of a database, sorted by table name."""
    dumps: list[TableDump] = []
    for name in database.table_names:
        table = database.table(name)
        dumps.append(
            TableDump(
                name=name,
                columns=tuple(
                    (column.name, column.type.value)
                    for column in table.schema.columns
                ),
                rows=tuple(table.scan_rows()),
                indexes=tuple(
                    sorted(
                        (info.name, info.column, info.kind, info.unique)
                        for info in table.indexes.values()
                    )
                ),
            )
        )
    return tuple(dumps)


def _restore_database(dumps: tuple[TableDump, ...], config: KyrixConfig) -> "Database":
    """Materialise a database from a dump (the worker-side inverse)."""
    from ..storage.database import Database

    database = Database(config.storage)
    for dump in dumps:
        table = database.create_table(dump.name, list(dump.columns))
        table.bulk_load(dump.rows)
        for index_name, column, kind, unique in dump.indexes:
            table.create_index(index_name, column, kind, unique=unique)
    return database


def _checksum_dumps(dumps: tuple[TableDump, ...]) -> str:
    """A stable content hash over a table dump (schema + rows + indexes)."""
    digest = hashlib.sha256()
    for dump in dumps:
        digest.update(repr((dump.name, dump.columns, dump.indexes)).encode("utf-8"))
        for row in dump.rows:
            digest.update(repr(row).encode("utf-8"))
    return digest.hexdigest()


def database_checksum(database: "Database") -> str:
    """Content hash of a live database (same algorithm as the worker's).

    The in-process topology uses this to record per-replica index checksums
    in :class:`~repro.cluster.router.ClusterStats`; a worker process hashes
    its rebuilt dump instead — identical content hashes either way, so the
    divergence check is topology-independent.
    """
    return _checksum_dumps(_dump_database(database))


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to serve one shard.

    Replica identity is deliberately *not* part of the spec: every replica
    of a shard rebuilds from the identical bytes, so the pool pickles one
    payload per shard and assigns replica indexes on the parent side.
    """

    shard_id: int
    #: ``KyrixConfig.to_dict()`` of the cluster's configuration.
    config: dict
    #: ``CompiledApplication.to_dict()`` — the plan without live closures.
    plan: dict
    tables: tuple[TableDump, ...]
    #: Wire codecs the worker's transport endpoint accepts for the
    #: ``handle`` hot path (from the *effective* ``cluster.wire_codec``,
    #: which a ``build_cluster`` override may differ from the ``config``
    #: dict above — hence carried explicitly).
    codecs: tuple[str, ...] = ("binary", "json")

    def checksum(self) -> str:
        return _checksum_dumps(self.tables)

    def to_payload(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "ShardSpec":
        spec = pickle.loads(payload)
        if not isinstance(spec, cls):
            raise WorkerError(
                f"worker payload decoded to {type(spec).__name__}, not ShardSpec"
            )
        return spec


def build_shard_spec(
    database: "Database",
    compiled: CompiledApplication,
    config: KyrixConfig,
    *,
    shard_id: int,
    codecs: tuple[str, ...] = ("binary", "json"),
) -> ShardSpec:
    """Serialise one shard's database into a worker-transportable spec."""
    return ShardSpec(
        shard_id=shard_id,
        config=config.to_dict(),
        plan=compiled.to_dict(),
        tables=_dump_database(database),
        codecs=tuple(codecs),
    )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _build_worker_stack(spec: ShardSpec) -> tuple[LocalTransport, "Database"]:
    """The worker's serving stack: ``LocalTransport ∘ Caching ∘ Serialized``."""
    from ..server.backend import KyrixBackend
    from ..telemetry import configure as configure_telemetry

    config = KyrixConfig.from_dict(spec.config)
    # The worker process has its own telemetry singletons; configuring
    # them from the spec makes spans recorded here flow back across the
    # socket (LocalTransport ships them inside the reply envelope).
    configure_telemetry(config.telemetry)
    compiled = CompiledApplication.from_dict(spec.plan)
    database = _restore_database(spec.tables, config)
    backend = KyrixBackend(database, compiled, config)
    cache_entries = config.cache.backend_entries if config.cache.enabled else 0
    stack = CachingService(
        SerializedService(backend.query_service()), entries=cache_entries
    )
    return LocalTransport(stack, codecs=spec.codecs), database


def worker_main(payload: bytes, port: int, ready_conn: Any) -> None:
    """Entry point of one shard worker process.

    ``payload`` is a pickled :class:`ShardSpec`; ``port`` the TCP port to
    bind (0 for an ephemeral port); ``ready_conn`` a pipe the worker reports
    ``{"port", "pid", "checksum"}`` on once it is accepting connections (or
    ``{"error": ...}`` if it failed to come up).
    """
    stop = threading.Event()

    def _terminate(_signum: int, _frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    try:
        spec = ShardSpec.from_payload(payload)
        transport, database = _build_worker_stack(spec)
        listener = socket.create_server(("127.0.0.1", port))
    except Exception as error:  # noqa: BLE001 - reported to the parent
        try:
            ready_conn.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            ready_conn.close()
        return

    listener.settimeout(0.1)
    ready_conn.send(
        {
            "port": listener.getsockname()[1],
            "pid": os.getpid(),
            # Hash of the *rebuilt* database, not of the received spec —
            # a rebuild that lost or corrupted rows must hash differently
            # from its siblings so divergent_replicas() can catch it.
            "checksum": database_checksum(database),
        }
    )
    ready_conn.close()

    active: list[threading.Thread] = []

    def _serve(conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Byte frames, not text: the transport's tagged-frame surface
            # dispatches hello/binary/JSON/legacy payloads per frame.
            for _ in serve_connection(conn, transport.roundtrip_frame, text=False):
                if stop.is_set():
                    # Drain semantics: the reply that was just written
                    # completes the in-flight request; stop reading more.
                    return

    try:
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=_serve, args=(conn,), daemon=True)
            thread.start()
            active.append(thread)
            active = [t for t in active if t.is_alive()]
    finally:
        listener.close()
        # Drain: give in-flight request threads a moment to write replies.
        for thread in active:
            thread.join(timeout=1.0)
        transport.close()


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------

#: Fixed-port pools reserve this many ports per rebalance generation, so a
#: new pool can bind while the previous generation still serves its block.
GENERATION_PORT_STRIDE = 128


@dataclass
class WorkerHandle:
    """One live worker process as seen from the parent."""

    shard_id: int
    replica_index: int
    process: Any
    port: int
    pid: int
    #: Content hash of the worker's rebuilt shard index, as reported by the
    #: worker itself (not recomputed in the parent).
    checksum: str

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def transport(self, **kwargs: Any) -> SocketTransport:
        return SocketTransport("127.0.0.1", self.port, **kwargs)


class WorkerPool:
    """Forks, tracks and terminates the shard worker processes of a cluster.

    ``specs`` holds one entry per worker; passing the *same* spec object
    several times runs that many replicas of the shard (the payload is
    pickled once per distinct spec and replica indexes are assigned in
    list order per shard).  ``port_base`` of 0 (the default) lets every
    worker bind an ephemeral port and report it back; a positive base
    assigns ``base + index`` per worker (useful when firewalls need
    predictable ports).  Workers that do not report ready within
    ``spawn_timeout_s`` — or report an error — fail the whole
    :meth:`start`, which tears down anything already running.

    ``generation`` supports the online-rebalance handoff: while a new
    shard set spawns, the previous generation's pool is still serving, so
    the new one must not collide with it.  The generation is baked into
    the worker process names (``kyrix-worker-g1-s0r0``, so both
    generations stay tellable apart in ``ps`` during the handoff) and,
    with a fixed ``port_base``, offsets the port range by
    ``generation * GENERATION_PORT_STRIDE`` — the old pool keeps its ports
    until it drains and the new one binds its own block (the stride, not
    the pool size, keeps a shrinking rebalance from landing inside the
    still-bound old range).
    """

    def __init__(
        self,
        specs: list[ShardSpec],
        *,
        port_base: int = 0,
        spawn_timeout_s: float = 10.0,
        start_method: str | None = None,
        generation: int = 0,
    ) -> None:
        if not specs:
            raise WorkerError("a worker pool needs at least one shard spec")
        if generation < 0:
            raise WorkerError(f"generation must be >= 0, got {generation}")
        self.specs = list(specs)
        self.port_base = port_base
        self.spawn_timeout_s = spawn_timeout_s
        self.generation = generation
        self._port_offset = generation * GENERATION_PORT_STRIDE
        if start_method is None:
            # fork is dramatically cheaper than spawn and the specs are
            # fully picklable either way; fall back where fork is absent.
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self.handles: list[WorkerHandle] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> list[WorkerHandle]:
        """Fork every worker and wait for all of them to report ready."""
        if self.handles:
            raise WorkerError("worker pool already started")
        pending: list[tuple[ShardSpec, int, Any, Any]] = []
        # Replicas of one shard rebuild from identical bytes: pickle each
        # distinct spec object once, not once per replica.
        payloads: dict[int, bytes] = {}
        replica_counts: dict[int, int] = {}
        try:
            for index, spec in enumerate(self.specs):
                replica_index = replica_counts.get(spec.shard_id, 0)
                replica_counts[spec.shard_id] = replica_index + 1
                payload = payloads.get(id(spec))
                if payload is None:
                    payload = payloads[id(spec)] = spec.to_payload()
                parent_conn, child_conn = self._context.Pipe(duplex=False)
                port = (
                    self.port_base + self._port_offset + index
                    if self.port_base
                    else 0
                )
                process = self._context.Process(
                    target=worker_main,
                    args=(payload, port, child_conn),
                    name=(
                        f"kyrix-worker-g{self.generation}"
                        f"-s{spec.shard_id}r{replica_index}"
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                pending.append((spec, replica_index, process, parent_conn))
            for spec, replica_index, process, parent_conn in pending:
                if not parent_conn.poll(self.spawn_timeout_s):
                    raise WorkerSpawnError(
                        f"worker shard{spec.shard_id}/replica{replica_index} "
                        f"did not report ready within {self.spawn_timeout_s}s"
                    )
                report = parent_conn.recv()
                parent_conn.close()
                if "error" in report:
                    raise WorkerSpawnError(
                        f"worker shard{spec.shard_id}/replica{replica_index} "
                        f"failed to start: {report['error']}"
                    )
                self.handles.append(
                    WorkerHandle(
                        shard_id=spec.shard_id,
                        replica_index=replica_index,
                        process=process,
                        port=report["port"],
                        pid=report["pid"],
                        checksum=report["checksum"],
                    )
                )
        except BaseException:
            for _, _, process, _ in pending:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=2.0)
            self.handles.clear()
            raise
        # The specs (full table dumps) were only needed to seed the forks;
        # dropping them keeps the parent from holding every shard's rows a
        # second time for the pool's whole serving lifetime.
        self.specs = []
        return list(self.handles)

    def handle_for(self, shard_id: int, replica_index: int = 0) -> WorkerHandle:
        for handle in self.handles:
            if handle.shard_id == shard_id and handle.replica_index == replica_index:
                return handle
        raise WorkerError(
            f"no worker for shard{shard_id}/replica{replica_index} in this pool"
        )

    def kill(self, shard_id: int, replica_index: int = 0) -> WorkerHandle:
        """SIGKILL one worker (the chaos seam used by ``kill_worker``)."""
        handle = self.handle_for(shard_id, replica_index)
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        return handle

    def respawn(
        self, spec: ShardSpec, *, replica_index: int = 0
    ) -> WorkerHandle:
        """Fork a replacement worker for one replica slot of this pool.

        The read-repair seam: the old worker (dead, killed or divergent)
        is terminated and its :class:`WorkerHandle` slot replaced by a
        fresh process rebuilt from ``spec`` — the new worker reports its
        own index checksum, so a repair is verifiable against the shard's
        healthy siblings.  The replacement stays owned by this pool:
        :meth:`close` (and the shard table retiring it) tears it down with
        the rest of the generation.
        """
        if self._closed:
            raise WorkerError("cannot respawn a worker on a closed pool")
        old = self.handle_for(spec.shard_id, replica_index)
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5.0)
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        # With a fixed port base the dead worker's port is free again (its
        # process is joined above); ephemeral pools let the OS pick.
        port = old.port if self.port_base else 0
        process = self._context.Process(
            target=worker_main,
            args=(spec.to_payload(), port, child_conn),
            name=(
                f"kyrix-worker-g{self.generation}"
                f"-s{spec.shard_id}r{replica_index}-repair"
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(self.spawn_timeout_s):
                raise WorkerSpawnError(
                    f"replacement worker shard{spec.shard_id}/"
                    f"replica{replica_index} did not report ready within "
                    f"{self.spawn_timeout_s}s"
                )
            report = parent_conn.recv()
            if "error" in report:
                raise WorkerSpawnError(
                    f"replacement worker shard{spec.shard_id}/"
                    f"replica{replica_index} failed to start: {report['error']}"
                )
        except BaseException:
            if process.is_alive():
                process.terminate()
            process.join(timeout=2.0)
            raise
        finally:
            parent_conn.close()
        replacement = WorkerHandle(
            shard_id=spec.shard_id,
            replica_index=replica_index,
            process=process,
            port=report["port"],
            pid=report["pid"],
            checksum=report["checksum"],
        )
        self.handles[self.handles.index(old)] = replacement
        return replacement

    def close(self) -> None:
        """SIGTERM every worker (drain) and join them all."""
        if self._closed:
            return
        self._closed = True
        for handle in self.handles:
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in self.handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)

    # -- introspection -------------------------------------------------------

    @property
    def worker_count(self) -> int:
        return len(self.handles)

    def checksums(self) -> dict[str, str]:
        """Per-worker index checksums keyed ``"shard{S}/replica{R}"``."""
        return {
            f"shard{handle.shard_id}/replica{handle.replica_index}": handle.checksum
            for handle in self.handles
        }

    def describe(self) -> list[dict[str, Any]]:
        return [
            {
                "shard_id": handle.shard_id,
                "replica_index": handle.replica_index,
                "generation": self.generation,
                "pid": handle.pid,
                "port": handle.port,
                "alive": handle.alive,
            }
            for handle in self.handles
        ]

    def __repr__(self) -> str:
        return f"WorkerPool(workers={len(self.handles) or len(self.specs)})"
