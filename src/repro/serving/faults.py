"""Deterministic fault injection for the serving stack.

Failover is untestable without controllable failures, so faults are a
first-class seam rather than ad-hoc monkeypatching: both the test suites and
``benchmarks/bench_replica_failover.py`` drive the same classes.

* :class:`FaultSchedule` — a deterministic, schedule-driven fault plan: a
  list of :class:`FaultRule` entries matched against a per-operation call
  counter (raise on the nth call, fail the first k calls, fail forever,
  add fixed latency, corrupt the payload).  No randomness: the same
  schedule replayed over the same traffic injects the same faults.
* :class:`FaultInjectingService` — middleware applying a schedule to any
  :class:`~repro.serving.base.DataService`; error faults raise
  :class:`InjectedFaultError`, latency faults advance a
  :class:`~repro.metrics.timer.VirtualClock` (so replica timeouts and tail
  latencies are simulated, not slept), corruption faults replace the
  response payload with a recognisably wrong one.
* :class:`FaultInjectingTransport` — the same idea one level down, on the
  :class:`~repro.serving.transport.ShardTransport` wire: error faults raise
  before the envelope is delivered (a dead connection), corruption faults
  garble the reply bytes so the client-side decode fails.

:func:`fault_replica` is the convenience hook tests and benchmarks use to
wrap one replica of a built cluster in place (via the
``ReplicaService.replicas`` accessor).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import KyrixError
from ..telemetry import get_tracer
from .base import DataService, ServiceMiddleware

if TYPE_CHECKING:
    from ..net.protocol import DataRequest, DataResponse
    from .replica import ReplicaService
    from .transport import ShardTransport


class InjectedFaultError(KyrixError):
    """The failure a fault schedule injects (never raised by real code)."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: *which* calls it hits and *what* it does.

    ``kind`` is ``"error"`` (raise :class:`InjectedFaultError`),
    ``"latency"`` (advance the virtual clock by ``latency_ms``) or
    ``"corrupt"`` (return a wrong payload).  The rule matches the calls of
    operation ``op`` (``"*"`` for any) whose zero-based per-op call index
    lies in ``[start, start + count)``; ``count=None`` means forever.
    """

    kind: str
    op: str = "handle"
    start: int = 0
    count: int | None = None
    latency_ms: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "corrupt"):
            raise KyrixError(f"unknown fault kind {self.kind!r}")
        if self.start < 0 or (self.count is not None and self.count < 0):
            raise KyrixError("fault rule start/count must be non-negative")

    def matches(self, op: str, call_index: int) -> bool:
        if self.op != "*" and self.op != op:
            return False
        if call_index < self.start:
            return False
        return self.count is None or call_index < self.start + self.count


class FaultSchedule:
    """A thread-safe, replayable plan of faults keyed by call order."""

    def __init__(self, rules: Iterable[FaultRule] = ()) -> None:
        self.rules = list(rules)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Total faults applied so far (all kinds).
        self.injected = 0

    # -- common shapes ------------------------------------------------------

    @classmethod
    def fail_always(cls, op: str = "handle") -> "FaultSchedule":
        """Every call of ``op`` fails (a dead replica)."""
        return cls([FaultRule(kind="error", op=op)])

    @classmethod
    def fail_nth(cls, n: int, op: str = "handle") -> "FaultSchedule":
        """Only the zero-based ``n``-th call of ``op`` fails."""
        return cls([FaultRule(kind="error", op=op, start=n, count=1)])

    @classmethod
    def fail_first(cls, count: int, op: str = "handle") -> "FaultSchedule":
        """The first ``count`` calls of ``op`` fail, then the fault clears."""
        return cls([FaultRule(kind="error", op=op, start=0, count=count)])

    @classmethod
    def slow(
        cls,
        latency_ms: float,
        op: str = "handle",
        start: int = 0,
        count: int | None = None,
    ) -> "FaultSchedule":
        """Add ``latency_ms`` of virtual-clock latency to matching calls."""
        return cls(
            [FaultRule(kind="latency", op=op, start=start, count=count,
                       latency_ms=latency_ms)]
        )

    @classmethod
    def corrupt_nth(cls, n: int, op: str = "handle") -> "FaultSchedule":
        """Corrupt the payload of the zero-based ``n``-th call of ``op``."""
        return cls([FaultRule(kind="corrupt", op=op, start=n, count=1)])

    # -- consultation -------------------------------------------------------

    def consult(self, op: str) -> list[FaultRule]:
        """Advance the per-op counter and return the rules hitting this call."""
        with self._lock:
            call_index = self._counts.get(op, 0)
            self._counts[op] = call_index + 1
        hits = [rule for rule in self.rules if rule.matches(op, call_index)]
        if hits:
            with self._lock:
                self.injected += len(hits)
        return hits

    def calls(self, op: str) -> int:
        """How many calls of ``op`` the schedule has seen."""
        with self._lock:
            return self._counts.get(op, 0)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self.injected = 0


def corrupted_response(request: "DataRequest") -> "DataResponse":
    """The recognisably-wrong payload a corruption fault substitutes."""
    from ..net.protocol import DataResponse

    return DataResponse(
        request=request,
        objects=[{"tuple_id": -1, "corrupted": True}],
        query_ms=0.0,
        from_cache=False,
        queries_issued=0,
    )


def _record_fault_events(rules: list[FaultRule], *, seam: str) -> None:
    """Stamp each injected fault as an event on the innermost open span.

    Chaos tests can then assert that a failure is *visible in the trace*
    (a ``fault_injected`` event on the replica attempt or rpc span), not
    merely inferable from counters.  A no-op when tracing is off.
    """
    if not rules:
        return
    span = get_tracer().current_span()
    for rule in rules:
        span.add_event(
            "fault_injected",
            seam=seam,
            kind=rule.kind,
            op=rule.op,
            latency_ms=rule.latency_ms,
        )


class FaultInjectingService(ServiceMiddleware):
    """Applies a :class:`FaultSchedule` to every call into ``inner``.

    Latency faults advance ``clock`` *before* the inner call (the slow
    replica is slow whether or not it would have answered); error faults
    then raise without touching ``inner`` at all (a dead replica does no
    work); corruption faults let the call run and replace the result.
    Every injected fault is additionally recorded as a ``fault_injected``
    event on the innermost open span, so traces show the failure.
    """

    def __init__(
        self,
        inner: DataService,
        schedule: FaultSchedule,
        *,
        clock: Any | None = None,
    ) -> None:
        super().__init__(inner)
        self.schedule = schedule
        self.clock = clock

    def _apply_pre(self, rules: list[FaultRule]) -> None:
        _record_fault_events(rules, seam="service")
        for rule in rules:
            if rule.kind == "latency" and self.clock is not None:
                self.clock.advance(rule.latency_ms)
        for rule in rules:
            if rule.kind == "error":
                raise InjectedFaultError(rule.message)

    def handle(self, request: "DataRequest") -> "DataResponse":
        rules = self.schedule.consult("handle")
        self._apply_pre(rules)
        response = self.inner.handle(request)
        if any(rule.kind == "corrupt" for rule in rules):
            return corrupted_response(request)
        return response

    def warm(self, request: "DataRequest") -> None:
        self._apply_pre(self.schedule.consult("warm"))
        self.inner.warm(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        self._apply_pre(self.schedule.consult("canvas_info"))
        return self.inner.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        self._apply_pre(self.schedule.consult("layer_density"))
        return self.inner.layer_density(canvas_id, layer_index)


class FaultInjectingTransport:
    """A :class:`~repro.serving.transport.ShardTransport` that injects faults.

    Error faults raise before delivery (the connection died); latency
    faults charge the virtual clock per round-trip; corruption faults
    garble the reply text so the client-side JSON decode blows up — the
    three failure shapes a networked shard actually exhibits.
    """

    def __init__(
        self,
        inner: "ShardTransport",
        schedule: FaultSchedule,
        *,
        clock: Any | None = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.clock = clock

    def roundtrip(self, payload: str) -> str:
        rules = self.schedule.consult("roundtrip")
        _record_fault_events(rules, seam="transport")
        for rule in rules:
            if rule.kind == "latency" and self.clock is not None:
                self.clock.advance(rule.latency_ms)
        for rule in rules:
            if rule.kind == "error":
                raise InjectedFaultError(rule.message)
        reply = self.inner.roundtrip(payload)
        if any(rule.kind == "corrupt" for rule in rules):
            return "<<corrupted envelope>>" + reply[:16]
        return reply

    def close(self) -> None:
        self.inner.close()


def fault_replica(
    replica_service: "ReplicaService",
    index: int,
    schedule: FaultSchedule,
    *,
    clock: Any | None = None,
) -> FaultInjectingService:
    """Wrap replica ``index`` of a live replica set with a fault injector.

    Mutates ``replica_service.replicas`` in place and returns the injector
    (its ``inner`` is the original replica stack, so the fault can be
    removed by assigning it back).
    """
    injector = FaultInjectingService(
        replica_service.replicas[index], schedule, clock=clock
    )
    replica_service.replicas[index] = injector
    return injector


def diverge_replica(
    cluster: Any,
    shard_id: int,
    replica_index: int = 0,
    *,
    checksum: str = "deadbeef-diverged",
) -> str:
    """Mark one replica's index checksum as divergent (a detected bad copy).

    The read-repair counterpart of :func:`fault_replica` /
    :func:`kill_worker`: real divergence happens when a replica's rebuilt
    index loses or corrupts rows (the worker hashes its *own* copy at
    spawn), which is not reachable without breaking the process for real —
    so this seam injects the *detection*: it stamps ``checksum`` over the
    replica's recorded entry in
    :attr:`~repro.cluster.router.ClusterStats.replica_checksums` under the
    router's stats lock, exactly as if the spawn-time hash had come back
    wrong.  ``divergent_replicas()`` flags the shard on the next read and
    the autopilot's read-repair rebuilds the replica from a fresh
    :class:`~repro.serving.worker.ShardSpec`, restoring a matching hash.
    Pair with :func:`kill_worker` (process mode) or :func:`fault_replica`
    to make the divergence behaviourally visible too.

    Accepts a :class:`~repro.cluster.builder.ShardedCluster` or a
    :class:`~repro.cluster.router.ClusterRouter`; returns the checksum the
    poisoned entry previously held (empty string when the topology
    recorded none — e.g. a single-replica thread cluster).
    """
    router = getattr(cluster, "router", cluster)
    record = getattr(router, "record_replica_checksum", None)
    if record is None:
        raise KyrixError(
            "diverge_replica needs a built cluster or its ClusterRouter"
        )
    previous = record(shard_id, replica_index, checksum)
    return previous


def kill_worker(cluster: Any, shard_id: int, replica_index: int = 0) -> Any:
    """SIGKILL one shard worker process of a process-topology cluster.

    The chaos-testing counterpart of :func:`fault_replica` for
    ``worker_mode="processes"``: the worker dies for real (no schedules, no
    wrappers), its sockets reset, and every later call to that replica
    surfaces as a :class:`~repro.errors.WorkerConnectionError` — which the
    replica layer treats as fatal, opening the breaker immediately.
    Accepts a :class:`~repro.cluster.builder.ShardedCluster`, a
    :class:`~repro.cluster.router.ClusterRouter` built over workers, or a
    :class:`~repro.serving.worker.WorkerPool` directly; returns the killed
    worker's :class:`~repro.serving.worker.WorkerHandle`.
    """
    pool = getattr(cluster, "worker_pool", None)
    if pool is None:
        # A router only carries the pool through its cluster backref.
        owner = getattr(cluster, "cluster", None)
        pool = getattr(owner, "worker_pool", None)
    if pool is None and hasattr(cluster, "kill"):
        pool = cluster
    if pool is None:
        raise KyrixError(
            "kill_worker needs a process-topology cluster "
            "(built with worker_mode='processes') or a WorkerPool"
        )
    return pool.kill(shard_id, replica_index)
