"""One factory for the whole serving stack: :func:`build_service`.

Call sites used to assemble their serving endpoints by hand — construct a
:class:`~repro.server.backend.KyrixBackend`, maybe shard it with
:func:`~repro.cluster.builder.build_cluster`, then duck-type the result into
frontends.  :func:`build_service` replaces those per-call-site builders:
give it a configuration plus either a precomputed backend or the raw
``database``/``compiled`` pair, and it returns one composed
:class:`~repro.serving.base.DataService` driven entirely by
``config.cluster`` (sharding, parallel fan-out, wire-level shard calls,
coalescing) and the keyword overrides.

Direct construction of ``KyrixBackend`` / ``ClusterRouter`` as *frontend
endpoints* is deprecated in favour of this factory (the constructors keep
working for one release; building blocks stay public).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from ..errors import KyrixError

if TYPE_CHECKING:
    from ..compiler.plan import CompiledApplication
    from ..config import KyrixConfig
    from ..server.backend import KyrixBackend
    from ..storage.database import Database
    from .base import DataService

#: Services this factory built (or that are reachable inside one it built).
#: Frontends consult this to tell a sanctioned bare endpoint (a
#: ``KyrixBackend`` the factory returned for a non-cluster config) from a
#: hand-constructed one, which is deprecated as a frontend endpoint.
_FACTORY_BUILT: "weakref.WeakSet[object]" = weakref.WeakSet()


def mark_factory_built(service: "DataService") -> "DataService":
    """Record ``service`` as a sanctioned :func:`build_service` product."""
    try:
        _FACTORY_BUILT.add(service)
    except TypeError:  # non-weakrefable duck types stay unmarked
        pass
    return service


def is_factory_built(service: object) -> bool:
    """True when ``service`` came out of :func:`build_service`."""
    try:
        return service in _FACTORY_BUILT
    except TypeError:
        return False


def build_service(
    config: "KyrixConfig | None" = None,
    *,
    backend: "KyrixBackend | None" = None,
    database: "Database | None" = None,
    compiled: "CompiledApplication | None" = None,
    precompute: bool | None = None,
    tile_sizes: tuple[int, ...] = (),
    shard_count: int | None = None,
    strategy: str | None = None,
    coalescing: bool | None = None,
    parallel: bool | None = None,
    wire_shards: bool | None = None,
    replicas: int | None = None,
    replica_policy: str | None = None,
    worker_mode: str | None = None,
    wire_codec: str | None = None,
    rebalance: bool | None = None,
    autopilot: bool | None = None,
    telemetry: bool | None = None,
    metrics: bool = False,
) -> "DataService":
    """Build the configured serving stack and return its outermost service.

    Parameters
    ----------
    config:
        The application configuration; defaults to the backend's.  The
        ``config.cluster`` section decides whether the stack is a single
        cached backend or a sharded scatter-gather cluster.
    backend:
        An existing (typically precomputed) backend to serve from.  When
        omitted, one is built from ``database`` + ``compiled`` and
        precomputed unless ``precompute=False``.
    precompute:
        Force precomputation on or off.  Default: precompute only when the
        factory constructed the backend itself.
    tile_sizes:
        Tile sizes to pre-build tuple–tile mapping tables for.
    shard_count / strategy / coalescing / parallel / wire_shards:
        Per-build overrides of the corresponding ``config.cluster`` fields.
        Passing ``shard_count`` or ``strategy`` turns sharding on even when
        ``config.cluster.enabled`` is false.
    replicas / replica_policy:
        Per-build overrides of ``config.cluster.replicas`` /
        ``config.cluster.replica_policy``: with more than one replica every
        shard serves through a
        :class:`~repro.serving.replica.ReplicaService` (load balancing,
        circuit breaking, failover).  Only meaningful for sharded stacks.
    worker_mode:
        Per-build override of ``config.cluster.worker_mode``:
        ``"processes"`` forks one worker process per shard replica behind
        a socket transport (:mod:`repro.serving.worker`) instead of the
        in-process thread topology.  Only meaningful for sharded stacks.
    wire_codec:
        Per-build override of ``config.cluster.wire_codec``: what the
        shard-boundary ``handle`` hot path speaks (``"auto"`` negotiates
        the :mod:`repro.net.columnar` binary codec with JSON fallback,
        ``"json"`` pins the legacy envelope, ``"binary"`` requires the
        binary codec).  Only meaningful for sharded wire-level stacks.
    rebalance:
        Per-build override of ``config.cluster.rebalance_enabled``: when
        true the built cluster carries a
        :class:`~repro.cluster.rebalancer.LoadRebalancer` (reachable as
        ``unwrap(service, ClusterRouter).cluster.rebalancer``) ready to
        migrate the shard set online from observed load skew.  Only
        meaningful for sharded stacks.
    autopilot:
        Per-build override of ``config.cluster.autopilot.enabled``: when
        true the built cluster attaches **and starts** a
        :class:`~repro.cluster.autopilot.ClusterAutopilot` background
        control loop (reachable as
        ``unwrap(service, ClusterRouter).cluster.autopilot``) that
        rebalances, autoscales shards/replicas and read-repairs diverged
        replicas on its own; closing the returned stack stops it.  Only
        meaningful for sharded stacks.
    telemetry:
        Per-build override of ``config.telemetry.enabled``: when true the
        process-wide :mod:`repro.telemetry` tracer is (re)configured from
        ``config.telemetry`` and every layer of the built stack opens
        spans.  For sharded stacks the flag is folded into the effective
        configuration, so process-mode workers trace too.
    metrics:
        Wrap the stack in a :class:`~repro.serving.middleware.MetricsService`
        recording per-request latency breakdowns.
    """
    from ..server.backend import KyrixBackend

    if backend is None:
        if database is None or compiled is None:
            raise KyrixError(
                "build_service needs either backend=... or database= and compiled=..."
            )
        backend = KyrixBackend(database, compiled, config)
        if precompute is None:
            precompute = True
    if precompute:
        backend.precompute(tile_sizes=tile_sizes)
    # The backend the factory constructed (or adopted and prepared) is a
    # sanctioned endpoint even when the returned stack wraps it.
    mark_factory_built(backend)
    config = config or backend.config

    sharded = config.cluster.enabled or shard_count is not None or strategy is not None
    if sharded:
        from ..cluster.builder import build_cluster

        cluster = build_cluster(
            backend,
            shard_count=shard_count,
            strategy=strategy,
            coalescing=coalescing,
            parallel=parallel,
            wire_shards=wire_shards,
            replicas=replicas,
            replica_policy=replica_policy,
            worker_mode=worker_mode,
            wire_codec=wire_codec,
            rebalance=rebalance,
            autopilot=autopilot,
            telemetry=telemetry,
            tile_sizes=tile_sizes,
        )
        service: "DataService" = cluster.router
    else:
        if telemetry is not None or config.telemetry.enabled:
            from ..telemetry import configure as configure_telemetry

            overrides = {} if telemetry is None else {"enabled": telemetry}
            configure_telemetry(config.telemetry, **overrides)
        service = backend

    if metrics:
        from .middleware import MetricsService

        mark_factory_built(service)
        service = MetricsService(service)
    return mark_factory_built(service)
