"""Composable middleware over the :class:`~repro.serving.base.DataService` protocol.

These classes are the single home of the cross-cutting serving behaviours
that used to be hard-wired into :class:`~repro.server.backend.KyrixBackend`
and :class:`~repro.cluster.router.ClusterRouter`:

* :class:`CachingService` — the LRU response cache (backend cache, router
  cache and any other layer are all instances of this one middleware),
* :class:`CoalescingService` — single-flight deduplication of identical
  in-flight requests from concurrent sessions,
* :class:`MetricsService` — per-request latency/counter accounting,
* :class:`SerializedService` — a lock serialising access to a service whose
  implementation is not thread-safe (one embedded shard engine).

``KyrixBackend`` and ``ClusterRouter`` still exist as facades (deprecated
as *direct* frontend endpoints — see :func:`repro.serving.build_service`)
but compose these middleware internally, so the behaviour is defined
exactly once.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from ..metrics.collector import LatencyBreakdown, MetricsCollector
from ..metrics.timer import Timer
from ..server.cache import LRUCache
from ..telemetry import get_tracer
from .base import DataService, ServiceMiddleware

if TYPE_CHECKING:
    from ..cluster.coalescer import RequestCoalescer
    from ..net.protocol import DataRequest, DataResponse


class CachingService(ServiceMiddleware):
    """LRU response caching in front of any :class:`DataService`.

    A cache hit is answered without touching ``inner``: the cached objects
    are re-wrapped in a fresh :class:`~repro.net.protocol.DataResponse`
    addressed to the incoming request with ``from_cache=True`` and zero
    query time (the per-shard timing breakdown of a cached scatter-gather
    is preserved for attribution).  Responses that were themselves cache
    hits or coalesced hand-me-downs are not re-inserted.
    """

    def __init__(
        self,
        inner: DataService,
        *,
        entries: int | None = None,
        cache: "LRUCache[DataResponse] | None" = None,
    ) -> None:
        super().__init__(inner)
        if cache is not None:
            self.cache = cache
        else:
            self.cache = LRUCache(0 if entries is None else entries)

    @property
    def stats(self) -> Any:
        return self.cache.stats

    def handle(self, request: "DataRequest") -> "DataResponse":
        from ..net.protocol import DataResponse

        with get_tracer().span("cache") as span:
            key = request.cache_key()
            cached = self.cache.get(key)
            if cached is not None:
                span.set_attribute("hit", True)
                return DataResponse(
                    request=request,
                    objects=cached.objects,
                    query_ms=0.0,
                    from_cache=True,
                    queries_issued=0,
                    shard_ms=dict(cached.shard_ms),
                )
            span.set_attribute("hit", False)
            response = self.inner.handle(request)
            if not response.from_cache and not response.coalesced:
                self.cache.put(key, response)
            return response

    def warm(self, request: "DataRequest") -> None:
        if self.cache.peek(request.cache_key()) is None:
            self.handle(request)


class CoalescingService(ServiceMiddleware):
    """Single-flight request coalescing in front of any :class:`DataService`.

    Identical concurrent requests (same cache key) share one ``inner``
    call: the first becomes the leader, the rest block and receive a copy
    of the leader's response marked ``coalesced=True`` with
    ``queries_issued=0`` (they issued no queries of their own).
    """

    def __init__(
        self, inner: DataService, *, coalescer: "RequestCoalescer | None" = None
    ) -> None:
        super().__init__(inner)
        if coalescer is None:
            from ..cluster.coalescer import RequestCoalescer

            coalescer = RequestCoalescer()
        self.coalescer = coalescer

    @property
    def stats(self) -> Any:
        return self.coalescer.stats

    def handle(self, request: "DataRequest") -> "DataResponse":
        from ..net.protocol import DataResponse

        with get_tracer().span("coalesce") as span:
            response, follower = self.coalescer.coalesce(
                request.cache_key(), lambda: self.inner.handle(request)
            )
            span.set_attribute("role", "follower" if follower else "leader")
            if not follower:
                return response
            return DataResponse(
                request=request,
                objects=response.objects,
                query_ms=response.query_ms,
                from_cache=False,
                queries_issued=0,
                shard_ms=dict(response.shard_ms),
                coalesced=True,
            )


class ServiceMetrics:
    """Thread-safe counters kept by :class:`MetricsService`.

    ``handle_ms_total`` is the *measured* wall-clock spent inside
    ``handle()`` (middleware and transport included); the collector's
    breakdowns carry the *modelled* ``query_ms`` — the two stay separate so
    modelled and measured time are never conflated.
    """

    def __init__(self) -> None:
        self.collector = MetricsCollector()
        self.handle_ms_total: float = 0.0
        self._lock = threading.Lock()

    def charge_handle_ms(self, elapsed_ms: float) -> None:
        with self._lock:
            self.handle_ms_total += elapsed_ms

    @property
    def requests(self) -> int:
        return self.collector.counters.get("requests", 0)

    @property
    def cache_hits(self) -> int:
        return self.collector.counters.get("cache_hits", 0)

    @property
    def coalesced(self) -> int:
        return self.collector.counters.get("coalesced", 0)

    def snapshot(self) -> dict[str, float]:
        counters: dict[str, float] = dict(self.collector.counters)
        requests = self.requests
        counters["handle_ms_total"] = self.handle_ms_total
        counters["average_handle_ms"] = (
            self.handle_ms_total / requests if requests else 0.0
        )
        counters["average_query_ms"] = self.collector.average_response_ms()
        return counters

    def reset(self) -> None:
        self.collector.reset()
        with self._lock:
            self.handle_ms_total = 0.0


class MetricsService(ServiceMiddleware):
    """Records one :class:`~repro.metrics.collector.LatencyBreakdown` per request.

    ``query_ms`` of the breakdown is the response's reported (modelled)
    query time; the measured wall-clock of the whole ``handle`` call
    (including middleware and transport overhead below this layer) is
    accumulated separately in ``stats.handle_ms_total``, so modelled and
    measured time stay distinguishable.
    """

    def __init__(self, inner: DataService) -> None:
        super().__init__(inner)
        self.metrics = ServiceMetrics()

    @property
    def stats(self) -> ServiceMetrics:
        return self.metrics

    def handle(self, request: "DataRequest") -> "DataResponse":
        collector = self.metrics.collector
        timer = Timer()
        timer.start()
        response = self.inner.handle(request)
        elapsed_ms = timer.stop()
        collector.record(
            LatencyBreakdown(
                query_ms=response.query_ms,
                cache_hit=response.from_cache,
                requests=1,
                objects_fetched=len(response.objects),
            )
        )
        collector.bump("requests")
        self.metrics.charge_handle_ms(elapsed_ms)
        if response.from_cache:
            collector.bump("cache_hits")
        if response.coalesced:
            collector.bump("coalesced")
        return response


class SerializedService(ServiceMiddleware):
    """Serialises every call into a service that is not thread-safe.

    The stand-in for a single-threaded worker process: one embedded shard
    engine (``KyrixBackend`` over its own database) can be shared by the
    parallel scatter-gather executor and concurrent sessions as long as a
    lock covers each call end-to-end.
    """

    def __init__(self, inner: DataService, *, lock: threading.Lock | None = None) -> None:
        super().__init__(inner)
        self.lock = lock or threading.Lock()

    def handle(self, request: "DataRequest") -> "DataResponse":
        with self.lock:
            return self.inner.handle(request)

    def warm(self, request: "DataRequest") -> None:
        with self.lock:
            self.inner.warm(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        with self.lock:
            return self.inner.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        with self.lock:
            return self.inner.layer_density(canvas_id, layer_index)
