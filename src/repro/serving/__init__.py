"""The unified serving API: one protocol, composable middleware, one factory.

This package is the explicit form of the seam the paper draws between the
frontend and the backend serving surface:

* :mod:`repro.serving.base` — the :class:`DataService` protocol
  (``handle`` / ``warm`` / ``canvas_info`` / ``layer_density`` plus
  ``compiled`` / ``config`` / ``stats`` / ``close``) and the
  :class:`ServiceMiddleware` composition primitive,
* :mod:`repro.serving.middleware` — :class:`CachingService`,
  :class:`CoalescingService`, :class:`MetricsService` and
  :class:`SerializedService`, the cross-cutting behaviours previously
  hard-wired into ``KyrixBackend`` and ``ClusterRouter``,
* :mod:`repro.serving.transport` — :class:`LocalTransport` /
  :class:`RemoteBackendStub` / :class:`TransportService`, putting the
  :mod:`repro.net.protocol` JSON encoding on the shard boundary,
* :mod:`repro.serving.replica` — :class:`ReplicaService`, fronting N
  interchangeable replicas of a shard with load balancing, circuit
  breaking and failover,
* :mod:`repro.serving.faults` — :class:`FaultInjectingService` /
  :class:`FaultInjectingTransport` driven by deterministic
  :class:`FaultSchedule` plans, the sanctioned way to exercise failure
  paths in tests and benchmarks,
* :mod:`repro.serving.factory` — :func:`build_service`, the single entry
  point call sites use instead of assembling stacks by hand.

Quickstart::

    from repro.serving import build_service
    service = build_service(config, database=database, compiled=compiled)
    frontend = KyrixFrontend(service, dbox_scheme())
"""

from .base import DataService, ServiceMiddleware, stack_layers, unwrap
from .factory import build_service, is_factory_built, mark_factory_built
from .faults import (
    FaultInjectingService,
    FaultInjectingTransport,
    FaultRule,
    FaultSchedule,
    InjectedFaultError,
    fault_replica,
    kill_worker,
)
from .middleware import (
    CachingService,
    CoalescingService,
    MetricsService,
    SerializedService,
    ServiceMetrics,
)
from .replica import REPLICA_POLICIES, ReplicaService, ReplicaSetStats
from .transport import (
    LocalTransport,
    RemoteBackendStub,
    ShardTransport,
    TransportError,
    TransportService,
    WireStats,
    collect_wire_stats,
)
from .worker import (
    ShardSpec,
    WorkerHandle,
    WorkerPool,
    build_shard_spec,
    database_checksum,
    worker_main,
)

__all__ = [
    "REPLICA_POLICIES",
    "CachingService",
    "CoalescingService",
    "DataService",
    "FaultInjectingService",
    "FaultInjectingTransport",
    "FaultRule",
    "FaultSchedule",
    "InjectedFaultError",
    "LocalTransport",
    "MetricsService",
    "RemoteBackendStub",
    "ReplicaService",
    "ReplicaSetStats",
    "SerializedService",
    "ServiceMetrics",
    "ServiceMiddleware",
    "ShardSpec",
    "ShardTransport",
    "TransportError",
    "TransportService",
    "WireStats",
    "WorkerHandle",
    "WorkerPool",
    "build_service",
    "collect_wire_stats",
    "is_factory_built",
    "mark_factory_built",
    "build_shard_spec",
    "database_checksum",
    "fault_replica",
    "kill_worker",
    "stack_layers",
    "unwrap",
    "worker_main",
]
