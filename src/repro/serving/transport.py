"""Wire-level transport for the serving surface.

The router used to call shard backends in-process with live Python objects;
nothing guaranteed the :mod:`repro.net.protocol` JSON encoding could carry
a shard conversation losslessly.  This module puts the protocol on the
shard boundary for real:

* :class:`LocalTransport` — the server side of the wire: it accepts an
  encoded *envelope* (operation name + JSON params), decodes it, dispatches
  to a server-side :class:`~repro.serving.base.DataService`, and returns the
  encoded reply.  It is the in-process stand-in for an HTTP endpoint — the
  bytes that cross it are exactly the bytes a remote deployment would send.
* :class:`RemoteBackendStub` — the client side: a :class:`DataService`
  whose every call is encoded, pushed through a transport, and decoded
  back.  Point it at a :class:`LocalTransport` for wire-faithful in-process
  shards today, or at a socket/HTTP transport for a multi-node deployment
  tomorrow; the router cannot tell the difference.
* :class:`TransportService` — middleware gluing the two together around an
  inner service, so ``TransportService(shard)`` makes every shard call
  round-trip ``encode -> decode -> handle -> encode -> decode``.

Both ends speak two codecs.  The ``handle`` hot path crosses either as
the legacy JSON envelope or as a :mod:`repro.net.columnar` binary message,
selected per connection by a one-frame hello (``cluster.wire_codec``
decides the preference: ``auto`` prefers binary with JSON fallback);
metadata operations (``warm``/``canvas_info``/``layer_density``) always
ride JSON envelopes.  Decoded responses are byte-identical across codecs —
that is the law this seam exists to enforce.

An optional :class:`~repro.net.link.SimulatedLink` charges each reply's
measured byte size, so shard-boundary traffic shows up in link statistics
(and, with ``simulate_delay``, as real wall-clock latency the parallel
scatter-gather then overlaps across shards).  Independently of the link,
every stub counts its real payload traffic (:class:`WireStats`), which is
what the scaling benchmark reports as ``wire_bytes_per_step``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from ..errors import FetchError, KyrixError, ProtocolError
from ..net import columnar
from ..net.protocol import DataRequest, DataResponse
from ..net.socket_transport import FRAME_HEADER
from ..telemetry import get_tracer
from .base import DataService, ServiceMiddleware

if TYPE_CHECKING:
    from ..compiler.plan import CompiledApplication
    from ..config import KyrixConfig
    from ..net.link import SimulatedLink


@runtime_checkable
class ShardTransport(Protocol):
    """One request/reply exchange of encoded payloads.

    ``roundtrip`` is the minimal (legacy) surface: untagged JSON text both
    ways.  Codec-aware transports additionally expose
    ``negotiate(preference) -> str`` and
    ``exchange(codec, body) -> (reply_codec, reply_body)``; the stub
    detects them by presence and falls back to ``roundtrip`` otherwise, so
    wrappers like
    :class:`~repro.serving.faults.FaultInjectingTransport` keep working
    unchanged (their conversations simply stay JSON).
    """

    def roundtrip(self, payload: str) -> str:
        """Send one encoded envelope, return the encoded reply."""
        ...

    def close(self) -> None: ...


def encode_envelope(op: str, params: dict[str, Any]) -> str:
    """Encode one operation envelope (the transport's request payload)."""
    return json.dumps({"op": op, "params": params}, sort_keys=True)


def encode_reply(result: Any) -> str:
    """Encode a successful reply."""
    return json.dumps({"ok": True, "result": result}, sort_keys=True)


def splice_reply(result_json: str) -> str:
    """Encode a successful reply around an already-encoded result.

    ``result_json`` must be valid JSON text (e.g. ``DataResponse.to_json()``
    output); splicing it verbatim keeps the hot path at exactly one encode
    on the server and one decode on the client instead of re-parsing the
    payload just to nest it.
    """
    return f'{{"ok": true, "result": {result_json}}}'


def encode_error(error: BaseException) -> str:
    """Encode a server-side failure so the stub can re-raise it."""
    return json.dumps(
        {"ok": False, "error": {"type": type(error).__name__, "message": str(error)}},
        sort_keys=True,
    )


class TransportError(KyrixError):
    """A server-side error re-raised on the client side of a transport."""


@dataclass(frozen=True)
class WireStats:
    """Measured shard-boundary traffic of one (or a sum of) transport stubs.

    Byte counts are frame payloads plus the 4-byte length header — what a
    socket actually carries per round-trip, whether the transport under
    the stub is a real socket or its in-process stand-in.
    """

    calls: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_sent + self.bytes_received

    def __add__(self, other: "WireStats") -> "WireStats":
        return WireStats(
            calls=self.calls + other.calls,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
        )


class LocalTransport:
    """The server end of the wire, dispatching envelopes to a service.

    Every operation crosses fully encoded both ways — responses are
    produced with :meth:`DataResponse.to_json` (or
    :func:`repro.net.columnar.encode_response` on a binary conversation)
    and never leak live objects, which is what makes the pair
    wire-faithful.  ``codecs`` is the set this endpoint accepts for the
    ``handle`` hot path; :meth:`roundtrip_frame` is the tagged-frame
    server surface (hello negotiation, binary messages, tagged JSON and
    legacy untagged JSON), :meth:`roundtrip` the legacy text surface.
    """

    def __init__(
        self, service: DataService, *, codecs: tuple[str, ...] | None = None
    ) -> None:
        self.service = service
        self.codecs = (
            tuple(codecs)
            if codecs
            else (columnar.CODEC_BINARY, columnar.CODEC_JSON)
        )

    def roundtrip(self, payload: str) -> str:
        try:
            envelope = json.loads(payload)
            op = envelope["op"]
            params = envelope.get("params", {})
            if op == "handle":
                if columnar.CODEC_JSON not in self.codecs:
                    raise ProtocolError(
                        "this endpoint serves 'handle' only under the "
                        "binary wire codec (wire_codec='binary')"
                    )
                # Hot path: one decode (the envelope) and one encode (the
                # response), spliced into the reply frame verbatim.  A
                # trace context riding the request is lifted off before the
                # request is rebuilt, so server-side caches and responses
                # stay identical whether or not the caller traces.
                raw_request = dict(params["request"])
                context = raw_request.pop("trace", None)
                request = DataRequest(**raw_request)
                tracer = get_tracer()
                with tracer.remote_trace(context) as collected:
                    response = self.service.handle(request)
                if collected is not None and collected.spans:
                    return splice_reply(response.to_json(trace=collected.spans))
                return splice_reply(response.to_json())
            return encode_reply(self._dispatch(op, params))
        except Exception as error:  # noqa: BLE001 - faults must cross the wire
            return encode_error(error)

    def roundtrip_frame(self, payload: bytes) -> bytes:
        """The tagged-frame server: dispatch one payload on its codec tag.

        ``H`` answers the codec hello, ``B`` serves a binary message, ``J``
        unwraps a tagged JSON envelope; anything else is treated as a
        legacy untagged JSON envelope and answered untagged, so pre-codec
        peers interoperate byte-for-byte.
        """
        tag = payload[:1]
        if tag == columnar.TAG_HELLO:
            return columnar.answer_hello(payload[1:], self.codecs)
        if tag == columnar.TAG_BINARY:
            return columnar.TAG_BINARY + self._serve_binary(payload[1:])
        if tag == columnar.TAG_JSON:
            reply = self.roundtrip(payload[1:].decode("utf-8", errors="replace"))
            return columnar.TAG_JSON + reply.encode("utf-8")
        return self.roundtrip(
            payload.decode("utf-8", errors="replace")
        ).encode("utf-8")

    def _serve_binary(self, body: bytes) -> bytes:
        try:
            if columnar.CODEC_BINARY not in self.codecs:
                raise ProtocolError(
                    "this endpoint does not accept the binary wire codec "
                    "(wire_codec='json')"
                )
            request, context = columnar.decode_request(body)
            tracer = get_tracer()
            with tracer.remote_trace(context) as collected:
                response = self.service.handle(request)
            if collected is not None and collected.spans:
                return columnar.encode_response(response, trace=collected.spans)
            return columnar.encode_response(response)
        except Exception as error:  # noqa: BLE001 - faults must cross the wire
            return columnar.encode_error(error)

    def negotiate(self, preference: tuple[str, ...]) -> str:
        """Pick the first client-preferred codec this endpoint accepts."""
        chosen = columnar.negotiate_codec(tuple(preference), self.codecs)
        if chosen is None:
            raise ProtocolError(
                f"codec negotiation failed: client offers {tuple(preference)}, "
                f"server accepts {self.codecs}"
            )
        return chosen

    def exchange(self, codec: str, body: bytes) -> tuple[str, bytes]:
        """One in-process tagged round-trip (the socket transport's twin)."""
        if codec == columnar.CODEC_BINARY:
            reply = self.roundtrip_frame(columnar.TAG_BINARY + body)
        else:
            reply = self.roundtrip_frame(body)
        first = reply[:1]
        if first == columnar.TAG_BINARY:
            return columnar.CODEC_BINARY, reply[1:]
        if first == columnar.TAG_JSON:
            return columnar.CODEC_JSON, reply[1:]
        return columnar.CODEC_JSON, reply

    def _dispatch(self, op: str, params: dict[str, Any]) -> Any:
        if op == "warm":
            self.service.warm(DataRequest(**params["request"]))
            return None
        if op == "canvas_info":
            return self.service.canvas_info(params["canvas_id"])
        if op == "layer_density":
            return self.service.layer_density(
                params["canvas_id"], params["layer_index"]
            )
        raise FetchError(f"unknown transport operation {op!r}")

    def close(self) -> None:
        self.service.close()


class RemoteBackendStub:
    """A :class:`DataService` whose calls travel over a :class:`ShardTransport`.

    ``compiled`` and ``config`` are client-side metadata handed to the stub
    at construction (a remote deployment ships the compiled plan to every
    node; re-sending it per request would be absurd).  Everything else —
    requests, responses, canvas metadata — crosses the transport encoded.

    ``codecs`` is the client's codec preference for the ``handle`` hot
    path (first entry preferred); what actually runs is negotiated with
    the far side per connection, and a transport without the codec-aware
    surface (``negotiate``/``exchange``) pins the conversation to legacy
    JSON.  The stub counts its own payload traffic either way — see
    :attr:`wire_stats`.
    """

    def __init__(
        self,
        transport: ShardTransport,
        compiled: "CompiledApplication",
        config: "KyrixConfig",
        *,
        link: "SimulatedLink | None" = None,
        codecs: tuple[str, ...] | None = None,
    ) -> None:
        self.transport = transport
        self._compiled = compiled
        self._config = config
        self.link = link
        self.codecs = (
            tuple(codecs)
            if codecs
            else (columnar.CODEC_BINARY, columnar.CODEC_JSON)
        )
        self._wire_lock = threading.Lock()
        self._wire_calls = 0
        self._wire_sent = 0
        self._wire_received = 0

    @property
    def compiled(self) -> "CompiledApplication":
        return self._compiled

    @property
    def config(self) -> "KyrixConfig":
        return self._config

    @property
    def stats(self) -> Any:
        return self.link.stats if self.link is not None else None

    @property
    def wire_stats(self) -> WireStats:
        """Payload traffic this stub has pushed through its transport."""
        with self._wire_lock:
            return WireStats(
                calls=self._wire_calls,
                bytes_sent=self._wire_sent,
                bytes_received=self._wire_received,
            )

    # -- the wire ---------------------------------------------------------------------

    def _count_wire(self, sent: int, received: int) -> None:
        with self._wire_lock:
            self._wire_calls += 1
            self._wire_sent += sent + FRAME_HEADER.size
            self._wire_received += received + FRAME_HEADER.size

    def _select_codec(self) -> str:
        """The codec the ``handle`` hot path uses on this transport."""
        negotiate = getattr(self.transport, "negotiate", None)
        if negotiate is None or columnar.CODEC_BINARY not in self.codecs:
            return columnar.CODEC_JSON
        return negotiate(self.codecs)

    @staticmethod
    def _parse_json_reply(reply_text: str) -> Any:
        reply = json.loads(reply_text)
        if not reply.get("ok", False):
            error = reply.get("error", {})
            raise TransportError(
                f"{error.get('type', 'Error')}: {error.get('message', 'remote failure')}"
            )
        return reply["result"]

    def _call(self, op: str, params: dict[str, Any]) -> Any:
        payload = encode_envelope(op, params)
        exchange = getattr(self.transport, "exchange", None)
        if exchange is not None:
            body = payload.encode("utf-8")
            _, reply_body = exchange(columnar.CODEC_JSON, body)
            self._count_wire(len(body), len(reply_body))
            reply_text = reply_body.decode("utf-8")
        else:
            reply_text = self.transport.roundtrip(payload)
            self._count_wire(
                len(payload.encode("utf-8")), len(reply_text.encode("utf-8"))
            )
        if self.link is not None:
            # Charge the measured byte size of the reply (the request side
            # is covered by the link's per-request overhead term).
            self.link.charge_request(len(reply_text.encode("utf-8")))
        return self._parse_json_reply(reply_text)

    def _handle_binary(
        self, request: DataRequest, context: dict[str, Any] | None
    ) -> tuple[DataResponse, list[dict[str, Any]] | None]:
        body = columnar.encode_request(request, trace=context)
        reply_codec, reply_body = self.transport.exchange(
            columnar.CODEC_BINARY, body
        )
        self._count_wire(len(body), len(reply_body))
        if self.link is not None:
            self.link.charge_request(len(reply_body))
        if reply_codec != columnar.CODEC_BINARY:
            # The far side answered the binary request with a JSON envelope
            # (an error from a codec-restricted endpoint): decode it the
            # JSON way so the failure surfaces typed.
            result = self._parse_json_reply(reply_body.decode("utf-8"))
            remote_spans = result.pop("trace", None)
            return DataResponse.from_dict(result), remote_spans
        if columnar.message_kind(reply_body) == columnar.MSG_ERROR:
            name, message = columnar.decode_error(reply_body)
            raise TransportError(f"{name}: {message}")
        return columnar.decode_response(reply_body)

    # -- DataService ------------------------------------------------------------------

    def handle(self, request: DataRequest) -> DataResponse:
        tracer = get_tracer()
        with tracer.span("rpc", op="handle") as span:
            # The trace context is stamped onto the wire form only — the
            # caller's request object (and any cache keyed on it) never
            # sees it.
            context = tracer.current_context()
            if self._select_codec() == columnar.CODEC_BINARY:
                response, remote_spans = self._handle_binary(request, context)
            else:
                params = {"request": request.to_dict()}
                if context is not None:
                    params["request"]["trace"] = context
                result = self._call("handle", params)
                remote_spans = result.pop("trace", None)
                response = DataResponse.from_dict(result)
            if remote_spans:
                # Spans recorded on the far side come home inside the
                # reply; draining them here keeps the decoded response
                # byte-identical to an untraced one.
                tracer.ingest(remote_spans)
                span.set_attribute("remote_spans", len(remote_spans))
            return response

    def warm(self, request: DataRequest) -> None:
        self._call("warm", {"request": request.to_dict()})

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self._call("canvas_info", {"canvas_id": canvas_id})

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return float(
            self._call(
                "layer_density", {"canvas_id": canvas_id, "layer_index": layer_index}
            )
        )

    def close(self) -> None:
        self.transport.close()


class TransportService(ServiceMiddleware):
    """Middleware making every call to ``inner`` wire-faithful.

    Composes a :class:`LocalTransport` (server side) and a
    :class:`RemoteBackendStub` (client side) around the inner service; a
    call entering this layer is encoded, decoded, served, re-encoded and
    re-decoded — byte-for-byte what a networked shard would do.

    ``codecs`` (both the server's accepted set and the client's
    preference — the pair shares one configuration, exactly like a worker
    deployment rolled out from one config) defaults to the inner service's
    ``config.cluster.wire_codec``.
    """

    def __init__(
        self,
        inner: DataService,
        *,
        link: "SimulatedLink | None" = None,
        codecs: tuple[str, ...] | None = None,
    ) -> None:
        super().__init__(inner)
        if codecs is None:
            try:
                mode = inner.config.cluster.wire_codec
            except AttributeError:
                mode = "auto"
            codecs = columnar.codec_preference(mode)
        self.transport = LocalTransport(inner, codecs=codecs)
        self.stub = RemoteBackendStub(
            self.transport, inner.compiled, inner.config, link=link, codecs=codecs
        )

    @property
    def stats(self) -> Any:
        return self.stub.stats

    def handle(self, request: DataRequest) -> DataResponse:
        return self.stub.handle(request)

    def warm(self, request: DataRequest) -> None:
        self.stub.warm(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self.stub.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self.stub.layer_density(canvas_id, layer_index)


def collect_wire_stats(service: DataService) -> WireStats:
    """Sum the measured shard-boundary traffic of every stub in a stack.

    Walks the stack like :func:`~repro.serving.base.stack_layers` and adds
    up the :attr:`RemoteBackendStub.wire_stats` of every transport seam —
    whether the stub sits inside a :class:`TransportService` (threads/wire
    topologies) or terminates a branch directly (worker processes).
    """
    from .base import stack_layers

    total = WireStats()
    for layer in stack_layers(service):
        if isinstance(layer, TransportService):
            total = total + layer.stub.wire_stats
        elif isinstance(layer, RemoteBackendStub):
            total = total + layer.wire_stats
    return total
