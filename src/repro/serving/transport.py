"""Wire-level transport for the serving surface.

The router used to call shard backends in-process with live Python objects;
nothing guaranteed the :mod:`repro.net.protocol` JSON encoding could carry
a shard conversation losslessly.  This module puts the protocol on the
shard boundary for real:

* :class:`LocalTransport` — the server side of the wire: it accepts an
  encoded *envelope* (operation name + JSON params), decodes it, dispatches
  to a server-side :class:`~repro.serving.base.DataService`, and returns the
  encoded reply.  It is the in-process stand-in for an HTTP endpoint — the
  bytes that cross it are exactly the bytes a remote deployment would send.
* :class:`RemoteBackendStub` — the client side: a :class:`DataService`
  whose every call is encoded, pushed through a transport, and decoded
  back.  Point it at a :class:`LocalTransport` for wire-faithful in-process
  shards today, or at a socket/HTTP transport for a multi-node deployment
  tomorrow; the router cannot tell the difference.
* :class:`TransportService` — middleware gluing the two together around an
  inner service, so ``TransportService(shard)`` makes every shard call
  round-trip ``encode -> decode -> handle -> encode -> decode``.

An optional :class:`~repro.net.link.SimulatedLink` charges each envelope's
measured byte size, so shard-boundary traffic shows up in link statistics
(and, with ``simulate_delay``, as real wall-clock latency the parallel
scatter-gather then overlaps across shards).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from ..errors import FetchError, KyrixError
from ..net.protocol import DataRequest, DataResponse
from ..telemetry import get_tracer
from .base import DataService, ServiceMiddleware

if TYPE_CHECKING:
    from ..compiler.plan import CompiledApplication
    from ..config import KyrixConfig
    from ..net.link import SimulatedLink


@runtime_checkable
class ShardTransport(Protocol):
    """One request/reply exchange of encoded payloads."""

    def roundtrip(self, payload: str) -> str:
        """Send one encoded envelope, return the encoded reply."""
        ...

    def close(self) -> None: ...


def encode_envelope(op: str, params: dict[str, Any]) -> str:
    """Encode one operation envelope (the transport's request payload)."""
    return json.dumps({"op": op, "params": params}, sort_keys=True)


def encode_reply(result: Any) -> str:
    """Encode a successful reply."""
    return json.dumps({"ok": True, "result": result}, sort_keys=True)


def splice_reply(result_json: str) -> str:
    """Encode a successful reply around an already-encoded result.

    ``result_json`` must be valid JSON text (e.g. ``DataResponse.to_json()``
    output); splicing it verbatim keeps the hot path at exactly one encode
    on the server and one decode on the client instead of re-parsing the
    payload just to nest it.
    """
    return f'{{"ok": true, "result": {result_json}}}'


def encode_error(error: BaseException) -> str:
    """Encode a server-side failure so the stub can re-raise it."""
    return json.dumps(
        {"ok": False, "error": {"type": type(error).__name__, "message": str(error)}},
        sort_keys=True,
    )


class TransportError(KyrixError):
    """A server-side error re-raised on the client side of a transport."""


class LocalTransport:
    """The server end of the wire, dispatching envelopes to a service.

    Every operation crosses as JSON text both ways — responses are produced
    with :meth:`DataResponse.to_json` and never leak live objects, which is
    what makes the pair wire-faithful.
    """

    def __init__(self, service: DataService) -> None:
        self.service = service

    def roundtrip(self, payload: str) -> str:
        try:
            envelope = json.loads(payload)
            op = envelope["op"]
            params = envelope.get("params", {})
            if op == "handle":
                # Hot path: one decode (the envelope) and one encode (the
                # response), spliced into the reply frame verbatim.  A
                # trace context riding the request is lifted off before the
                # request is rebuilt, so server-side caches and responses
                # stay identical whether or not the caller traces.
                raw_request = dict(params["request"])
                context = raw_request.pop("trace", None)
                request = DataRequest(**raw_request)
                tracer = get_tracer()
                with tracer.remote_trace(context) as collected:
                    response = self.service.handle(request)
                if collected is not None and collected.spans:
                    return splice_reply(response.to_json(trace=collected.spans))
                return splice_reply(response.to_json())
            return encode_reply(self._dispatch(op, params))
        except Exception as error:  # noqa: BLE001 - faults must cross the wire
            return encode_error(error)

    def _dispatch(self, op: str, params: dict[str, Any]) -> Any:
        if op == "warm":
            self.service.warm(DataRequest(**params["request"]))
            return None
        if op == "canvas_info":
            return self.service.canvas_info(params["canvas_id"])
        if op == "layer_density":
            return self.service.layer_density(
                params["canvas_id"], params["layer_index"]
            )
        raise FetchError(f"unknown transport operation {op!r}")

    def close(self) -> None:
        self.service.close()


class RemoteBackendStub:
    """A :class:`DataService` whose calls travel over a :class:`ShardTransport`.

    ``compiled`` and ``config`` are client-side metadata handed to the stub
    at construction (a remote deployment ships the compiled plan to every
    node; re-sending it per request would be absurd).  Everything else —
    requests, responses, canvas metadata — crosses the transport encoded.
    """

    def __init__(
        self,
        transport: ShardTransport,
        compiled: "CompiledApplication",
        config: "KyrixConfig",
        *,
        link: "SimulatedLink | None" = None,
    ) -> None:
        self.transport = transport
        self._compiled = compiled
        self._config = config
        self.link = link

    @property
    def compiled(self) -> "CompiledApplication":
        return self._compiled

    @property
    def config(self) -> "KyrixConfig":
        return self._config

    @property
    def stats(self) -> Any:
        return self.link.stats if self.link is not None else None

    # -- the wire ---------------------------------------------------------------------

    def _call(self, op: str, params: dict[str, Any]) -> Any:
        payload = encode_envelope(op, params)
        reply_text = self.transport.roundtrip(payload)
        if self.link is not None:
            # Charge the measured byte size of the reply (the request side
            # is covered by the link's per-request overhead term).
            self.link.charge_request(len(reply_text.encode("utf-8")))
        reply = json.loads(reply_text)
        if not reply.get("ok", False):
            error = reply.get("error", {})
            raise TransportError(
                f"{error.get('type', 'Error')}: {error.get('message', 'remote failure')}"
            )
        return reply["result"]

    # -- DataService ------------------------------------------------------------------

    def handle(self, request: DataRequest) -> DataResponse:
        tracer = get_tracer()
        with tracer.span("rpc", op="handle") as span:
            params = {"request": request.to_dict()}
            context = tracer.current_context()
            if context is not None:
                # Stamp the trace context onto the wire form only — the
                # caller's request object (and any cache keyed on it) never
                # sees it.
                params["request"]["trace"] = context
            result = self._call("handle", params)
            remote_spans = result.pop("trace", None)
            if remote_spans:
                # Spans recorded on the far side come home inside the
                # reply; draining them here keeps the decoded response
                # byte-identical to an untraced one.
                tracer.ingest(remote_spans)
                span.set_attribute("remote_spans", len(remote_spans))
            return DataResponse.from_dict(result)

    def warm(self, request: DataRequest) -> None:
        self._call("warm", {"request": request.to_dict()})

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self._call("canvas_info", {"canvas_id": canvas_id})

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return float(
            self._call(
                "layer_density", {"canvas_id": canvas_id, "layer_index": layer_index}
            )
        )

    def close(self) -> None:
        self.transport.close()


class TransportService(ServiceMiddleware):
    """Middleware making every call to ``inner`` wire-faithful.

    Composes a :class:`LocalTransport` (server side) and a
    :class:`RemoteBackendStub` (client side) around the inner service; a
    call entering this layer is encoded, decoded, served, re-encoded and
    re-decoded — byte-for-byte what a networked shard would do.
    """

    def __init__(
        self, inner: DataService, *, link: "SimulatedLink | None" = None
    ) -> None:
        super().__init__(inner)
        self.transport = LocalTransport(inner)
        self.stub = RemoteBackendStub(
            self.transport, inner.compiled, inner.config, link=link
        )

    @property
    def stats(self) -> Any:
        return self.stub.stats

    def handle(self, request: DataRequest) -> DataResponse:
        return self.stub.handle(request)

    def warm(self, request: DataRequest) -> None:
        self.stub.warm(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self.stub.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self.stub.layer_density(canvas_id, layer_index)
