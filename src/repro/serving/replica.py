"""Replica sets: shard-level load balancing, circuit breaking and failover.

A :class:`ReplicaService` fronts N interchangeable replicas of one shard's
serving stack and implements the :class:`~repro.serving.base.DataService`
protocol itself, so it drops into a middleware stack anywhere a single
service would go (the cluster builder puts it directly behind the router,
one per shard)::

    ClusterRouter ──> ReplicaService ──┬─> replica 0: Transport∘Caching∘Serialized
                                       ├─> replica 1: Transport∘Caching∘Serialized
                                       └─> replica 2: ...

Three concerns live here and nowhere else:

* **Selection** — a pluggable policy picks the replica for each request:
  ``round_robin`` spreads requests evenly (within ±1 across the healthy
  set), ``least_inflight`` steers to the replica with the fewest requests
  currently executing, and ``per_key_affinity`` maps a request's cache key
  to a stable home replica so identical keys always hit the same replica's
  cache.
* **Health** — each replica carries a circuit breaker: after
  ``breaker_threshold`` *consecutive* failures the breaker opens and the
  replica stops receiving traffic; after ``breaker_reset_s`` (measured on
  the injected clock, so tests drive it with a
  :class:`~repro.metrics.timer.VirtualClock`) one trial request probes the
  replica — success closes the breaker, failure re-opens it with a fresh
  timer.  A :class:`~repro.errors.WorkerConnectionError` (the replica's
  worker process refused or tore the connection — it is *gone*, not
  merely erroring) is fatal and opens the breaker on the first failure.
* **Failover** — a replica exception (or a response that arrived after
  ``timeout_ms`` of clock time, raised as
  :class:`~repro.errors.ReplicaTimeoutError`) marks the attempt failed and
  the request retries on the next replica the policy picks, never reusing a
  replica it already tried.  Only when the set is exhausted (or
  ``retry_limit`` attempts are spent) does
  :class:`~repro.errors.AllReplicasFailedError` surface, carrying every
  per-replica cause.

Unlike every other middleware, this layer holds *multiple* children, so it
exposes them as ``children`` (and the richer ``replicas`` accessor) for
:func:`~repro.serving.base.unwrap` to traverse into.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import TYPE_CHECKING, Any, Callable, Hashable, Sequence

from ..config import REPLICA_POLICIES
from ..errors import (
    AllReplicasFailedError,
    FetchError,
    ReplicaTimeoutError,
    WorkerConnectionError,
)
from ..metrics.collector import MetricsCollector
from ..telemetry import get_tracer

if TYPE_CHECKING:
    from ..compiler.plan import CompiledApplication
    from ..config import KyrixConfig
    from ..net.protocol import DataRequest, DataResponse
    from .base import DataService

__all__ = ["REPLICA_POLICIES", "ReplicaService", "ReplicaSetStats"]


class MonotonicClock:
    """Real time behind the same ``now_ms`` surface as ``VirtualClock``."""

    @property
    def now_ms(self) -> float:
        return time.monotonic() * 1000.0


def _affinity_hash(key: Hashable) -> int:
    """A process-stable, deterministic hash for per-key replica affinity."""
    return zlib.crc32(repr(key).encode("utf-8"))


class ReplicaHealth:
    """Per-replica circuit-breaker state (mutated under the set's lock)."""

    __slots__ = ("consecutive_failures", "open_since_ms", "trial_inflight")

    def __init__(self) -> None:
        self.consecutive_failures = 0
        #: Clock time the breaker opened, or ``None`` while closed.
        self.open_since_ms: float | None = None
        #: Whether an open breaker's single trial probe is currently out.
        self.trial_inflight = False


class ReplicaSetStats:
    """Per-replica attribution counters kept by a :class:`ReplicaService`.

    All counters live in one thread-safe
    :class:`~repro.metrics.collector.MetricsCollector` (``requests``,
    ``failovers``, ``breaker_opens``, ``exhausted`` plus
    ``replica{i}_requests`` / ``replica{i}_failures`` per replica), so the
    totals are exact under concurrent traffic.
    """

    def __init__(self, replica_count: int) -> None:
        self.replica_count = replica_count
        self.collector = MetricsCollector()

    # -- recording (called by ReplicaService) -------------------------------

    def record_attempt(self, index: int) -> None:
        self.collector.bump(f"replica{index}_requests")

    def record_failure(self, index: int) -> None:
        self.collector.bump(f"replica{index}_failures")

    # -- reading ------------------------------------------------------------

    @property
    def requests(self) -> int:
        return self.collector.counters.get("requests", 0)

    @property
    def failovers(self) -> int:
        return self.collector.counters.get("failovers", 0)

    @property
    def breaker_opens(self) -> int:
        return self.collector.counters.get("breaker_opens", 0)

    def requests_for(self, index: int) -> int:
        return self.collector.counters.get(f"replica{index}_requests", 0)

    def failures_for(self, index: int) -> int:
        return self.collector.counters.get(f"replica{index}_failures", 0)

    def per_replica_requests(self) -> dict[int, int]:
        return {i: self.requests_for(i) for i in range(self.replica_count)}

    def per_replica_failures(self) -> dict[int, int]:
        return {i: self.failures_for(i) for i in range(self.replica_count)}

    def snapshot(self) -> dict[str, int]:
        return dict(self.collector.counters)

    def reset(self) -> None:
        self.collector.reset()


class ReplicaService:
    """A :class:`DataService` load-balancing over N replica services.

    Parameters
    ----------
    replicas:
        The replica services (same data, independent serving stacks).
    policy:
        One of :data:`REPLICA_POLICIES`.
    retry_limit:
        Maximum attempts per request; ``0`` tries every replica once.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker tuning (consecutive failures to open; seconds of
        clock time before a trial probe).
    timeout_ms:
        When set, a replica call during which the clock advanced past this
        budget counts as a failure (:class:`ReplicaTimeoutError`) and fails
        over, discarding the late response.
    clock:
        Anything with a ``now_ms`` property — a
        :class:`~repro.metrics.timer.VirtualClock` for deterministic tests,
        real time by default.
    observer:
        Optional ``(replica_index, ok) -> None`` hook called after every
        attempt; the cluster router uses it to attribute replica traffic in
        :class:`~repro.cluster.router.ClusterStats`.
    """

    def __init__(
        self,
        replicas: Sequence["DataService"],
        *,
        policy: str = "round_robin",
        retry_limit: int = 0,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 30.0,
        timeout_ms: float | None = None,
        clock: Any | None = None,
        observer: Callable[[int, bool], None] | None = None,
    ) -> None:
        if not replicas:
            raise FetchError("a replica set needs at least one replica")
        if policy not in REPLICA_POLICIES:
            raise FetchError(
                f"unknown replica policy {policy!r}; expected one of {REPLICA_POLICIES}"
            )
        if retry_limit < 0:
            raise FetchError("retry_limit must be non-negative")
        if breaker_threshold < 1:
            raise FetchError("breaker_threshold must be >= 1")
        self._replicas: list["DataService"] = list(replicas)
        self.policy = policy
        self.retry_limit = retry_limit
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.timeout_ms = timeout_ms
        self.clock = clock if clock is not None else MonotonicClock()
        self.observer = observer
        self.stats = ReplicaSetStats(len(self._replicas))
        self._lock = threading.Lock()
        # Condition over the same lock: swap_replica waits on it for the
        # slot's in-flight requests to drain before closing the old stack.
        self._slot_drained = threading.Condition(self._lock)
        self._rr_counter = 0
        self._inflight = [0] * len(self._replicas)
        self._health = [ReplicaHealth() for _ in self._replicas]

    # -- topology -----------------------------------------------------------

    @property
    def replicas(self) -> list["DataService"]:
        """The live replica list (tests swap in fault injectors here)."""
        return self._replicas

    @property
    def children(self) -> tuple["DataService", ...]:
        """The layer's children, traversed by :func:`~repro.serving.base.unwrap`."""
        return tuple(self._replicas)

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    @property
    def inflight(self) -> list[int]:
        """A snapshot of per-replica in-flight request counts."""
        with self._lock:
            return list(self._inflight)

    def breaker_open(self, index: int) -> bool:
        """Whether replica ``index``'s circuit breaker is currently open."""
        with self._lock:
            return self._health[index].open_since_ms is not None

    def __repr__(self) -> str:
        return (
            f"ReplicaService(policy={self.policy!r}, "
            f"replicas={len(self._replicas)})"
        )

    # -- selection ----------------------------------------------------------

    def _admits(self, index: int, now_ms: float) -> bool:
        """Closed breaker, or an open one ready for its single trial probe.

        An open breaker admits exactly one in-flight trial after the reset
        window elapses; concurrent requests keep avoiding the replica until
        that probe settles (success closes the breaker, failure re-arms the
        window).
        """
        health = self._health[index]
        if health.open_since_ms is None:
            return True
        if health.trial_inflight:
            return False
        return now_ms - health.open_since_ms >= self.breaker_reset_s * 1000.0

    def _select(self, key: Hashable | None, tried: set[int]) -> int | None:
        """Pick the next replica to attempt, or ``None`` when exhausted.

        Prefers untried replicas whose breakers admit traffic; when every
        untried breaker is open and cold, falls back to probing them anyway
        (an all-open set must not turn into a permanent outage).
        """
        with self._lock:
            untried = [i for i in range(len(self._replicas)) if i not in tried]
            if not untried:
                return None
            now_ms = self.clock.now_ms
            candidates = [i for i in untried if self._admits(i, now_ms)]
            if not candidates:
                candidates = untried
            if self.policy == "least_inflight":
                index = min(candidates, key=lambda i: (self._inflight[i], i))
            elif self.policy == "per_key_affinity" and key is not None:
                home = _affinity_hash(key) % len(self._replicas)
                index = next(
                    (home + offset) % len(self._replicas)
                    for offset in range(len(self._replicas))
                    if (home + offset) % len(self._replicas) in candidates
                )
            else:  # round_robin (and keyless affinity calls)
                index = candidates[self._rr_counter % len(candidates)]
                self._rr_counter += 1
            if self._health[index].open_since_ms is not None:
                self._health[index].trial_inflight = True
            self._inflight[index] += 1
            return index

    # -- health -------------------------------------------------------------

    def _finish_attempt(self, index: int, ok: bool, *, fatal: bool = False) -> None:
        opened = False
        with self._lock:
            self._inflight[index] -= 1
            if self._inflight[index] == 0:
                # Wake a swap_replica drain wait; notify while holding the
                # condition's own lock (``_slot_drained`` wraps ``_lock``).
                self._slot_drained.notify_all()
            health = self._health[index]
            health.trial_inflight = False
            if ok:
                health.consecutive_failures = 0
                health.open_since_ms = None
            else:
                health.consecutive_failures += 1
                now_ms = self.clock.now_ms
                if health.open_since_ms is not None:
                    # A failed trial probe: re-open with a fresh timer.
                    health.open_since_ms = now_ms
                elif fatal or health.consecutive_failures >= self.breaker_threshold:
                    # A fatal failure (the worker's connection was refused —
                    # the process behind the replica is gone) opens the
                    # breaker immediately instead of burning ``threshold``
                    # doomed attempts on a dead endpoint.
                    health.open_since_ms = now_ms
                    opened = True
        self.stats.record_attempt(index)
        if not ok:
            self.stats.record_failure(index)
        if opened:
            self.stats.collector.bump("breaker_opens")
        if self.observer is not None:
            self.observer(index, ok)

    # -- online replica replacement -----------------------------------------

    def swap_replica(
        self,
        index: int,
        replacement: "DataService",
        *,
        drain_timeout_s: float = 30.0,
        close_old: bool = True,
    ) -> "DataService":
        """Replace replica ``index`` online and return the old stack.

        The read-repair seam: a rebuilt replica swaps in **behind the
        breaker** — the slot's circuit-breaker state resets to closed, so
        the replacement starts taking traffic immediately — and **without
        dropping in-flight requests**: attempts that already picked up the
        old service object run to completion against it (``_invoke`` reads
        ``self._replicas[index]`` exactly once per attempt), and the old
        stack is only closed once the slot's in-flight count drains (or
        ``drain_timeout_s`` elapses — closing a straggler's stack beats
        leaking a worker process).  New attempts route to the replacement
        from the moment the swap happens.
        """
        if not 0 <= index < len(self._replicas):
            raise FetchError(
                f"replica index {index} out of range "
                f"(replica set has {len(self._replicas)})"
            )
        deadline = time.monotonic() + drain_timeout_s
        with self._slot_drained:
            old = self._replicas[index]
            self._replicas[index] = replacement
            # Fresh breaker: the replacement has no failure history.
            self._health[index] = ReplicaHealth()
            while self._inflight[index] > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                # wait() releases the lock, letting _finish_attempt drain.
                self._slot_drained.wait(remaining)
        if close_old:
            old.close()
        return old

    # -- failover core ------------------------------------------------------

    def _invoke(
        self, call: Callable[["DataService"], Any], key: Hashable | None
    ) -> Any:
        self.stats.collector.bump("requests")
        causes: dict[int, BaseException] = {}
        tried: set[int] = set()
        limit = self.retry_limit or len(self._replicas)
        attempts = 0
        while attempts < limit:
            index = self._select(key, tried)
            if index is None:
                break
            attempts += 1
            tried.add(index)
            start_ms = self.clock.now_ms
            try:
                with get_tracer().span(
                    "replica_attempt",
                    replica=index,
                    attempt=attempts,
                    breaker_open=self.breaker_open(index),
                ) as span:
                    result = call(self._replicas[index])
                    if (
                        self.timeout_ms is not None
                        and self.clock.now_ms - start_ms > self.timeout_ms
                    ):
                        raise ReplicaTimeoutError(
                            f"replica {index} took "
                            f"{self.clock.now_ms - start_ms:.1f} ms "
                            f"(> {self.timeout_ms} ms budget)"
                        )
                    span.set_attribute("ok", True)
            except Exception as error:  # noqa: BLE001 - failover boundary
                causes[index] = error
                self._finish_attempt(
                    index, ok=False, fatal=isinstance(error, WorkerConnectionError)
                )
                continue
            self._finish_attempt(index, ok=True)
            if causes:
                self.stats.collector.bump("failovers")
            return result
        self.stats.collector.bump("exhausted")
        raise AllReplicasFailedError(causes, attempts=attempts)

    # -- DataService --------------------------------------------------------

    @property
    def compiled(self) -> "CompiledApplication":
        return self._replicas[0].compiled

    @property
    def config(self) -> "KyrixConfig":
        return self._replicas[0].config

    def handle(self, request: "DataRequest") -> "DataResponse":
        return self._invoke(lambda replica: replica.handle(request), request.cache_key())

    def warm(self, request: "DataRequest") -> None:
        self._invoke(lambda replica: replica.warm(request), request.cache_key())

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self._invoke(
            lambda replica: replica.canvas_info(canvas_id), ("canvas_info", canvas_id)
        )

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self._invoke(
            lambda replica: replica.layer_density(canvas_id, layer_index),
            ("layer_density", canvas_id, layer_index),
        )

    def close(self) -> None:
        for replica in self._replicas:
            replica.close()
