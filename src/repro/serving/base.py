"""The ``DataService`` protocol: the one serving surface of the system.

The paper separates the frontend from a backend serving surface behind an
HTTP+JSON protocol.  Everything that can answer
:class:`~repro.net.protocol.DataRequest` objects — a single
:class:`~repro.server.backend.KyrixBackend`, a sharded
:class:`~repro.cluster.router.ClusterRouter`, a wire-level
:class:`~repro.serving.transport.RemoteBackendStub`, or any middleware
stacked on top — implements this protocol, so frontends, sessions and the
benchmark harness never special-case the backend kind.

:class:`ServiceMiddleware` is the composition primitive: a ``DataService``
wrapping another ``DataService``, forwarding every member by default so a
concrete middleware only overrides the calls it intercepts.  Stacks are
plain nesting, e.g.::

    CachingService(CoalescingService(TransportService(backend)))

and :func:`unwrap` walks ``.inner`` links — descending into every branch of
layers that hold multiple children via ``children`` (replica sets) — to find
a specific layer (or the terminal service) inside a composed stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, TypeVar, runtime_checkable

if TYPE_CHECKING:
    from ..compiler.plan import CompiledApplication
    from ..config import KyrixConfig
    from ..net.protocol import DataRequest, DataResponse


@runtime_checkable
class DataService(Protocol):
    """The serving surface every backend, router, stub and middleware exposes.

    ``compiled`` and ``config`` are the metadata frontends bootstrap from;
    ``stats`` is an implementation-specific counters object (every layer of
    a stack keeps its own).  ``isinstance(obj, DataService)`` performs a
    structural check, so existing duck-typed callers keep working.
    """

    @property
    def compiled(self) -> "CompiledApplication": ...

    @property
    def config(self) -> "KyrixConfig": ...

    @property
    def stats(self) -> Any: ...

    def handle(self, request: "DataRequest") -> "DataResponse":
        """Answer one data request."""
        ...

    def warm(self, request: "DataRequest") -> None:
        """Execute a request purely to populate caches (prefetch path)."""
        ...

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        """Size and layer summary of a canvas (the frontend's bootstrap call)."""
        ...

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        """Average objects per canvas pixel² for one layer."""
        ...

    def close(self) -> None:
        """Release resources (worker pools, transports) held by the service."""
        ...


class ServiceMiddleware:
    """A ``DataService`` that wraps another and forwards everything.

    Subclasses override only the members they intercept (usually
    :meth:`handle` and sometimes :meth:`warm` / ``stats``); metadata and
    lifecycle calls pass straight through to ``inner``.
    """

    def __init__(self, inner: DataService) -> None:
        self.inner = inner

    @property
    def compiled(self) -> "CompiledApplication":
        return self.inner.compiled

    @property
    def config(self) -> "KyrixConfig":
        return self.inner.config

    @property
    def stats(self) -> Any:
        return self.inner.stats

    def handle(self, request: "DataRequest") -> "DataResponse":
        return self.inner.handle(request)

    def warm(self, request: "DataRequest") -> None:
        self.inner.warm(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self.inner.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self.inner.layer_density(canvas_id, layer_index)

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


ServiceT = TypeVar("ServiceT")


def _child_layers(service: Any) -> list[Any]:
    """The services one layer below ``service``.

    Most middleware wraps a single ``.inner``; layers that hold *multiple*
    children (a :class:`~repro.serving.replica.ReplicaService` fronting N
    replica stacks) expose them as a ``children`` sequence instead, and
    traversal descends into every branch.
    """
    inner = getattr(service, "inner", None)
    if inner is not None:
        return [inner]
    children = getattr(service, "children", None)
    if children:
        return list(children)
    return []


def unwrap(service: DataService, kind: type[ServiceT] | None = None) -> ServiceT | None:
    """Find the first layer of type ``kind`` in a middleware stack.

    Walks the stack outside-in, depth-first in branch order:
    single-``inner`` middleware is followed as before, and layers holding
    multiple children (e.g. ``unwrap(service, ReplicaService)`` returning
    the replica layer itself, or digging *through* it into a replica's
    stack) are traversed into every branch, first branch first.  With
    ``kind=None`` the terminal service of the first branch is returned,
    which is never ``None``; with a ``kind`` absent from the stack the
    result is ``None``.
    """
    stack: list[Any] = [service]
    while stack:
        current = stack.pop()
        if kind is not None and isinstance(current, kind):
            return current
        layers_below = _child_layers(current)
        if not layers_below and kind is None:
            return current
        stack.extend(reversed(layers_below))
    return None


def stack_layers(service: DataService) -> list[DataService]:
    """Every layer of the stack outside-in, depth-first in branch order.

    Ends at the terminal service for a plain single-``inner`` chain; for
    stacks holding a multi-child layer (a replica set) every branch's
    layers are included, first branch first.
    """
    layers: list[DataService] = []
    stack: list[Any] = [service]
    while stack:
        current = stack.pop()
        layers.append(current)
        stack.extend(reversed(_child_layers(current)))
    return layers
