"""Rule-based query planner.

The planner turns a parsed statement into a small physical-plan tree.  Its
job in this reproduction mirrors what Kyrix relies on PostgreSQL's planner
for: picking an index access path when the WHERE clause allows it.

Access-path rules, applied to the driving table's conjuncts:

1. an ``intersects(bbox_col, x1, y1, x2, y2)`` conjunct with literal bounds
   and an R-tree on ``bbox_col``  ->  :class:`SpatialScan`;
2. a ``col = literal`` / ``col IN (...)`` conjunct with a B-tree or hash
   index on ``col``  ->  :class:`IndexKeyScan`;
3. otherwise  ->  :class:`SeqScan`.

Joins become :class:`IndexNLJoin` when the inner table has a key index on
its join column (the tuple–tile mapping design's ``tuple_id`` join), and
:class:`HashJoin` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SQLPlanError
from ..storage.database import Database
from ..storage.rtree import Rect
from ..storage.table import Table
from .ast import (
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    Expression,
    FunctionCall,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .functions import (
    AGGREGATE_FUNCTIONS,
    as_key_lookup,
    as_spatial_lookup,
    combine_conjuncts,
    split_conjuncts,
)


# ---------------------------------------------------------------------------
# Physical plan nodes
# ---------------------------------------------------------------------------


class PlanNode:
    """Base class of physical plan nodes."""

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Pretty-print the plan tree (like EXPLAIN)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def children(self) -> list["PlanNode"]:
        return []


@dataclass
class SeqScan(PlanNode):
    table: Table
    binding: str

    def describe(self) -> str:
        return f"SeqScan({self.table.name} as {self.binding})"


@dataclass
class IndexKeyScan(PlanNode):
    table: Table
    binding: str
    column: str
    keys: list[Any]

    def describe(self) -> str:
        return (
            f"IndexKeyScan({self.table.name} as {self.binding}, "
            f"{self.column} in {self.keys!r})"
        )


@dataclass
class SpatialScan(PlanNode):
    table: Table
    binding: str
    column: str
    rect: Rect

    def describe(self) -> str:
        return (
            f"SpatialScan({self.table.name} as {self.binding}, "
            f"{self.column} ∩ {self.rect.as_tuple()})"
        )


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expression

    def describe(self) -> str:
        return "Filter"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class IndexNLJoin(PlanNode):
    """Index nested-loop join: probe the inner table's key index per outer row."""

    outer: PlanNode
    inner_table: Table
    inner_binding: str
    outer_column: ColumnRef
    inner_column: str

    def describe(self) -> str:
        return (
            f"IndexNLJoin(inner={self.inner_table.name} as {self.inner_binding} "
            f"on {self.inner_column})"
        )

    def children(self) -> list[PlanNode]:
        return [self.outer]


@dataclass
class HashJoin(PlanNode):
    """Hash join: build a hash table on the inner input, probe with outer rows."""

    outer: PlanNode
    inner: PlanNode
    outer_column: ColumnRef
    inner_column: ColumnRef

    def describe(self) -> str:
        return "HashJoin"

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]


@dataclass
class Project(PlanNode):
    child: PlanNode
    items: list[SelectItem]
    select_star: bool
    distinct: bool = False

    def describe(self) -> str:
        return "Project(*)" if self.select_star else f"Project({len(self.items)} items)"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class Aggregate(PlanNode):
    child: PlanNode
    items: list[SelectItem]
    group_by: list[Expression]

    def describe(self) -> str:
        return f"Aggregate(groups={len(self.group_by)})"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class Sort(PlanNode):
    child: PlanNode
    order_by: list[OrderItem]

    def describe(self) -> str:
        return f"Sort({len(self.order_by)} keys)"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int | None
    offset: int | None

    def describe(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"

    def children(self) -> list[PlanNode]:
        return [self.child]


# Non-SELECT statement "plans" carry the statement through to the executor.


@dataclass
class DataModification(PlanNode):
    statement: Statement

    def describe(self) -> str:
        return type(self.statement).__name__


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


@dataclass
class PlannedQuery:
    """A plan plus metadata the executor needs."""

    root: PlanNode
    statement: Statement
    uses_index: bool = False
    access_path: str = "seqscan"


class Planner:
    """Plans parsed statements against a :class:`~repro.storage.Database`."""

    def __init__(self, database: Database) -> None:
        self._db = database

    def plan(self, statement: Statement) -> PlannedQuery:
        if isinstance(statement, SelectStatement):
            return self._plan_select(statement)
        if isinstance(
            statement,
            (InsertStatement, UpdateStatement, DeleteStatement,
             CreateTableStatement, CreateIndexStatement),
        ):
            return PlannedQuery(root=DataModification(statement), statement=statement)
        raise SQLPlanError(f"cannot plan statement of type {type(statement).__name__}")

    # -- SELECT planning -------------------------------------------------------

    def _plan_select(self, statement: SelectStatement) -> PlannedQuery:
        if statement.table is None:
            # SELECT of constant expressions only.
            root: PlanNode = Project(
                child=SeqScanConstant(), items=list(statement.items),
                select_star=False, distinct=statement.distinct,
            )
            return PlannedQuery(root=root, statement=statement, access_path="constant")

        table = self._db.table(statement.table.name)
        binding = statement.table.binding
        conjuncts = split_conjuncts(statement.where)

        access, remaining, access_path = self._choose_access_path(
            table, binding, conjuncts
        )
        node: PlanNode = access

        for join in statement.joins:
            node = self._plan_join(node, join)

        residual = combine_conjuncts(remaining)
        if residual is not None:
            node = Filter(child=node, predicate=residual)

        if statement.group_by or self._has_aggregates(statement.items):
            node = Aggregate(
                child=node,
                items=list(statement.items),
                group_by=list(statement.group_by),
            )
        else:
            node = Project(
                child=node,
                items=list(statement.items),
                select_star=statement.select_star,
                distinct=statement.distinct,
            )

        if statement.order_by:
            node = Sort(child=node, order_by=list(statement.order_by))
        if statement.limit is not None or statement.offset is not None:
            node = LimitNode(child=node, limit=statement.limit, offset=statement.offset)

        return PlannedQuery(
            root=node,
            statement=statement,
            uses_index=access_path != "seqscan",
            access_path=access_path,
        )

    def _choose_access_path(
        self, table: Table, binding: str, conjuncts: list[Expression]
    ) -> tuple[PlanNode, list[Expression], str]:
        """Pick the driving access path and return the unconsumed conjuncts."""
        # Rule 1: spatial probe.
        for index, conjunct in enumerate(conjuncts):
            spatial = as_spatial_lookup(conjunct)
            if spatial is None:
                continue
            column_ref, rect = spatial
            if not self._column_belongs(column_ref, table, binding):
                continue
            if table.find_index_on(column_ref.column, kinds=("rtree",)) is not None:
                remaining = conjuncts[:index] + conjuncts[index + 1 :]
                scan = SpatialScan(
                    table=table, binding=binding, column=column_ref.column, rect=rect
                )
                return scan, remaining, "spatial"
        # Rule 2: key lookup.
        for index, conjunct in enumerate(conjuncts):
            lookup = as_key_lookup(conjunct)
            if lookup is None:
                continue
            column_ref, keys = lookup
            if not self._column_belongs(column_ref, table, binding):
                continue
            if table.find_index_on(column_ref.column, kinds=("btree", "hash")) is not None:
                remaining = conjuncts[:index] + conjuncts[index + 1 :]
                scan = IndexKeyScan(
                    table=table, binding=binding, column=column_ref.column, keys=keys
                )
                return scan, remaining, "key"
        # Rule 3: sequential scan.
        return SeqScan(table=table, binding=binding), list(conjuncts), "seqscan"

    def _plan_join(self, outer: PlanNode, join: JoinClause) -> PlanNode:
        inner_table = self._db.table(join.table.name)
        inner_binding = join.table.binding

        # Work out which side of the ON clause belongs to the inner table.
        if self._column_belongs(join.right, inner_table, inner_binding):
            inner_column, outer_column = join.right, join.left
        elif self._column_belongs(join.left, inner_table, inner_binding):
            inner_column, outer_column = join.left, join.right
        else:
            raise SQLPlanError(
                f"join condition does not reference joined table {join.table.name!r}"
            )

        if inner_table.find_index_on(inner_column.column, kinds=("btree", "hash")):
            return IndexNLJoin(
                outer=outer,
                inner_table=inner_table,
                inner_binding=inner_binding,
                outer_column=outer_column,
                inner_column=inner_column.column,
            )
        return HashJoin(
            outer=outer,
            inner=SeqScan(table=inner_table, binding=inner_binding),
            outer_column=outer_column,
            inner_column=ColumnRef(column=inner_column.column, table=inner_binding),
        )

    @staticmethod
    def _column_belongs(ref: ColumnRef, table: Table, binding: str) -> bool:
        if ref.table is not None and ref.table not in (binding, table.name):
            return False
        return table.schema.has_column(ref.column)

    @staticmethod
    def _has_aggregates(items: list[SelectItem]) -> bool:
        def contains_aggregate(expression: Expression) -> bool:
            if isinstance(expression, FunctionCall):
                if expression.name in AGGREGATE_FUNCTIONS and (
                    expression.star or len(expression.args) == 1
                ):
                    return True
                return any(contains_aggregate(a) for a in expression.args)
            for attr in ("left", "right", "operand"):
                child = getattr(expression, attr, None)
                if isinstance(child, Expression) and contains_aggregate(child):
                    return True
            return False

        return any(contains_aggregate(item.expression) for item in items)


@dataclass
class SeqScanConstant(PlanNode):
    """A scan producing exactly one empty row (for table-less SELECTs)."""

    def describe(self) -> str:
        return "ConstantScan"
