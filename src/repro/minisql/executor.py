"""Executor for planned mini-SQL statements.

The executor walks the physical plan produced by
:class:`~repro.minisql.planner.Planner`, pulling row contexts (dictionaries
keyed by both bare and qualified column names) through each operator, and
returns a :class:`ResultSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from ..errors import SQLExecutionError, SQLPlanError
from ..storage.database import Database
from ..storage.rtree import Rect
from ..storage.table import Table
from .ast import (
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    Expression,
    FunctionCall,
    InsertStatement,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .functions import (
    AGGREGATE_FUNCTIONS,
    evaluate,
    lookup_column,
    predicate_matches,
)
from .parser import parse
from .planner import (
    Aggregate,
    DataModification,
    Filter,
    HashJoin,
    IndexKeyScan,
    IndexNLJoin,
    LimitNode,
    PlanNode,
    PlannedQuery,
    Planner,
    Project,
    SeqScan,
    SeqScanConstant,
    Sort,
    SpatialScan,
)

RowContext = dict[str, Any]


@dataclass
class ResultSet:
    """Result of executing a statement."""

    columns: list[str]
    rows: list[tuple[Any, ...]]
    rowcount: int = 0
    access_path: str = "seqscan"

    def __post_init__(self) -> None:
        if not self.rowcount:
            self.rowcount = len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as ``{column: value}`` dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SQLExecutionError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


class SQLEngine:
    """Parses, plans and executes mini-SQL statements against a database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._planner = Planner(database)
        self.queries_executed = 0

    # -- public API ------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Run one SQL statement and return its result set."""
        statement = parse(sql)
        planned = self._planner.plan(statement)
        return self.execute_plan(planned)

    def explain(self, sql: str) -> str:
        """Return the physical plan for a statement without executing it."""
        statement = parse(sql)
        planned = self._planner.plan(statement)
        return planned.root.explain()

    def execute_plan(self, planned: PlannedQuery) -> ResultSet:
        self.queries_executed += 1
        root = planned.root
        if isinstance(root, DataModification):
            return self._execute_modification(root.statement)
        rows = list(self._execute_node(root))
        columns = self._output_columns(planned.statement, rows)
        ordered = [tuple(row.get(c) for c in columns) for row in rows]
        return ResultSet(columns=columns, rows=ordered, access_path=planned.access_path)

    # -- SELECT output shaping ----------------------------------------------------

    def _output_columns(self, statement: Statement, rows: list[RowContext]) -> list[str]:
        if not isinstance(statement, SelectStatement):
            return []
        if statement.select_star:
            columns: list[str] = []
            if statement.table is not None:
                table = self.database.table(statement.table.name)
                columns.extend(table.schema.column_names)
                for join in statement.joins:
                    joined = self.database.table(join.table.name)
                    for name in joined.schema.column_names:
                        if name not in columns:
                            columns.append(name)
            elif rows:
                columns = [k for k in rows[0] if "." not in k]
            return columns
        return _item_names(list(statement.items))

    # -- plan-node execution ---------------------------------------------------------

    def _execute_node(self, node: PlanNode) -> Iterator[RowContext]:
        if isinstance(node, SeqScanConstant):
            yield {}
            return
        if isinstance(node, SeqScan):
            yield from self._scan_rows(node.table, node.binding)
            return
        if isinstance(node, IndexKeyScan):
            for key in node.keys:
                for _, row in node.table.lookup_key(node.column, key):
                    yield _row_context(node.table, node.binding, row)
            return
        if isinstance(node, SpatialScan):
            for _, row in node.table.spatial_search(node.column, node.rect):
                yield _row_context(node.table, node.binding, row)
            return
        if isinstance(node, Filter):
            for context in self._execute_node(node.child):
                if predicate_matches(node.predicate, context):
                    yield context
            return
        if isinstance(node, IndexNLJoin):
            yield from self._execute_index_join(node)
            return
        if isinstance(node, HashJoin):
            yield from self._execute_hash_join(node)
            return
        if isinstance(node, Project):
            yield from self._execute_project(node)
            return
        if isinstance(node, Aggregate):
            yield from self._execute_aggregate(node)
            return
        if isinstance(node, Sort):
            yield from self._execute_sort(node)
            return
        if isinstance(node, LimitNode):
            yield from self._execute_limit(node)
            return
        raise SQLExecutionError(f"unknown plan node {type(node).__name__}")

    def _scan_rows(self, table: Table, binding: str) -> Iterator[RowContext]:
        for _, row in table.scan():
            yield _row_context(table, binding, row)

    def _execute_index_join(self, node: IndexNLJoin) -> Iterator[RowContext]:
        inner = node.inner_table
        binding = node.inner_binding
        for outer_context in self._execute_node(node.outer):
            key = lookup_column(outer_context, node.outer_column)
            if key is None:
                continue
            for _, inner_row in inner.lookup_key(node.inner_column, key):
                merged = dict(outer_context)
                merged.update(_row_context(inner, binding, inner_row))
                yield merged

    def _execute_hash_join(self, node: HashJoin) -> Iterator[RowContext]:
        build: dict[Any, list[RowContext]] = {}
        for inner_context in self._execute_node(node.inner):
            key = lookup_column(inner_context, node.inner_column)
            if key is None:
                continue
            build.setdefault(key, []).append(inner_context)
        for outer_context in self._execute_node(node.outer):
            key = lookup_column(outer_context, node.outer_column)
            if key is None:
                continue
            for inner_context in build.get(key, ()):
                merged = dict(outer_context)
                merged.update(inner_context)
                yield merged

    def _execute_project(self, node: Project) -> Iterator[RowContext]:
        seen: set[tuple[Any, ...]] = set()
        names = _item_names(node.items)
        for context in self._execute_node(node.child):
            if node.select_star:
                projected = {k: v for k, v in context.items() if "." not in k}
            else:
                projected = {}
                for name, item in zip(names, node.items):
                    projected[name] = evaluate(item.expression, context)
            if node.distinct:
                key = tuple(sorted(projected.items(), key=lambda kv: kv[0]))
                if key in seen:
                    continue
                seen.add(key)
            yield projected

    def _execute_aggregate(self, node: Aggregate) -> Iterator[RowContext]:
        groups: dict[tuple[Any, ...], list[RowContext]] = {}
        for context in self._execute_node(node.child):
            key = tuple(evaluate(expr, context) for expr in node.group_by)
            groups.setdefault(key, []).append(context)
        if not groups and not node.group_by:
            groups[()] = []
        names = _item_names(node.items)
        for key, members in groups.items():
            output: RowContext = {}
            for name, item in zip(names, node.items):
                output[name] = _evaluate_aggregate_item(item.expression, members)
            yield output

    def _execute_sort(self, node: Sort) -> Iterator[RowContext]:
        rows = list(self._execute_node(node.child))
        for order in reversed(node.order_by):
            rows.sort(
                key=lambda context: _sort_key(_evaluate_order_key(order.expression, context)),
                reverse=order.descending,
            )
        yield from rows

    def _execute_limit(self, node: LimitNode) -> Iterator[RowContext]:
        start = node.offset or 0
        end = None if node.limit is None else start + node.limit
        for index, context in enumerate(self._execute_node(node.child)):
            if index < start:
                continue
            if end is not None and index >= end:
                return
            yield context

    # -- data modification --------------------------------------------------------------

    def _execute_modification(self, statement: Statement) -> ResultSet:
        if isinstance(statement, CreateTableStatement):
            self.database.create_table(statement.table, list(statement.columns))
            return ResultSet(columns=[], rows=[], rowcount=0)
        if isinstance(statement, CreateIndexStatement):
            table = self.database.table(statement.table)
            table.create_index(
                statement.name, statement.column, statement.kind, unique=statement.unique
            )
            return ResultSet(columns=[], rows=[], rowcount=0)
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        raise SQLExecutionError(
            f"unsupported statement {type(statement).__name__}"
        )

    def _execute_insert(self, statement: InsertStatement) -> ResultSet:
        table = self.database.table(statement.table)
        inserted = 0
        for value_tuple in statement.rows:
            values = [evaluate(expression, {}) for expression in value_tuple]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise SQLExecutionError(
                        "INSERT column list and VALUES length mismatch"
                    )
                table.insert(dict(zip(statement.columns, values)))
            else:
                table.insert(values)
            inserted += 1
        return ResultSet(columns=[], rows=[], rowcount=inserted)

    def _execute_update(self, statement: UpdateStatement) -> ResultSet:
        table = self.database.table(statement.table)
        targets = []
        for rid, row in table.scan():
            context = _row_context(table, statement.table, row)
            if predicate_matches(statement.where, context):
                targets.append((rid, context))
        for rid, context in targets:
            changes = {
                column: evaluate(expression, context)
                for column, expression in statement.assignments
            }
            table.update(rid, changes)
        return ResultSet(columns=[], rows=[], rowcount=len(targets))

    def _execute_delete(self, statement: DeleteStatement) -> ResultSet:
        table = self.database.table(statement.table)
        targets = []
        for rid, row in table.scan():
            context = _row_context(table, statement.table, row)
            if predicate_matches(statement.where, context):
                targets.append(rid)
        for rid in targets:
            table.delete(rid)
        return ResultSet(columns=[], rows=[], rowcount=len(targets))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _row_context(table: Table, binding: str, row: tuple[Any, ...]) -> RowContext:
    context: RowContext = {}
    for column, value in zip(table.schema.columns, row):
        context[column.name] = value
        context[f"{binding}.{column.name}"] = value
        if binding != table.name:
            context[f"{table.name}.{column.name}"] = value
    return context


def _item_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.column
    if isinstance(expression, FunctionCall):
        return expression.name
    return f"column_{index}"


def _item_names(items: Sequence[SelectItem]) -> list[str]:
    """Output column names for a projection, de-duplicated in order.

    Two unaliased ``count(...)`` items would otherwise collide on the name
    ``count`` and overwrite one another in the output row.
    """
    names: list[str] = []
    seen: set[str] = set()
    for index, item in enumerate(items):
        name = _item_name(item, index)
        if name in seen:
            name = f"{name}_{index}"
        seen.add(name)
        names.append(name)
    return names


def _evaluate_order_key(expression: Expression, context: RowContext) -> Any:
    """Evaluate an ORDER BY key.

    Sorting runs above the projection, so qualified references
    (``d.id``) may have been collapsed to their bare output names; fall back
    to the bare column name when the qualified lookup fails.
    """
    try:
        return evaluate(expression, context)
    except SQLExecutionError:
        if isinstance(expression, ColumnRef) and expression.column in context:
            return context[expression.column]
        raise


def _sort_key(value: Any) -> tuple[int, Any]:
    # NULLs sort first; mixed types are kept stable by sorting on type name.
    if value is None:
        return (0, 0)
    return (1, value)


def _evaluate_aggregate_item(expression: Expression, rows: list[RowContext]) -> Any:
    if isinstance(expression, FunctionCall) and expression.name in AGGREGATE_FUNCTIONS:
        name = expression.name
        if expression.star:
            if name != "count":
                raise SQLPlanError(f"{name}(*) is not supported")
            return len(rows)
        if len(expression.args) != 1:
            raise SQLPlanError(f"aggregate {name}() takes exactly one argument")
        values = [
            evaluate(expression.args[0], context)
            for context in rows
        ]
        values = [v for v in values if v is not None]
        if name == "count":
            return len(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
    # Group-by key or plain expression: evaluate against the first row.
    if rows:
        return evaluate(expression, rows[0])
    return None
