"""Recursive-descent parser for the mini-SQL dialect."""

from __future__ import annotations

from ..errors import SQLSyntaxError
from .ast import (
    Between,
    BinaryOp,
    ColumnRef,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    Expression,
    FunctionCall,
    InList,
    InsertStatement,
    IsNull,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UnaryOp,
    UpdateStatement,
)
from .lexer import Token, TokenType, tokenize

_AGGREGATES = {"count", "sum", "avg", "min", "max"}


def parse(text: str) -> Statement:
    """Parse a single SQL statement."""
    return _Parser(tokenize(text)).parse_statement()


def parse_expression(text: str) -> Expression:
    """Parse a standalone expression (used in tests and layer filters)."""
    parser = _Parser(tokenize(text))
    expression = parser._parse_or()
    parser._expect_eof()
    return expression


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._current
        self._position += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        return SQLSyntaxError(
            f"{message} (near {self._current.value!r})", self._current.position
        )

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, *names: str) -> Token:
        if not self._current.is_keyword(*names):
            raise self._error(f"expected {' or '.join(names).upper()}")
        return self._advance()

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _accept_star(self) -> bool:
        """Accept a ``*`` token whether it was lexed as operator or punctuation."""
        if self._current.value == "*" and self._current.type in (
            TokenType.OPERATOR,
            TokenType.PUNCTUATION,
        ):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        if not (
            self._current.type is TokenType.PUNCTUATION
            and self._current.value == value
        ):
            raise self._error(f"expected {value!r}")
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Non-reserved use of keywords as identifiers is allowed for a few
        # common column names (count, min, max ...) when followed by no '('.
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            self._advance()
            return token.value
        raise self._error("expected an identifier")

    def _expect_eof(self) -> None:
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._current
        if token.is_keyword("select"):
            statement: Statement = self._parse_select()
        elif token.is_keyword("insert"):
            statement = self._parse_insert()
        elif token.is_keyword("update"):
            statement = self._parse_update()
        elif token.is_keyword("delete"):
            statement = self._parse_delete()
        elif token.is_keyword("create"):
            statement = self._parse_create()
        else:
            raise self._error("expected a statement")
        self._expect_eof()
        return statement

    # SELECT -------------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        select_star = False
        items: list[SelectItem] = []
        if self._accept_star():
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())

        table: TableRef | None = None
        joins: list[JoinClause] = []
        if self._accept_keyword("from"):
            table = self._parse_table_ref()
            while self._current.is_keyword("join", "inner", "left"):
                joins.append(self._parse_join())

        where = self._parse_or() if self._accept_keyword("where") else None

        group_by: list[Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_or())
            while self._accept_punct(","):
                group_by.append(self._parse_or())

        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())

        limit = None
        offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_integer()
        if self._accept_keyword("offset"):
            offset = self._parse_integer()

        return SelectStatement(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
            select_star=select_star,
        )

    def _parse_select_item(self) -> SelectItem:
        expression = self._parse_or()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_join(self) -> JoinClause:
        # Accept JOIN / INNER JOIN / LEFT JOIN (all treated as inner equi-join;
        # Kyrix's tile queries only need the inner join of record and mapping
        # tables).
        if self._accept_keyword("inner") or self._accept_keyword("left"):
            self._expect_keyword("join")
        else:
            self._expect_keyword("join")
        table = self._parse_table_ref()
        self._expect_keyword("on")
        left = self._parse_column_ref()
        operator = self._advance()
        if operator.type is not TokenType.OPERATOR or operator.value not in ("=", "=="):
            raise self._error("only equi-joins are supported")
        right = self._parse_column_ref()
        return JoinClause(table=table, left=left, right=right)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_or()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expression=expression, descending=descending)

    def _parse_integer(self) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise self._error("expected an integer")
        self._advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise SQLSyntaxError(
                f"expected an integer, got {token.value!r}", token.position
            ) from exc

    # INSERT / UPDATE / DELETE ----------------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier()
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier())
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: list[tuple[Expression, ...]] = []
        rows.append(self._parse_value_tuple())
        while self._accept_punct(","):
            rows.append(self._parse_value_tuple())
        return InsertStatement(table=table, columns=tuple(columns), rows=tuple(rows))

    def _parse_value_tuple(self) -> tuple[Expression, ...]:
        self._expect_punct("(")
        values = [self._parse_or()]
        while self._accept_punct(","):
            values.append(self._parse_or())
        self._expect_punct(")")
        return tuple(values)

    def _parse_update(self) -> UpdateStatement:
        self._expect_keyword("update")
        table = self._expect_identifier()
        self._expect_keyword("set")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self._expect_identifier()
            operator = self._advance()
            if operator.type is not TokenType.OPERATOR or operator.value not in ("=", "=="):
                raise self._error("expected '=' in SET clause")
            assignments.append((column, self._parse_or()))
            if not self._accept_punct(","):
                break
        where = self._parse_or() if self._accept_keyword("where") else None
        return UpdateStatement(table=table, assignments=tuple(assignments), where=where)

    def _parse_delete(self) -> DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier()
        where = self._parse_or() if self._accept_keyword("where") else None
        return DeleteStatement(table=table, where=where)

    # CREATE ------------------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            return self._parse_create_table()
        unique = self._accept_keyword("unique")
        self._expect_keyword("index")
        return self._parse_create_index(unique=unique)

    def _parse_create_table(self) -> CreateTableStatement:
        table = self._expect_identifier()
        self._expect_punct("(")
        columns: list[tuple[str, str]] = []
        while True:
            name = self._expect_identifier()
            type_name = self._expect_identifier()
            columns.append((name, type_name))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTableStatement(table=table, columns=tuple(columns))

    def _parse_create_index(self, *, unique: bool) -> CreateIndexStatement:
        name = self._expect_identifier()
        self._expect_keyword("on")
        table = self._expect_identifier()
        self._expect_punct("(")
        column = self._expect_identifier()
        self._expect_punct(")")
        kind = "btree"
        if self._accept_keyword("using"):
            kind = self._expect_identifier()
        return CreateIndexStatement(
            name=name, table=table, column=column, kind=kind, unique=unique
        )

    # -- expressions (precedence-climbing) ----------------------------------------------

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "==", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            operator = {"==": "=", "<>": "!="}.get(token.value, token.value)
            return BinaryOp(operator, left, self._parse_additive())
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(operand=left, negated=negated)
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(operand=left, low=low, high=high)
        if token.is_keyword("not") and self._tokens[self._position + 1].is_keyword(
            "in", "between"
        ):
            self._advance()
            if self._accept_keyword("between"):
                low = self._parse_additive()
                self._expect_keyword("and")
                high = self._parse_additive()
                return Between(operand=left, low=low, high=high, negated=True)
            self._expect_keyword("in")
            items = self._parse_value_tuple()
            return InList(operand=left, items=items, negated=True)
        if token.is_keyword("in"):
            self._advance()
            items = self._parse_value_tuple()
            return InList(operand=left, items=items)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in ("+", "-")
        ):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while (
            self._current.type is TokenType.OPERATOR
            and self._current.value in ("*", "/", "%")
        ) or (
            self._current.type is TokenType.PUNCTUATION and self._current.value == "*"
        ):
            operator = self._advance().value
            left = BinaryOp(operator, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self._current.type is TokenType.OPERATOR and self._current.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value)
            if value.is_integer() and "." not in token.value and "e" not in token.value.lower():
                return Literal(int(token.value))
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword(*_AGGREGATES, "intersects"):
            return self._parse_function_call(token.value)
        if token.type is TokenType.IDENTIFIER:
            next_token = self._tokens[self._position + 1]
            if next_token.type is TokenType.PUNCTUATION and next_token.value == "(":
                return self._parse_function_call(token.value)
            return self._parse_column_ref()
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            expression = self._parse_or()
            self._expect_punct(")")
            return expression
        raise self._error("expected an expression")

    def _parse_function_call(self, name: str) -> FunctionCall:
        self._advance()  # function name
        self._expect_punct("(")
        if self._accept_star():
            self._expect_punct(")")
            return FunctionCall(name=name, args=(), star=True)
        args: list[Expression] = []
        if not self._accept_punct(")"):
            args.append(self._parse_or())
            while self._accept_punct(","):
                args.append(self._parse_or())
            self._expect_punct(")")
        return FunctionCall(name=name, args=tuple(args))

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect_identifier()
        if self._accept_punct("."):
            second = self._expect_identifier()
            return ColumnRef(column=second, table=first)
        return ColumnRef(column=first)
