"""Abstract syntax tree nodes for the mini-SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to ``column`` or ``table.column``."""

    column: str
    table: str | None = None

    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: comparison, arithmetic, AND/OR."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """NOT / unary minus."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call, e.g. ``count(*)`` or
    ``intersects(bbox, 0, 0, 100, 100)``."""

    name: str
    args: tuple[Expression, ...]
    star: bool = False  # count(*)


@dataclass(frozen=True)
class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""


@dataclass(frozen=True)
class TableRef:
    """A table reference with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left = right`` (equi-joins only)."""

    table: TableRef
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class SelectItem:
    """One projection item: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A SELECT query."""

    items: tuple[SelectItem, ...]
    table: TableRef | None
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    select_star: bool = False


@dataclass(frozen=True)
class InsertStatement(Statement):
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    """``CREATE TABLE name (col type, ...)``."""

    table: str
    columns: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class CreateIndexStatement(Statement):
    """``CREATE [UNIQUE] INDEX name ON table (column) [USING kind]``."""

    name: str
    table: str
    column: str
    kind: str = "btree"
    unique: bool = False
