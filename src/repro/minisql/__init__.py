"""A small SQL layer over the embedded storage engine.

Kyrix layers declare their data with "a SQL query to a DBMS"; this package
provides the dialect and execution machinery for those queries against
:class:`repro.storage.Database`:

* :mod:`repro.minisql.lexer` / :mod:`repro.minisql.parser` — tokeniser and
  recursive-descent parser producing the AST in :mod:`repro.minisql.ast`;
* :mod:`repro.minisql.planner` — rule-based planning with index selection
  (key indexes and R-tree spatial probes) and join strategies;
* :mod:`repro.minisql.executor` — a pull-based executor returning
  :class:`~repro.minisql.executor.ResultSet` objects.

The dialect supports SELECT (joins, WHERE, GROUP BY, ORDER BY, LIMIT,
aggregates, an ``intersects()`` spatial predicate), INSERT, UPDATE, DELETE,
CREATE TABLE and CREATE INDEX.
"""

from .executor import ResultSet, SQLEngine
from .parser import parse, parse_expression
from .planner import PlannedQuery, Planner

__all__ = [
    "PlannedQuery",
    "Planner",
    "ResultSet",
    "SQLEngine",
    "parse",
    "parse_expression",
]
