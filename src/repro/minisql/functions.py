"""Expression evaluation for the mini-SQL executor.

Rows are evaluated against a *row context*: a dictionary mapping both bare
column names (``"x"``) and qualified names (``"t.x"``) to values.  SQL
three-valued logic is approximated with Python ``None`` propagation, which is
sufficient for the predicates Kyrix applications issue.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..errors import SQLExecutionError, SQLPlanError
from ..storage.rtree import Rect
from .ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)

RowContext = dict[str, Any]

#: Names of aggregate functions (evaluated by the executor, not here).
AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


def lookup_column(context: RowContext, ref: ColumnRef) -> Any:
    """Resolve a column reference in a row context."""
    key = f"{ref.table}.{ref.column}" if ref.table else ref.column
    if key in context:
        return context[key]
    if ref.table is None:
        # Unqualified reference: fall back to any qualified match.
        matches = [k for k in context if k.endswith(f".{ref.column}")]
        if len(matches) == 1:
            return context[matches[0]]
        if len(matches) > 1:
            raise SQLExecutionError(f"ambiguous column reference: {ref.column!r}")
    raise SQLExecutionError(f"unknown column reference: {ref.display()!r}")


def _scalar_function(name: str, args: list[Any]) -> Any:
    """Evaluate a non-aggregate function call."""
    if name == "intersects":
        if len(args) == 5:
            bbox, xmin, ymin, xmax, ymax = args
            if bbox is None:
                return False
            return Rect.from_tuple(bbox).intersects(
                Rect(float(xmin), float(ymin), float(xmax), float(ymax))
            )
        if len(args) == 2:
            left, right = args
            if left is None or right is None:
                return False
            return Rect.from_tuple(left).intersects(Rect.from_tuple(right))
        raise SQLExecutionError("intersects() takes (bbox, x1, y1, x2, y2) or (bbox, bbox)")
    if name == "bbox":
        if len(args) != 4:
            raise SQLExecutionError("bbox() takes exactly (xmin, ymin, xmax, ymax)")
        if any(a is None for a in args):
            return None
        return (float(args[0]), float(args[1]), float(args[2]), float(args[3]))
    if name == "abs":
        return None if args[0] is None else abs(args[0])
    if name == "floor":
        import math

        return None if args[0] is None else math.floor(args[0])
    if name == "ceil":
        import math

        return None if args[0] is None else math.ceil(args[0])
    if name == "min":
        return min(args)
    if name == "max":
        return max(args)
    raise SQLExecutionError(f"unknown function: {name!r}")


def evaluate(expression: Expression, context: RowContext) -> Any:
    """Evaluate ``expression`` against a row context."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return lookup_column(context, expression)
    if isinstance(expression, UnaryOp):
        value = evaluate(expression.operand, context)
        if expression.operator == "not":
            return None if value is None else (not bool(value))
        if expression.operator == "-":
            return None if value is None else -value
        raise SQLExecutionError(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, context)
    if isinstance(expression, IsNull):
        value = evaluate(expression.operand, context)
        result = value is None
        return (not result) if expression.negated else result
    if isinstance(expression, Between):
        value = evaluate(expression.operand, context)
        low = evaluate(expression.low, context)
        high = evaluate(expression.high, context)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expression.negated else result
    if isinstance(expression, InList):
        value = evaluate(expression.operand, context)
        if value is None:
            return None
        items = [evaluate(item, context) for item in expression.items]
        result = value in items
        return (not result) if expression.negated else result
    if isinstance(expression, FunctionCall):
        if expression.name in AGGREGATE_FUNCTIONS and not expression.star:
            # Aggregates over rows are handled by the executor; reaching this
            # point means an aggregate was used in a per-row position with a
            # single argument -- treat min/max of one value as identity.
            args = [evaluate(arg, context) for arg in expression.args]
            if len(args) == 1:
                return args[0]
        args = [evaluate(arg, context) for arg in expression.args]
        return _scalar_function(expression.name, args)
    raise SQLExecutionError(f"cannot evaluate expression of type {type(expression).__name__}")


def _evaluate_binary(expression: BinaryOp, context: RowContext) -> Any:
    operator = expression.operator
    if operator == "and":
        left = evaluate(expression.left, context)
        if left is False:
            return False
        right = evaluate(expression.right, context)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return bool(left) and bool(right)
    if operator == "or":
        left = evaluate(expression.left, context)
        if left is True:
            return True
        right = evaluate(expression.right, context)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left) or bool(right)

    left = evaluate(expression.left, context)
    right = evaluate(expression.right, context)
    if left is None or right is None:
        return None
    if operator in ("=", "=="):
        return left == right
    if operator in ("!=", "<>"):
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise SQLExecutionError("division by zero")
        return left / right
    if operator == "%":
        if right == 0:
            raise SQLExecutionError("modulo by zero")
        return left % right
    raise SQLExecutionError(f"unknown operator {operator!r}")


def predicate_matches(expression: Expression | None, context: RowContext) -> bool:
    """Evaluate a WHERE predicate; NULL counts as not matching."""
    if expression is None:
        return True
    return bool(evaluate(expression, context))


# ---------------------------------------------------------------------------
# Predicate analysis helpers used by the planner
# ---------------------------------------------------------------------------


def split_conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.operator == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def combine_conjuncts(conjuncts: Iterable[Expression]) -> Expression | None:
    """Rebuild a predicate from conjuncts (inverse of :func:`split_conjuncts`)."""
    result: Expression | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result, conjunct)
    return result


def extract_literal(expression: Expression) -> tuple[bool, Any]:
    """Return ``(True, value)`` when the expression is a constant literal."""
    if isinstance(expression, Literal):
        return True, expression.value
    if isinstance(expression, UnaryOp) and expression.operator == "-":
        ok, value = extract_literal(expression.operand)
        if ok and value is not None:
            return True, -value
    return False, None


def as_key_lookup(conjunct: Expression) -> tuple[ColumnRef, list[Any]] | None:
    """Detect ``col = literal`` or ``col IN (literals)`` conjuncts.

    Returns ``(column_ref, candidate_keys)`` when the conjunct is such a
    pattern, otherwise None.
    """
    if isinstance(conjunct, BinaryOp) and conjunct.operator in ("=", "=="):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef):
            ok, value = extract_literal(right)
            if ok:
                return left, [value]
        if isinstance(right, ColumnRef):
            ok, value = extract_literal(left)
            if ok:
                return right, [value]
    if isinstance(conjunct, InList) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef):
            values = []
            for item in conjunct.items:
                ok, value = extract_literal(item)
                if not ok:
                    return None
                values.append(value)
            return conjunct.operand, values
    return None


def as_spatial_lookup(conjunct: Expression) -> tuple[ColumnRef, Rect] | None:
    """Detect ``intersects(bbox_col, x1, y1, x2, y2)`` conjuncts with literal
    bounds; these can be answered by an R-tree probe."""
    if not isinstance(conjunct, FunctionCall) or conjunct.name != "intersects":
        return None
    if len(conjunct.args) != 5:
        return None
    column = conjunct.args[0]
    if not isinstance(column, ColumnRef):
        return None
    bounds = []
    for arg in conjunct.args[1:]:
        ok, value = extract_literal(arg)
        if not ok or value is None:
            return None
        bounds.append(float(value))
    try:
        rect = Rect(bounds[0], bounds[1], bounds[2], bounds[3])
    except Exception as exc:  # degenerate rectangle
        raise SQLPlanError(f"invalid intersects() bounds: {bounds}") from exc
    return column, rect
