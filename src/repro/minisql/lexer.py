"""Tokeniser for the mini-SQL dialect.

The dialect covers what Kyrix layer queries and the backend's precomputed
tables need: ``SELECT`` (with joins, ``WHERE``, ``ORDER BY``, ``LIMIT``,
aggregates), ``INSERT``, ``UPDATE``, ``DELETE``, ``CREATE TABLE`` and
``CREATE INDEX``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SQLSyntaxError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "insert", "into", "values",
    "update", "set", "delete", "create", "table", "index", "on", "using",
    "unique", "order", "by", "asc", "desc", "limit", "offset", "join", "inner",
    "left", "as", "in", "between", "is", "null", "true", "false", "group",
    "having", "distinct", "count", "sum", "avg", "min", "max", "intersects",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATOR_CHARS = set("=<>!+-*/%")
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!=", "=="}
_PUNCTUATION = set("(),.;*")


def tokenize(text: str) -> list[Token]:
    """Convert query text into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and index + 1 < length and text[index + 1] == "-":
            # Line comment.
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word.lower(), start))
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            start = index
            seen_dot = False
            seen_exponent = False
            while index < length:
                current = text[index]
                if current.isdigit():
                    index += 1
                elif current == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    index += 1
                elif current in "eE" and not seen_exponent and index + 1 < length:
                    lookahead = text[index + 1]
                    if lookahead.isdigit() or lookahead in "+-":
                        seen_exponent = True
                        index += 2
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:index], start))
            continue
        if char == "'":
            start = index
            index += 1
            chunks: list[str] = []
            while True:
                if index >= length:
                    raise SQLSyntaxError("unterminated string literal", start)
                if text[index] == "'":
                    if index + 1 < length and text[index + 1] == "'":
                        chunks.append("'")
                        index += 2
                        continue
                    index += 1
                    break
                chunks.append(text[index])
                index += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        if char in _OPERATOR_CHARS:
            two = text[index : index + 2]
            if two in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, two, index))
                index += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, char, index))
                index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
