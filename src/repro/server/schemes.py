"""Fetching schemes: the cross product of granularity and database design.

Section 3.3 evaluates eight schemes; :func:`paper_schemes` builds exactly
that list.  A :class:`FetchScheme` tells the frontend *what to request*
(tiles of a given size, or a dynamic box computed by a box calculator) and
tells the backend *how to answer* (spatial bbox index, or the tuple–tile
mapping design).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FetchError
from .dbox import BoxCalculator, ExactBoxCalculator, ExpandedBoxCalculator

#: Database designs from Section 3.1.
DESIGN_SPATIAL = "spatial"
DESIGN_MAPPING = "mapping"

#: Fetching granularities.
GRANULARITY_TILE = "tile"
GRANULARITY_BOX = "box"


@dataclass(frozen=True)
class FetchScheme:
    """One fetching scheme of the evaluation.

    Attributes
    ----------
    name:
        Label used in reports ("dbox", "tile spatial 1024", ...).
    granularity:
        ``"tile"`` or ``"box"``.
    tile_size:
        Tile size in canvas pixels (tile granularity only).
    design:
        Database design answering the requests: ``"spatial"`` (bbox +
        R-tree) or ``"mapping"`` (tuple–tile mapping + B-tree join).
        Dynamic boxes require the spatial design.
    box_expansion:
        Extra box size as a fraction of the viewport (box granularity only);
        0.0 is the plain *Dbox* scheme, 0.5 is *Dbox 50 %*.
    """

    name: str
    granularity: str
    tile_size: int | None = None
    design: str = DESIGN_SPATIAL
    box_expansion: float = 0.0

    def __post_init__(self) -> None:
        if self.granularity not in (GRANULARITY_TILE, GRANULARITY_BOX):
            raise FetchError(f"unknown granularity {self.granularity!r}")
        if self.design not in (DESIGN_SPATIAL, DESIGN_MAPPING):
            raise FetchError(f"unknown database design {self.design!r}")
        if self.granularity == GRANULARITY_TILE and not self.tile_size:
            raise FetchError("tile schemes require a tile_size")
        if self.granularity == GRANULARITY_BOX and self.design != DESIGN_SPATIAL:
            raise FetchError("dynamic boxes require the spatial database design")

    @property
    def is_tile(self) -> bool:
        return self.granularity == GRANULARITY_TILE

    @property
    def is_box(self) -> bool:
        return self.granularity == GRANULARITY_BOX

    def box_calculator(self) -> BoxCalculator:
        """The box calculator for box schemes."""
        if not self.is_box:
            raise FetchError(f"scheme {self.name!r} is not a box scheme")
        if self.box_expansion <= 0:
            return ExactBoxCalculator()
        return ExpandedBoxCalculator(expansion=self.box_expansion)


# ---------------------------------------------------------------------------
# Canonical scheme sets
# ---------------------------------------------------------------------------


def dbox_scheme() -> FetchScheme:
    """The paper's *Dbox* scheme: box = viewport, spatial index."""
    return FetchScheme(name="dbox", granularity=GRANULARITY_BOX, box_expansion=0.0)


def dbox50_scheme() -> FetchScheme:
    """The paper's *Dbox 50%* scheme: box 50 % larger than the viewport."""
    return FetchScheme(name="dbox 50%", granularity=GRANULARITY_BOX, box_expansion=0.5)


def tile_spatial_scheme(tile_size: int) -> FetchScheme:
    """Static tiles answered by the spatial (bbox + R-tree) design."""
    return FetchScheme(
        name=f"tile spatial {tile_size}",
        granularity=GRANULARITY_TILE,
        tile_size=tile_size,
        design=DESIGN_SPATIAL,
    )


def tile_mapping_scheme(tile_size: int) -> FetchScheme:
    """Static tiles answered by the tuple–tile mapping design."""
    return FetchScheme(
        name=f"tile mapping {tile_size}",
        granularity=GRANULARITY_TILE,
        tile_size=tile_size,
        design=DESIGN_MAPPING,
    )


def paper_schemes(tile_sizes: tuple[int, ...] = (1024, 256, 4096)) -> list[FetchScheme]:
    """The eight fetching schemes evaluated in Figures 6 and 7.

    The legend order of the figures is: dbox, dbox 50 %, tile spatial 1024,
    tile spatial 256, tile spatial 4096, tile mapping 1024, tile mapping 256,
    tile mapping 4096.
    """
    schemes = [dbox_scheme(), dbox50_scheme()]
    schemes.extend(tile_spatial_scheme(size) for size in tile_sizes)
    schemes.extend(tile_mapping_scheme(size) for size in tile_sizes)
    return schemes


def scheme_by_name(name: str) -> FetchScheme:
    """Resolve a scheme from its report label (case/space tolerant)."""
    normalized = name.strip().lower().replace("_", " ")
    for scheme in paper_schemes():
        if scheme.name.lower() == normalized:
            return scheme
    if normalized in ("dbox", "dynamic box"):
        return dbox_scheme()
    if normalized in ("dbox 50%", "dbox50", "dbox 50"):
        return dbox50_scheme()
    parts = normalized.split()
    if len(parts) == 3 and parts[0] == "tile":
        size = int(parts[2])
        if parts[1] == "spatial":
            return tile_spatial_scheme(size)
        if parts[1] == "mapping":
            return tile_mapping_scheme(size)
    raise FetchError(f"unknown fetching scheme {name!r}")
