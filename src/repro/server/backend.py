"""The Kyrix backend server.

The backend owns the database, the compiled application plan and the backend
cache.  It answers :class:`~repro.net.protocol.DataRequest` objects coming
from the frontend — either a static tile by id or a dynamic box — by
querying the placement tables built by the
:class:`~repro.server.indexer.Indexer`, using the database design the
request names:

* ``spatial``: one bbox-intersection query against the R-tree,
* ``mapping``: an equality lookup on the tuple–tile mapping table joined to
  the placement table on ``tuple_id`` (B-tree indexes on both sides).

Query time is measured per request (wall clock of the embedded engine plus
any simulated disk latency) and reported in the response so the frontend can
break down the interaction latency.

The backend implements the :class:`~repro.serving.base.DataService`
protocol.  Caching is not hard-wired any more: the raw query path is
:meth:`KyrixBackend.execute`, and :meth:`KyrixBackend.handle` goes through a
composed :class:`~repro.serving.middleware.CachingService` (``self.cache``
is that middleware's LRU cache, kept as a public attribute for
compatibility).  Pointing frontends directly at a ``KyrixBackend`` still
works but is deprecated in favour of :func:`repro.serving.build_service`,
which assembles the full middleware stack from configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..compiler.plan import CompiledApplication, LayerPlan
from ..config import KyrixConfig
from ..errors import FetchError, UnknownCanvasError
from ..metrics.timer import Timer
from ..minisql.executor import SQLEngine
from ..net.protocol import DataRequest, DataResponse
from ..storage.database import Database
from ..storage.rtree import Rect
from ..telemetry import get_tracer
from .cache import LRUCache
from .indexer import Indexer, PrecomputeReport
from .schemes import DESIGN_MAPPING, DESIGN_SPATIAL
from .tile import TileScheme


@dataclass
class BackendStats:
    """Aggregate counters over the backend's lifetime."""

    requests: int = 0
    cache_hits: int = 0
    queries_issued: int = 0
    objects_returned: int = 0
    total_query_ms: float = 0.0

    def reset(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.queries_issued = 0
        self.objects_returned = 0
        self.total_query_ms = 0.0


class _BackendQueryService:
    """The cache-free :class:`DataService` core of one backend.

    ``handle`` runs the raw query path (:meth:`KyrixBackend.execute`); the
    caching middleware composed by :class:`KyrixBackend` sits on top.
    """

    def __init__(self, backend: "KyrixBackend") -> None:
        self.backend = backend

    @property
    def compiled(self) -> CompiledApplication:
        return self.backend.compiled

    @property
    def config(self) -> KyrixConfig:
        return self.backend.config

    @property
    def stats(self) -> BackendStats:
        return self.backend.stats

    def handle(self, request: DataRequest) -> DataResponse:
        return self.backend.execute(request)

    def warm(self, request: DataRequest) -> None:
        self.backend.execute(request)

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        return self.backend.canvas_info(canvas_id)

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        return self.backend.layer_density(canvas_id, layer_index)

    def close(self) -> None:
        pass


class KyrixBackend:
    """Serves viewport data requests for one compiled application."""

    def __init__(
        self,
        database: Database,
        compiled: CompiledApplication,
        config: KyrixConfig | None = None,
    ) -> None:
        # Deferred import: repro.serving imports repro.server (cache), so a
        # module-level import here would be circular.
        from ..serving.middleware import CachingService

        self.database = database
        self.compiled = compiled
        self.config = config or (compiled.spec.config if compiled.spec else KyrixConfig())
        self.engine = SQLEngine(database)
        self.indexer = Indexer(database, compiled, engine=self.engine)
        cache_entries = self.config.cache.backend_entries if self.config.cache.enabled else 0
        self.cache: LRUCache[DataResponse] = LRUCache(cache_entries)
        self.stats = BackendStats()
        # The serving stack: caching middleware over the raw query core.
        self._service = CachingService(_BackendQueryService(self), cache=self.cache)

    # -- lifecycle ------------------------------------------------------------------

    def precompute(self, tile_sizes: tuple[int, ...] = ()) -> list[PrecomputeReport]:
        """Run placement precomputation (and mapping tables for ``tile_sizes``)."""
        return self.indexer.precompute_all(tile_sizes=tile_sizes)

    def ensure_mapping_tables(self, tile_size: int) -> None:
        """Build the tuple–tile mapping tables for one tile size on demand."""
        for layer_plan in self.compiled.all_layer_plans():
            if not layer_plan.static:
                self.indexer.build_mapping_table(layer_plan, tile_size)

    # -- request handling ----------------------------------------------------------------

    def handle(self, request: DataRequest) -> DataResponse:
        """Answer one data request (from cache or from the database)."""
        with get_tracer().span(
            "request",
            canvas=request.canvas_id,
            granularity=request.granularity,
            design=request.design,
        ) as span:
            self.stats.requests += 1
            self._resolve_layer(request)
            response = self._service.handle(request)
            if response.from_cache:
                self.stats.cache_hits += 1
            span.set_attribute("from_cache", response.from_cache)
            return response

    def execute(self, request: DataRequest) -> DataResponse:
        """Run the raw query path, bypassing every cache.

        This is the terminal ``handle`` of the backend's serving stack;
        middleware (caching, transport, metrics) composes on top of it.
        """
        with get_tracer().span(
            "execute", design=request.design, granularity=request.granularity
        ) as span:
            layer_plan = self._resolve_layer(request)
            timer = Timer()
            io_checkpoint = self.database.clock.checkpoint()
            timer.start()
            if request.granularity == "tile":
                objects, queries = self._fetch_tile(request, layer_plan)
            elif request.granularity == "box":
                objects, queries = self._fetch_box(request, layer_plan)
            else:
                raise FetchError(f"unknown granularity {request.granularity!r}")
            query_ms = timer.stop() + self.database.clock.since(io_checkpoint)

            response = DataResponse(
                request=request,
                objects=objects,
                query_ms=query_ms,
                from_cache=False,
                queries_issued=queries,
            )
            self.stats.queries_issued += queries
            self.stats.objects_returned += len(objects)
            self.stats.total_query_ms += query_ms
            span.set_attribute("queries", queries)
            span.set_attribute("objects", len(objects))
            return response

    def warm(self, request: DataRequest) -> None:
        """Execute a request purely to populate the backend cache (prefetch)."""
        if self.cache.peek(request.cache_key()) is None:
            self.handle(request)

    def query_service(self) -> "_BackendQueryService":
        """The backend's cache-free :class:`DataService` core.

        Use this to compose custom middleware stacks (every ``handle`` runs
        a real query); :meth:`handle` already includes the default caching
        layer.
        """
        return _BackendQueryService(self)

    def close(self) -> None:
        """Release the backend's serving resources (drops cached responses)."""
        self.cache.clear()

    # -- per-design fetch paths -------------------------------------------------------------

    def _fetch_tile(
        self, request: DataRequest, layer_plan: LayerPlan
    ) -> tuple[list[dict[str, Any]], int]:
        if request.tile_id is None or not request.tile_size:
            raise FetchError("tile requests need tile_id and tile_size")
        canvas_plan = self.compiled.canvas_plan(request.canvas_id)
        scheme = TileScheme(canvas_plan.width, canvas_plan.height, request.tile_size)
        rect = scheme.tile_rect(request.tile_id)
        if request.design == DESIGN_MAPPING:
            return self._query_mapping(layer_plan, request.tile_size, request.tile_id)
        if request.design == DESIGN_SPATIAL:
            return self._query_spatial(layer_plan, rect)
        raise FetchError(f"unknown database design {request.design!r}")

    def _fetch_box(
        self, request: DataRequest, layer_plan: LayerPlan
    ) -> tuple[list[dict[str, Any]], int]:
        if None in (request.xmin, request.ymin, request.xmax, request.ymax):
            raise FetchError("box requests need xmin/ymin/xmax/ymax")
        rect = Rect(request.xmin, request.ymin, request.xmax, request.ymax)
        return self._query_spatial(layer_plan, rect)

    def _query_spatial(
        self, layer_plan: LayerPlan, rect: Rect
    ) -> tuple[list[dict[str, Any]], int]:
        """One bbox-intersection query against the layer's spatial table."""
        table_name = layer_plan.placement_table or layer_plan.source_table
        if table_name is None:
            raise FetchError(
                f"layer {layer_plan.layer_name!r} has no queryable table; "
                "did precompute() run?"
            )
        sql = (
            f"SELECT * FROM {table_name} WHERE "
            f"intersects(bbox, {rect.xmin}, {rect.ymin}, {rect.xmax}, {rect.ymax})"
        )
        result = self.engine.execute(sql)
        return result.to_dicts(), 1

    def _query_mapping(
        self, layer_plan: LayerPlan, tile_size: int, tile_id: int
    ) -> tuple[list[dict[str, Any]], int]:
        """Tile lookup through the tuple–tile mapping design.

        "At runtime, tile queries are answered by joining these two tables on
        the tuple_id column."
        """
        # The record table of the first database design: the precomputed
        # placement table, or (for separable layers) the raw table itself.
        place_table = layer_plan.placement_table or layer_plan.source_table
        if place_table is None:
            raise FetchError(
                f"layer {layer_plan.layer_name!r} has no record table for the "
                "mapping design; did precompute() run?"
            )
        mapping_table = layer_plan.mapping_table_for(tile_size)
        if not self.database.has_table(mapping_table):
            self.indexer.build_mapping_table(layer_plan, tile_size)
        columns = ", ".join(
            f"p.{name}" for name in self.database.table(place_table).schema.column_names
        )
        sql = (
            f"SELECT {columns} FROM {mapping_table} m "
            f"JOIN {place_table} p ON m.tuple_id = p.tuple_id "
            f"WHERE m.tile_id = {tile_id}"
        )
        result = self.engine.execute(sql)
        return result.to_dicts(), 1

    # -- metadata for the frontend -------------------------------------------------------------

    def canvas_info(self, canvas_id: str) -> dict[str, Any]:
        """Size and layer summary of a canvas (the frontend's bootstrap call)."""
        if canvas_id not in self.compiled.canvases:
            raise UnknownCanvasError(f"no canvas {canvas_id!r}")
        plan = self.compiled.canvas_plan(canvas_id)
        return {
            "canvas_id": canvas_id,
            "width": plan.width,
            "height": plan.height,
            "layers": [
                {
                    "index": layer.layer_index,
                    "name": layer.layer_name,
                    "static": layer.static,
                    "separable": layer.separable,
                }
                for layer in plan.layers
            ],
        }

    def layer_density(self, canvas_id: str, layer_index: int) -> float:
        """Average objects per canvas pixel² for one layer (box sizing hint)."""
        layer_plan = self._layer_plan(canvas_id, layer_index)
        table_name = layer_plan.placement_table or layer_plan.source_table
        if table_name is None or not self.database.has_table(table_name):
            return 0.0
        plan = self.compiled.canvas_plan(canvas_id)
        area = plan.width * plan.height
        if area <= 0:
            return 0.0
        return self.database.table(table_name).row_count / area

    # -- helpers -------------------------------------------------------------------------------

    def _resolve_layer(self, request: DataRequest) -> LayerPlan:
        return self._layer_plan(request.canvas_id, request.layer_index)

    def _layer_plan(self, canvas_id: str, layer_index: int) -> LayerPlan:
        return self.compiled.require_layer_plan(canvas_id, layer_index)
