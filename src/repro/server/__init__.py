"""The Kyrix backend server.

Sub-modules:

* :mod:`repro.server.indexer` — placement precomputation and index building,
* :mod:`repro.server.tile` / :mod:`repro.server.dbox` — the two fetching
  granularities (static tiles and dynamic boxes),
* :mod:`repro.server.schemes` — the fetching-scheme registry used by the
  evaluation (Figures 6/7),
* :mod:`repro.server.cache` — the LRU response cache (shared implementation
  with the frontend cache),
* :mod:`repro.server.prefetch` — momentum / neighbourhood prefetch predictors,
* :mod:`repro.server.backend` — the request-serving backend itself,
* :mod:`repro.server.http_server` — optional Flask HTTP deployment.
"""

from .backend import BackendStats, KyrixBackend
from .cache import CacheStats, LRUCache
from .dbox import (
    BoxCalculator,
    DensityAwareBoxCalculator,
    DynamicBoxState,
    ExactBoxCalculator,
    ExpandedBoxCalculator,
    make_box_calculator,
)
from .indexer import Indexer, PrecomputeReport
from .prefetch import MomentumPrefetcher, NeighborhoodPrefetcher, Prefetcher, make_prefetcher
from .schemes import (
    DESIGN_MAPPING,
    DESIGN_SPATIAL,
    FetchScheme,
    dbox50_scheme,
    dbox_scheme,
    paper_schemes,
    scheme_by_name,
    tile_mapping_scheme,
    tile_spatial_scheme,
)
from .tile import PAPER_TILE_SIZES, TileScheme

__all__ = [
    "BackendStats",
    "BoxCalculator",
    "CacheStats",
    "DESIGN_MAPPING",
    "DESIGN_SPATIAL",
    "DensityAwareBoxCalculator",
    "DynamicBoxState",
    "ExactBoxCalculator",
    "ExpandedBoxCalculator",
    "FetchScheme",
    "Indexer",
    "KyrixBackend",
    "LRUCache",
    "MomentumPrefetcher",
    "NeighborhoodPrefetcher",
    "PAPER_TILE_SIZES",
    "PrecomputeReport",
    "Prefetcher",
    "TileScheme",
    "dbox50_scheme",
    "dbox_scheme",
    "make_box_calculator",
    "make_prefetcher",
    "paper_schemes",
    "scheme_by_name",
    "tile_mapping_scheme",
    "tile_spatial_scheme",
]
