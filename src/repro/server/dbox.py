"""Dynamic-box fetching granularity — the paper's novel contribution.

"Dynamic box fetching amounts to requesting a box that contains the given
viewport.  We call this enclosing box a dynamic box because its size and
location changes dynamically.  Whenever the viewport moves outside the
current box, the frontend sends the current viewport location to the backend
and requests a new box."

Two box calculators reproduce the schemes evaluated in Section 3.3:

* :class:`ExactBoxCalculator` — "the box fetched is exactly the viewport in
  each step" (the *Dbox* scheme);
* :class:`ExpandedBoxCalculator` — "a box centered at the viewport center
  having width (height) 50% larger than the viewport width (height)" (the
  *Dbox 50%* scheme).

A third, :class:`DensityAwareBoxCalculator`, implements the paper's
observation (3) that "dynamic boxes can adjust their sizes and locations
based on data sparsity": it grows the box only while an object-count budget
is not exceeded, using per-layer density statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.viewport import Viewport
from ..errors import FetchError
from ..storage.rtree import Rect


class BoxCalculator:
    """Strategy deciding the box to fetch for a viewport."""

    #: Name used by benchmark reports.
    name: str = "box"

    def compute(self, viewport: Viewport, canvas_width: float, canvas_height: float) -> Rect:
        """Return the canvas-space box to fetch for ``viewport``."""
        raise NotImplementedError  # pragma: no cover - overridden


@dataclass
class ExactBoxCalculator(BoxCalculator):
    """Fetch exactly the viewport (the paper's *Dbox* scheme)."""

    name: str = "dbox"

    def compute(self, viewport: Viewport, canvas_width: float, canvas_height: float) -> Rect:
        return _clip(viewport.to_rect(), canvas_width, canvas_height)


@dataclass
class ExpandedBoxCalculator(BoxCalculator):
    """Fetch a box ``expansion`` larger than the viewport, centred on it.

    ``expansion = 0.5`` reproduces the paper's *Dbox 50%* scheme.
    """

    expansion: float = 0.5
    name: str = "dbox50"

    def __post_init__(self) -> None:
        if self.expansion < 0:
            raise FetchError(f"box expansion must be non-negative, got {self.expansion}")

    def compute(self, viewport: Viewport, canvas_width: float, canvas_height: float) -> Rect:
        rect = viewport.to_rect().scaled(1.0 + self.expansion)
        return _clip(rect, canvas_width, canvas_height)


@dataclass
class DensityAwareBoxCalculator(BoxCalculator):
    """Grow the box while the expected number of objects stays under budget.

    ``density`` is the layer's average objects per canvas pixel² (available
    from table statistics); the calculator expands the viewport in steps of
    ``step`` (fraction of viewport size) until either ``max_expansion`` or
    the ``object_budget`` is reached.  In dense regions the box stays close
    to the viewport; in sparse regions it grows to amortise future pans.
    """

    density: float
    object_budget: int = 20_000
    step: float = 0.25
    max_expansion: float = 2.0
    name: str = "dbox-adaptive"

    def __post_init__(self) -> None:
        if self.density < 0:
            raise FetchError("density must be non-negative")
        if self.object_budget <= 0:
            raise FetchError("object_budget must be positive")

    def compute(self, viewport: Viewport, canvas_width: float, canvas_height: float) -> Rect:
        expansion = 0.0
        best = viewport.to_rect()
        while expansion + self.step <= self.max_expansion:
            candidate = viewport.to_rect().scaled(1.0 + expansion + self.step)
            candidate = _clip(candidate, canvas_width, canvas_height)
            expected_objects = candidate.area * self.density
            if expected_objects > self.object_budget:
                break
            best = candidate
            expansion += self.step
        return _clip(best, canvas_width, canvas_height)


def _clip(rect: Rect, canvas_width: float, canvas_height: float) -> Rect:
    """Clip a box to the canvas extent."""
    return Rect(
        max(0.0, rect.xmin),
        max(0.0, rect.ymin),
        min(canvas_width, rect.xmax),
        min(canvas_height, rect.ymax),
    )


@dataclass
class DynamicBoxState:
    """Frontend-side state of the dynamic-box protocol for one layer.

    The frontend keeps the box it last fetched; a new fetch is needed only
    when the viewport is no longer contained in that box.
    """

    current_box: Rect | None = None
    fetches: int = 0
    skips: int = 0

    def needs_fetch(self, viewport: Viewport) -> bool:
        """True when the viewport has escaped the current box."""
        if self.current_box is None:
            return True
        return not self.current_box.contains(viewport.to_rect())

    def record_fetch(self, box: Rect) -> None:
        self.current_box = box
        self.fetches += 1

    def record_skip(self) -> None:
        self.skips += 1

    def reset(self) -> None:
        self.current_box = None
        self.fetches = 0
        self.skips = 0


def make_box_calculator(name: str, *, expansion: float = 0.5, density: float = 0.0) -> BoxCalculator:
    """Factory used by the benchmark harness and the frontend."""
    if name == "dbox":
        return ExactBoxCalculator()
    if name == "dbox50":
        return ExpandedBoxCalculator(expansion=expansion)
    if name == "dbox-adaptive":
        return DensityAwareBoxCalculator(density=density)
    raise FetchError(f"unknown box calculator {name!r}")
