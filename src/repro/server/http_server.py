"""Flask deployment of the Kyrix backend.

The original Kyrix backend is a web server the browser frontend talks to
over HTTP; this module exposes the same surface for any
:class:`~repro.serving.base.DataService` — a single
:class:`~repro.server.backend.KyrixBackend`, a sharded cluster router, or a
full middleware stack from :func:`repro.serving.build_service`:

* ``GET  /app``                         — application / canvas catalogue,
* ``GET  /canvas/<canvas_id>``          — canvas size and layer summary,
* ``GET  /tile``                        — one static tile of one layer,
* ``GET  /dbox``                        — one dynamic box of one layer,
* ``GET  /stats``                       — backend counters,
* ``GET  /metrics``                     — Prometheus-text span histograms,
* ``GET  /trace/<trace_id>``            — one finished trace as JSON.

Flask is an optional dependency: importing this module without Flask
installed raises a clear error only when :func:`create_app` is called, so
the rest of the library (and the benchmark harness, which uses the simulated
link instead of HTTP) works without it.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import TYPE_CHECKING, Any

from ..errors import KyrixError, ServerError
from ..net.protocol import DataRequest
from ..telemetry import get_registry, get_tracer
from .schemes import DESIGN_MAPPING, DESIGN_SPATIAL

if TYPE_CHECKING:
    from ..serving.base import DataService

#: How deep :func:`_stats_payload` follows nested stats objects before
#: falling back to ``str`` (guards against accidental reference cycles).
_STATS_MAX_DEPTH = 8


def _stats_payload(value: Any, depth: int = 0) -> Any:
    """Recursively turn a stats object into JSON-encodable data.

    Services expose heterogeneous stats: dataclasses (``BackendStats``),
    objects with a ``snapshot()`` method (``ClusterStats``, middleware
    counters), plain dicts/lists, and scalars — often *nested* (a cluster's
    snapshot holds per-shard stats objects).  Each level is resolved with
    the same rules, so every topology's ``/stats`` serves real JSON instead
    of ``str()`` debris.
    """
    if depth >= _STATS_MAX_DEPTH:
        return str(value)
    if is_dataclass(value) and not isinstance(value, type):
        return _stats_payload(asdict(value), depth + 1)
    if hasattr(value, "snapshot"):
        return _stats_payload(value.snapshot(), depth + 1)
    if isinstance(value, dict):
        return {str(key): _stats_payload(item, depth + 1) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_stats_payload(item, depth + 1) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def create_app(backend: "DataService"):
    """Create a Flask application serving any :class:`DataService`."""
    try:
        from flask import Flask, jsonify, request
    except ImportError as exc:  # pragma: no cover - flask is installed in CI
        raise ServerError(
            "Flask is required for the HTTP server; install repro[dev]"
        ) from exc

    app = Flask(f"kyrix-{backend.compiled.app_name}")

    @app.errorhandler(KyrixError)
    def _handle_kyrix_error(error: KyrixError):
        return jsonify({"error": str(error)}), 400

    @app.get("/app")
    def application_info():
        return jsonify(backend.compiled.describe())

    @app.get("/canvas/<canvas_id>")
    def canvas_info(canvas_id: str):
        return jsonify(backend.canvas_info(canvas_id))

    @app.get("/tile")
    def fetch_tile():
        params = _tile_params(request.args)
        response = backend.handle(params)
        return jsonify(_response_payload(response))

    @app.get("/dbox")
    def fetch_dbox():
        params = _box_params(request.args)
        response = backend.handle(params)
        return jsonify(_response_payload(response))

    @app.get("/stats")
    def stats():
        payload = _stats_payload(backend.stats)
        if not isinstance(payload, dict):
            payload = {"stats": payload}
        cache = getattr(backend, "cache", None)
        if cache is not None:
            payload["cache_hit_rate"] = cache.stats.hit_rate()
        return jsonify(payload)

    @app.get("/metrics")
    def metrics():
        body = get_registry().render_prometheus()
        return app.response_class(
            body, mimetype="text/plain; version=0.0.4; charset=utf-8"
        )

    @app.get("/trace/<trace_id>")
    def trace(trace_id: str):
        record = get_tracer().get_trace(trace_id)
        if record is None:
            return jsonify({"error": f"no finished trace {trace_id!r}"}), 404
        return jsonify(record)

    def _tile_params(args: Any) -> DataRequest:
        design = args.get("design", DESIGN_SPATIAL)
        if design not in (DESIGN_SPATIAL, DESIGN_MAPPING):
            raise ServerError(f"unknown design {design!r}")
        return DataRequest(
            app_name=backend.compiled.app_name,
            canvas_id=args["canvas"],
            layer_index=int(args.get("layer", 0)),
            granularity="tile",
            design=design,
            tile_id=int(args["tile_id"]),
            tile_size=int(args.get("tile_size", 1024)),
        )

    def _box_params(args: Any) -> DataRequest:
        return DataRequest(
            app_name=backend.compiled.app_name,
            canvas_id=args["canvas"],
            layer_index=int(args.get("layer", 0)),
            granularity="box",
            design=DESIGN_SPATIAL,
            xmin=float(args["xmin"]),
            ymin=float(args["ymin"]),
            xmax=float(args["xmax"]),
            ymax=float(args["ymax"]),
        )

    def _response_payload(response) -> dict[str, Any]:
        return {
            "objects": response.objects,
            "count": response.object_count(),
            "query_ms": response.query_ms,
            "from_cache": response.from_cache,
            "queries_issued": response.queries_issued,
        }

    return app
