"""Response caches.

Kyrix "employs both a frontend cache and a backend cache.  If there is a
cache miss in both, Kyrix backend will talk to the backing DBMS to fetch
data."  Both caches are LRU over request identities
(:meth:`repro.net.protocol.DataRequest.cache_key`); the same implementation
is reused on both sides, and as the shared router cache of a sharded
cluster — which concurrent sessions and the parallel scatter-gather
executor hammer from many threads at once, so every operation (including
the hit/miss/eviction accounting) is guarded by one lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

ValueT = TypeVar("ValueT")


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        """A flat dictionary of the counters (for reports and cluster stats)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "hit_rate": self.hit_rate(),
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0


class LRUCache(Generic[ValueT]):
    """A bounded, thread-safe least-recently-used cache.

    ``capacity`` of 0 disables caching entirely (every lookup misses), which
    is how the benchmark harness runs its no-cache ablations.  All
    operations — lookups, inserts, resizes and the stats counters they
    update — hold the cache's lock, so counter identities
    (``hits + misses == lookups``, ``inserts - evictions - invalidations ==
    len``) hold exactly under concurrent use.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, ValueT] = OrderedDict()
        # RLock: the capacity setter evicts while holding the lock.
        self._lock = threading.RLock()

    @property
    def capacity(self) -> int:
        return self._capacity

    @capacity.setter
    def capacity(self, capacity: int) -> None:
        """Resize the cache, evicting LRU entries that no longer fit.

        The benchmark ablations resize live caches (including down to 0);
        without eviction here a shrunk cache would keep serving entries
        beyond its capacity forever.
        """
        if capacity < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity}")
        with self._lock:
            self._capacity = capacity
            self._evict_to_capacity()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> ValueT | None:
        """Return the cached value and refresh its recency, or None."""
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
            return None

    def peek(self, key: Hashable) -> ValueT | None:
        """Return the cached value without touching recency or stats."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, value: ValueT) -> None:
        """Insert or refresh an entry, evicting LRU entries if full."""
        with self._lock:
            if self._capacity == 0:
                return
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            self.stats.inserts += 1
            self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:  # repolint: disable=lock-discipline
        # Caller holds the lock.
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when it existed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[Hashable]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._entries.keys())
