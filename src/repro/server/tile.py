"""Static-tile fetching granularity.

"The standard wisdom, as applied in Google Maps, ForeCache and Aperture
Tiles, is to decompose a canvas into fixed-size static tiles.  The frontend
then requests the tiles that intersect with the given viewport.  Every tile
is individually fetched and rendered."

A :class:`TileScheme` fixes a tile size for a canvas and provides the tile
arithmetic: tile ids are row-major over the tile grid (Figure 4a numbers the
35 tiles of a 7x5 grid this way).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FetchError
from ..storage.rtree import Rect

#: Tile sizes evaluated in the paper's experiments (Section 3.3).
PAPER_TILE_SIZES = (256, 1024, 4096)


@dataclass(frozen=True)
class TileScheme:
    """Fixed-size square tiling of a canvas."""

    canvas_width: float
    canvas_height: float
    tile_size: int

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise FetchError(f"tile size must be positive, got {self.tile_size}")
        if self.canvas_width <= 0 or self.canvas_height <= 0:
            raise FetchError("canvas dimensions must be positive")

    # -- grid dimensions -----------------------------------------------------------

    @property
    def columns(self) -> int:
        """Number of tile columns (partial tiles at the right edge count)."""
        return max(1, math.ceil(self.canvas_width / self.tile_size))

    @property
    def rows(self) -> int:
        """Number of tile rows (partial tiles at the bottom edge count)."""
        return max(1, math.ceil(self.canvas_height / self.tile_size))

    @property
    def tile_count(self) -> int:
        return self.columns * self.rows

    # -- id arithmetic ---------------------------------------------------------------

    def tile_id(self, column: int, row: int) -> int:
        """Row-major tile id of grid cell ``(column, row)``."""
        if not (0 <= column < self.columns and 0 <= row < self.rows):
            raise FetchError(
                f"tile ({column}, {row}) outside the {self.columns}x{self.rows} grid"
            )
        return row * self.columns + column

    def tile_coords(self, tile_id: int) -> tuple[int, int]:
        """Inverse of :meth:`tile_id`: ``tile_id -> (column, row)``."""
        if not (0 <= tile_id < self.tile_count):
            raise FetchError(f"tile id {tile_id} outside 0..{self.tile_count - 1}")
        return tile_id % self.columns, tile_id // self.columns

    def tile_rect(self, tile_id: int) -> Rect:
        """Canvas-space rectangle covered by a tile (clipped to the canvas)."""
        column, row = self.tile_coords(tile_id)
        xmin = column * self.tile_size
        ymin = row * self.tile_size
        xmax = min(self.canvas_width, xmin + self.tile_size)
        ymax = min(self.canvas_height, ymin + self.tile_size)
        return Rect(xmin, ymin, xmax, ymax)

    def tile_containing(self, x: float, y: float) -> int:
        """The id of the tile containing canvas point ``(x, y)``."""
        column = min(self.columns - 1, max(0, int(x // self.tile_size)))
        row = min(self.rows - 1, max(0, int(y // self.tile_size)))
        return self.tile_id(column, row)

    # -- viewport queries --------------------------------------------------------------

    def tiles_for_rect(self, rect: Rect) -> list[int]:
        """The ids of every tile intersecting ``rect``, in row-major order.

        This is what the frontend requests for a viewport under static
        tiling (the orange tiles of Figure 4a).
        """
        first_col = max(0, int(math.floor(rect.xmin / self.tile_size)))
        last_col = min(self.columns - 1, int(math.floor(self._inclusive(rect.xmax) / self.tile_size)))
        first_row = max(0, int(math.floor(rect.ymin / self.tile_size)))
        last_row = min(self.rows - 1, int(math.floor(self._inclusive(rect.ymax) / self.tile_size)))
        tiles: list[int] = []
        for row in range(first_row, last_row + 1):
            for column in range(first_col, last_col + 1):
                tiles.append(self.tile_id(column, row))
        return tiles

    def _inclusive(self, coordinate: float) -> float:
        """Treat a viewport edge exactly on a tile boundary as belonging to
        the tile to its left/top (so a 1024-wide viewport aligned to a
        1024-tile grid requests exactly one column of tiles)."""
        if coordinate > 0 and coordinate == int(coordinate) and coordinate % self.tile_size == 0:
            return coordinate - 1
        return coordinate

    def aligned(self, rect: Rect) -> bool:
        """True when ``rect``'s corners all lie on tile boundaries (trace a)."""
        return (
            rect.xmin % self.tile_size == 0
            and rect.ymin % self.tile_size == 0
            and rect.xmax % self.tile_size == 0
            and rect.ymax % self.tile_size == 0
        )
