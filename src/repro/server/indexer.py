"""Placement precomputation and index building.

"Based on the developer specification, the backend server then builds
indexes and performs necessary precomputation."  For every dynamic layer the
indexer:

1. runs the layer's transform query against the database,
2. applies the transform's post-processing function,
3. evaluates the placement function for every object,
4. materialises a *placement table* holding the transformed columns plus
   ``tuple_id``, ``cx``, ``cy`` and ``bbox``,
5. builds a B-tree on ``tuple_id`` and an R-tree on ``bbox`` (the paper's
   second database design), and
6. on demand, materialises a *tuple–tile mapping table* per tile size with
   B-tree indexes on ``tuple_id`` and ``tile_id`` (the first design).

Separable layers (Section 3.2) skip steps 3–5: their queries run directly
against the raw table, whose spatial index is assumed (and here verified /
created) by the DBA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..compiler.plan import CompiledApplication, LayerPlan
from ..core.application import Application
from ..core.placement import Placement
from ..core.transform import Transform
from ..errors import PrecomputeError
from ..metrics.timer import Timer
from ..minisql.executor import SQLEngine
from ..storage.database import Database
from ..storage.rtree import Rect
from ..storage.types import ColumnType
from .tile import TileScheme


@dataclass
class PrecomputeReport:
    """What precomputation did for one layer (used by tests and EXPERIMENTS.md)."""

    layer: tuple[str, int]
    placement_table: str | None
    rows: int
    separable: bool
    skipped: bool
    elapsed_ms: float
    mapping_tables: dict[int, str] = field(default_factory=dict)


class Indexer:
    """Builds placement tables, mapping tables and their indexes."""

    def __init__(
        self,
        database: Database,
        compiled: CompiledApplication,
        *,
        engine: SQLEngine | None = None,
    ) -> None:
        self.database = database
        self.compiled = compiled
        self.engine = engine or SQLEngine(database)
        self.reports: list[PrecomputeReport] = []

    # -- public API -----------------------------------------------------------------

    def precompute_all(self, tile_sizes: tuple[int, ...] = ()) -> list[PrecomputeReport]:
        """Precompute every dynamic layer (and optionally mapping tables)."""
        app = self._spec()
        reports = []
        for layer_plan in self.compiled.all_layer_plans():
            if layer_plan.static:
                continue
            report = self.precompute_layer(layer_plan)
            for tile_size in tile_sizes:
                name = self.build_mapping_table(layer_plan, tile_size)
                report.mapping_tables[tile_size] = name
            reports.append(report)
        return reports

    def precompute_layer(self, layer_plan: LayerPlan) -> PrecomputeReport:
        """Materialise the placement table for one dynamic layer."""
        app = self._spec()
        canvas = app.canvas(layer_plan.canvas_id)
        layer = canvas.layer(layer_plan.layer_index)
        transform = canvas.transform_for(layer)

        timer = Timer()
        timer.start()
        if layer_plan.separable:
            self._ensure_separable_index(layer_plan)
            report = PrecomputeReport(
                layer=layer_plan.key,
                placement_table=None,
                rows=self.database.table(layer_plan.source_table).row_count
                if layer_plan.source_table
                else 0,
                separable=True,
                skipped=True,
                elapsed_ms=timer.stop(),
            )
            self.reports.append(report)
            return report

        placement = layer.placement
        if placement is None:
            raise PrecomputeError(
                f"layer {layer_plan.layer_name!r} has no placement function"
            )
        rows = self._transformed_rows(transform)
        table_name = layer_plan.placement_table
        if table_name is None:
            raise PrecomputeError(
                f"layer {layer_plan.layer_name!r} has no placement table name"
            )
        row_count = self._materialise_placement_table(
            table_name, rows, placement, canvas.width, canvas.height, layer_plan
        )
        report = PrecomputeReport(
            layer=layer_plan.key,
            placement_table=table_name,
            rows=row_count,
            separable=False,
            skipped=False,
            elapsed_ms=timer.stop(),
        )
        self.reports.append(report)
        return report

    def build_mapping_table(self, layer_plan: LayerPlan, tile_size: int) -> str:
        """Materialise the tuple–tile mapping table for one tile size.

        "Each record in this table corresponds to a tuple that overlaps a
        tile" — a tuple whose bbox straddles a tile boundary appears once
        per overlapped tile.
        """
        app = self._spec()
        canvas_plan = self.compiled.canvas_plan(layer_plan.canvas_id)
        scheme = TileScheme(canvas_plan.width, canvas_plan.height, tile_size)
        mapping_name = layer_plan.mapping_table_for(tile_size)
        if self.database.has_table(mapping_name):
            return mapping_name

        source_name = layer_plan.placement_table or layer_plan.source_table
        if source_name is None:
            raise PrecomputeError(
                f"layer {layer_plan.layer_name!r} has no table to map tiles from"
            )
        source = self.database.table(source_name)
        bbox_position = source.schema.column_index("bbox")
        id_position = source.schema.column_index("tuple_id")

        mapping_rows: list[tuple[int, int]] = []
        for _, row in source.scan():
            bbox = row[bbox_position]
            if bbox is None:
                continue
            for tile_id in scheme.tiles_for_rect(Rect.from_tuple(bbox)):
                mapping_rows.append((row[id_position], tile_id))

        mapping = self.database.create_table(
            mapping_name, [("tuple_id", "integer"), ("tile_id", "integer")]
        )
        mapping.bulk_load(mapping_rows)
        mapping.create_index(f"{mapping_name}_tile", "tile_id", "btree")
        mapping.create_index(f"{mapping_name}_tuple", "tuple_id", "btree")
        return mapping_name

    # -- internals ---------------------------------------------------------------------

    def _spec(self) -> Application:
        if self.compiled.spec is None:
            raise PrecomputeError("compiled application carries no specification")
        return self.compiled.spec

    def _transformed_rows(self, transform: Transform) -> list[dict[str, Any]]:
        """Run the transform's query and post-processing function."""
        if not transform.query:
            return []
        result = self.engine.execute(transform.query)
        rows = [transform.apply(row) for row in result.to_dicts()]
        if transform.columns:
            missing = [c for c in transform.columns if rows and c not in rows[0]]
            if missing:
                raise PrecomputeError(
                    f"transform {transform.transform_id!r} promised columns "
                    f"{missing} that its query/function do not produce"
                )
        return rows

    def _materialise_placement_table(
        self,
        table_name: str,
        rows: list[dict[str, Any]],
        placement: Placement,
        canvas_width: float,
        canvas_height: float,
        layer_plan: LayerPlan,
    ) -> int:
        if self.database.has_table(table_name):
            self.database.drop_table(table_name)

        data_columns = self._infer_columns(rows, layer_plan)
        schema_columns: list[tuple[str, str]] = [("tuple_id", "integer")]
        schema_columns.extend(data_columns)
        schema_columns.extend(
            [("cx", "float"), ("cy", "float"), ("bbox", "bbox")]
        )
        table = self.database.create_table(table_name, schema_columns)

        out_of_bounds = 0
        loaded_rows: list[tuple[Any, ...]] = []
        for tuple_id, row in enumerate(rows):
            rect = placement.place(row)
            if (
                rect.xmax < 0
                or rect.ymax < 0
                or rect.xmin > canvas_width
                or rect.ymin > canvas_height
            ):
                out_of_bounds += 1
                continue
            cx, cy = rect.center
            values: list[Any] = [tuple_id]
            values.extend(row.get(name) for name, _ in data_columns)
            values.extend([cx, cy, rect.as_tuple()])
            loaded_rows.append(tuple(values))
        table.bulk_load(loaded_rows)
        table.create_index(f"{table_name}_tuple", "tuple_id", "btree", unique=True)
        table.create_index(f"{table_name}_bbox", "bbox", "rtree")
        if out_of_bounds:
            # Objects placed entirely off-canvas are dropped; this mirrors the
            # original system where the canvas is authoritative.
            pass
        return len(loaded_rows)

    @staticmethod
    def _infer_columns(
        rows: list[dict[str, Any]], layer_plan: LayerPlan
    ) -> list[tuple[str, str]]:
        """Infer storage types for the transform's output columns."""
        if not rows:
            names = list(layer_plan.columns)
            return [(name, "float") for name in names]
        sample = rows[0]
        names = list(layer_plan.columns) if layer_plan.columns else list(sample.keys())
        reserved = {"tuple_id", "cx", "cy", "bbox"}
        columns: list[tuple[str, str]] = []
        for name in names:
            if name in reserved:
                continue
            value = next(
                (row[name] for row in rows if row.get(name) is not None), None
            )
            columns.append((name, _python_type_to_column(value)))
        return columns

    def _ensure_separable_index(self, layer_plan: LayerPlan) -> None:
        """For separable layers, make sure the raw table has a spatial index.

        The paper assumes "DBAs have built spatial indexes on relevant raw
        data attributes when data is first loaded"; to keep the reproduction
        self-contained the index is created here when missing.
        """
        if layer_plan.source_table is None:
            raise PrecomputeError(
                f"separable layer {layer_plan.layer_name!r} has no source table"
            )
        table = self.database.table(layer_plan.source_table)
        if not table.schema.has_column("bbox"):
            raise PrecomputeError(
                f"separable layer {layer_plan.layer_name!r}: raw table "
                f"{layer_plan.source_table!r} has no bbox column"
            )
        if table.find_index_on("bbox", kinds=("rtree",)) is None:
            table.create_index(f"{layer_plan.source_table}_bbox_auto", "bbox", "rtree")
        if table.schema.has_column("tuple_id") and table.find_index_on(
            "tuple_id", kinds=("btree", "hash")
        ) is None:
            table.create_index(
                f"{layer_plan.source_table}_tuple_auto", "tuple_id", "btree"
            )


def _python_type_to_column(value: Any) -> str:
    if isinstance(value, bool):
        return "integer"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "text"
    if isinstance(value, (tuple, list)) and len(value) == 4:
        return "bbox"
    return "text"
