"""Predictive prefetching (Section 4 / related work).

ForeCache-style prefetching predicts where the user will look next and warms
the caches before the interaction happens.  Two predictors are provided:

* :class:`MomentumPrefetcher` — extrapolates the user's recent viewport
  movement ("momentum-based prefetching takes the user's recent movements
  into account");
* :class:`NeighborhoodPrefetcher` — a simple semantic-style predictor that
  prefetches the regions adjacent to the current viewport in every
  direction.

The predictors only *propose* viewports; the frontend decides whether to
issue the prefetch requests (and the benchmark harness measures the effect
of doing so on top of dynamic boxes — experiment E7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.viewport import Viewport


class Prefetcher:
    """Base class of prefetch predictors."""

    name = "none"

    def observe(self, viewport: Viewport) -> None:
        """Record that the user moved to ``viewport``."""

    def predict(self, count: int = 1) -> list[Viewport]:
        """Return up to ``count`` predicted future viewports."""
        return []

    def reset(self) -> None:
        """Forget all history (called on canvas jumps)."""


@dataclass
class MomentumPrefetcher(Prefetcher):
    """Extrapolate the average velocity of the last few viewport moves."""

    history_window: int = 4
    name: str = "momentum"
    _history: deque[Viewport] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        self._history = deque(maxlen=max(2, self.history_window))

    def observe(self, viewport: Viewport) -> None:
        self._history.append(viewport)

    def predict(self, count: int = 1) -> list[Viewport]:
        if len(self._history) < 2:
            return []
        moves = list(self._history)
        dxs = [b.x - a.x for a, b in zip(moves, moves[1:])]
        dys = [b.y - a.y for a, b in zip(moves, moves[1:])]
        avg_dx = sum(dxs) / len(dxs)
        avg_dy = sum(dys) / len(dys)
        if avg_dx == 0 and avg_dy == 0:
            return []
        current = moves[-1]
        predictions = []
        for step in range(1, count + 1):
            predictions.append(current.panned(avg_dx * step, avg_dy * step))
        return predictions

    def reset(self) -> None:
        self._history.clear()


@dataclass
class NeighborhoodPrefetcher(Prefetcher):
    """Prefetch the four viewports adjacent to the current one.

    A stand-in for ForeCache's semantic-based prediction: with no movement
    signal it assumes the user may pan in any cardinal direction by one
    viewport.
    """

    name: str = "neighborhood"
    _current: Viewport | None = None

    def observe(self, viewport: Viewport) -> None:
        self._current = viewport

    def predict(self, count: int = 4) -> list[Viewport]:
        if self._current is None:
            return []
        viewport = self._current
        neighbors = [
            viewport.panned(viewport.width, 0.0),
            viewport.panned(-viewport.width, 0.0),
            viewport.panned(0.0, viewport.height),
            viewport.panned(0.0, -viewport.height),
        ]
        return neighbors[:count]

    def reset(self) -> None:
        self._current = None


def make_prefetcher(strategy: str, *, history_window: int = 4) -> Prefetcher:
    """Factory from a :class:`~repro.config.PrefetchConfig` strategy name."""
    if strategy == "momentum":
        return MomentumPrefetcher(history_window=history_window)
    if strategy == "semantic":
        return NeighborhoodPrefetcher()
    return Prefetcher()
