"""A simulated network link between the Kyrix frontend and backend.

The paper's experiments ran frontend and backend on one EC2 instance, so per
request the dominant network terms are (a) a fixed round-trip overhead and
(b) payload-proportional transfer time.  The link charges exactly those two
terms to a virtual clock; it can optionally really ``sleep`` to produce
wall-clock-visible latency (off by default so tests stay fast).

This model is what makes the fetching-granularity comparison meaningful:
schemes that issue many small requests (256-pixel tiles) pay the round trip
many times, schemes that fetch huge regions (4096-pixel tiles) pay transfer
time for data the viewport never shows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..config import NetworkConfig
from ..metrics.timer import VirtualClock


@dataclass
class LinkStats:
    """Counters describing traffic over the link.

    The counters themselves are plain fields; :class:`SimulatedLink` updates
    them under its lock so concurrent sessions (and the shard transports of
    a parallel scatter-gather) never lose increments.
    """

    requests: int = 0
    bytes_transferred: int = 0
    simulated_ms: float = 0.0

    def reset(self) -> None:
        self.requests = 0
        self.bytes_transferred = 0
        self.simulated_ms = 0.0


class SimulatedLink:
    """Charges round-trip and transfer latency for each request/response."""

    def __init__(self, config: NetworkConfig | None = None, clock: VirtualClock | None = None) -> None:
        self.config = config or NetworkConfig()
        self.config.validate()
        self.clock = clock or VirtualClock()
        self.stats = LinkStats()
        # Traffic accounting is read-modify-write; a link shared by shard
        # transports is charged from executor threads concurrently.
        self._lock = threading.Lock()

    # -- latency model ------------------------------------------------------------

    def transfer_ms(self, payload_bytes: int) -> float:
        """Transfer time of a payload at the configured bandwidth."""
        bits = payload_bytes * 8
        seconds = bits / (self.config.bandwidth_mbps * 1_000_000.0)
        return seconds * 1000.0

    def round_trip_ms(self, payload_bytes: int) -> float:
        """Total simulated latency of one request/response exchange."""
        request_bytes = self.config.request_overhead_bytes
        return self.config.rtt_ms + self.transfer_ms(request_bytes + payload_bytes)

    # -- traffic accounting ----------------------------------------------------------

    def charge_request(self, payload_bytes: int) -> float:
        """Account one exchange and return its simulated latency (ms)."""
        latency = self.round_trip_ms(payload_bytes)
        with self._lock:
            self.stats.requests += 1
            self.stats.bytes_transferred += (
                payload_bytes + self.config.request_overhead_bytes
            )
            self.stats.simulated_ms += latency
            self.clock.advance(latency)
        if self.config.simulate_delay:
            # Sleep outside the lock: concurrent shard charges must overlap
            # their latency, not serialise it.
            time.sleep(latency / 1000.0)
        return latency

    def estimate_object_payload(self, object_count: int) -> int:
        """Payload size estimate for ``object_count`` serialized objects."""
        return object_count * self.config.per_object_bytes

    def reset(self) -> None:
        with self._lock:
            self.stats.reset()
