"""Wire protocol between the Kyrix frontend and backend.

Requests and responses are plain dataclasses with a JSON encoding, mirroring
the HTTP+JSON protocol of the original system.  The encoded payload size is
what the simulated link charges transfer time for.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from ..errors import ProtocolError


@dataclass(frozen=True)
class DataRequest:
    """A frontend -> backend request for the data of one region of a layer.

    ``granularity`` is ``"tile"`` (fetch one static tile by id) or ``"box"``
    (fetch an arbitrary rectangle — the dynamic-box scheme).
    """

    app_name: str
    canvas_id: str
    layer_index: int
    granularity: str
    #: Database design answering the request: "spatial" or "mapping".
    design: str = "spatial"
    # Tile requests:
    tile_id: int | None = None
    tile_size: int | None = None
    # Box requests (canvas coordinates):
    xmin: float | None = None
    ymin: float | None = None
    xmax: float | None = None
    ymax: float | None = None
    #: When routed through a sharded cluster, the shard this copy of the
    #: request targets.  ``None`` for direct (single-backend) requests and
    #: for the router-level identity of a scatter-gather request, so shard
    #: caches and the shared router cache never alias each other.
    shard_id: int | None = None
    #: Optional distributed-tracing context (``{"trace_id", "span_id",
    #: "sampled"}``) stamped onto the wire form by the transport stub so a
    #: worker on the far side can parent its spans under the caller's
    #: trace.  Never part of the cache identity; old peers that don't
    #: understand tracing simply carry it through untouched.
    trace: dict[str, Any] | None = None

    def cache_key(self) -> tuple[Any, ...]:
        """A hashable identity used by the frontend, backend and router caches."""
        if self.granularity == "tile":
            return (
                self.app_name, self.canvas_id, self.layer_index,
                "tile", self.design, self.tile_size, self.tile_id, self.shard_id,
            )
        return (
            self.app_name, self.canvas_id, self.layer_index,
            "box", self.xmin, self.ymin, self.xmax, self.ymax, self.shard_id,
        )

    def for_shard(self, shard_id: int) -> "DataRequest":
        """The same request addressed to one shard (shard-aware cache key)."""
        return replace(self, shard_id=shard_id)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-serialisable form (what transports put on the wire)."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DataRequest":
        return cls(**json.loads(text))


def _canonical_value(value: Any) -> Any:
    """Restore one decoded column value to its canonical form, recursively.

    Sequences are tuples at every nesting level (a polygon column decoded
    as list-of-point-pairs becomes a tuple of point tuples), and mapping
    values are canonicalised through.  Recursing is what keeps the wire
    encoding lossless for nested columns — converting only the top level
    would leave ``from_json(to_json(r)) != r`` for any response holding a
    nested sequence.
    """
    if isinstance(value, list):
        return tuple(_canonical_value(item) for item in value)
    if isinstance(value, dict):
        return {name: _canonical_value(item) for name, item in value.items()}
    return value


def _canonical_object(obj: dict[str, Any]) -> dict[str, Any]:
    """Restore the canonical row representation after a JSON decode.

    Rows are immutable: sequence-valued columns (``bbox``) are tuples in
    every in-process response, but JSON has no tuple type and decodes them
    as lists.  Converting them back — at every nesting depth — makes the
    wire encoding lossless — ``DataResponse.from_json(r.to_json()) == r``
    — which the shard transport depends on for parity with in-process
    calls.
    """
    return {name: _canonical_value(value) for name, value in obj.items()}


def _reject_unencodable(value: Any) -> Any:
    """The ``default=`` hook for response encoders: refuse, don't coerce.

    A column value with no JSON representation must fail the encode with a
    typed :class:`~repro.errors.ProtocolError`; stringifying it (the old
    ``default=str``) would produce a payload that decodes to something
    other than the original response, silently violating the
    round-trip-is-lossless invariant.
    """
    raise ProtocolError(
        f"column value of type {type(value).__name__} ({value!r}) has no "
        "lossless wire encoding"
    )


@dataclass
class DataResponse:
    """A backend -> frontend response carrying placed objects.

    Each object is a dictionary of the layer's transform columns plus the
    placement outputs ``cx``, ``cy`` and ``bbox``.  The JSON encoding is
    lossless: decoding restores sequence-valued columns to their canonical
    tuple form, so a response that crosses the wire compares equal to the
    in-process original.
    """

    request: DataRequest
    objects: list[dict[str, Any]] = field(default_factory=list)
    #: Milliseconds the backend spent running database queries.  For
    #: scatter-gather responses this is the *critical path*: the slowest
    #: shard plus the router's merge time (shards run in parallel).
    query_ms: float = 0.0
    #: Whether the response was served from the backend cache.
    from_cache: bool = False
    #: Number of distinct DBMS queries issued to produce this response.
    queries_issued: int = 0
    #: Per-shard query milliseconds (``{"shard0": 1.2, ...}``) when the
    #: response was produced by a cluster scatter-gather; empty otherwise.
    #: Keeps latency breakdowns attributable per shard.
    shard_ms: dict[str, float] = field(default_factory=dict)
    #: Whether this response was shared from a coalesced in-flight request
    #: issued by another concurrent session.
    coalesced: bool = False
    #: Span dictionaries recorded on the far side of a transport while the
    #: request was served there; the near-side stub drains these into its
    #: own tracer, so responses above the transport always carry ``[]`` and
    #: stay byte-identical across topologies.
    trace: list[dict[str, Any]] = field(default_factory=list)

    def object_count(self) -> int:
        return len(self.objects)

    def to_json(self, *, trace: list[dict[str, Any]] | None = None) -> str:
        """Canonical JSON encoding.

        ``trace`` overrides the response's own span list for this one
        encoding — transports use it to ship remotely-collected spans home
        without mutating a response object that may live in a cache.
        """
        return json.dumps(
            {
                "request": asdict(self.request),
                "objects": self.objects,
                "query_ms": self.query_ms,
                "from_cache": self.from_cache,
                "queries_issued": self.queries_issued,
                "shard_ms": self.shard_ms,
                "coalesced": self.coalesced,
                "trace": self.trace if trace is None else trace,
            },
            sort_keys=True,
            default=_reject_unencodable,
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataResponse":
        """Rebuild a response from its decoded JSON dictionary."""
        return cls(
            request=DataRequest(**data["request"]),
            objects=[_canonical_object(obj) for obj in data["objects"]],
            query_ms=data["query_ms"],
            from_cache=data["from_cache"],
            queries_issued=data.get("queries_issued", 0),
            shard_ms=data.get("shard_ms", {}),
            coalesced=data.get("coalesced", False),
            trace=list(data.get("trace", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "DataResponse":
        return cls.from_dict(json.loads(text))

    def payload_size(self, per_object_bytes: int | None = None) -> int:
        """Estimated serialized size in bytes.

        When ``per_object_bytes`` is given, a fast estimate (count x bytes)
        is used; otherwise the exact JSON encoding is measured.
        """
        if per_object_bytes is not None:
            return len(self.objects) * per_object_bytes
        return len(self.to_json().encode("utf-8"))
