"""A real socket transport for shard conversations.

:mod:`repro.serving.transport` put the JSON envelope on the shard boundary;
this module puts a *network* under it.  Envelopes cross a localhost (or any)
TCP connection as length-prefixed frames:

* **Frame codec** — every payload (UTF-8 text, or raw bytes for the
  binary columnar codec) is preceded by a 4-byte big-endian length.
  :func:`encode_frame` / :class:`FrameDecoder` are pure functions of bytes
  (no sockets), so the property suite can hammer them with arbitrary
  unicode and arbitrary chunk boundaries.  Oversized frames raise
  :class:`~repro.errors.FrameTooLargeError`, streams that end mid-frame
  raise :class:`~repro.errors.TruncatedFrameError`, and a peer that sends
  *extra* frames for one round-trip raises
  :class:`~repro.errors.ProtocolViolationError` — typed, so callers can
  distinguish a chatty peer from a dead one.
* :class:`SocketTransport` — the client side of the wire: a
  :class:`~repro.serving.transport.ShardTransport` that connects lazily,
  serialises request/reply pairs on one connection, and reconnects after a
  failure.  On first use it negotiates the frame payload codec with one
  :data:`~repro.net.columnar.TAG_HELLO` exchange (binary preferred, JSON
  fallback); a legacy peer that answers the hello with untagged JSON
  drops the connection back to the pre-codec framing, so mixed-version
  clusters keep talking.  Socket-level failures (connection refused,
  reset, torn reply) surface as
  :class:`~repro.errors.WorkerConnectionError` so the replica layer can
  treat them as a dead worker rather than a query error.
* :func:`serve_connection` — the server side's per-connection loop, used by
  :mod:`repro.serving.worker`: read a frame, hand the payload to a
  handler, write the reply frame, until the peer disconnects.

The framing stays minimal (no multiplexing): one frame out, one frame
back, exactly the conversation
:class:`~repro.serving.transport.RemoteBackendStub` already has; codec
negotiation is one ordinary frame exchange on top.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Callable, Iterator

from ..errors import (
    FrameTooLargeError,
    ProtocolViolationError,
    TruncatedFrameError,
    WorkerConnectionError,
)
from .columnar import (
    CODEC_BINARY,
    CODEC_JSON,
    TAG_BINARY,
    TAG_JSON,
    encode_hello,
    parse_hello_reply,
)

#: 4-byte big-endian unsigned length prefix.
FRAME_HEADER = struct.Struct(">I")

#: Default ceiling on a single frame's payload (64 MiB) — far above any
#: shard response at supported scales, low enough to reject a garbage
#: header (e.g. random bytes decoded as a multi-gigabyte length) up front.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Frame codec (pure bytes; no sockets)
# ---------------------------------------------------------------------------


def encode_frame(
    payload: str | bytes, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Encode one payload as ``length || bytes`` (text is sent as UTF-8)."""
    data = payload.encode("utf-8") if isinstance(payload, str) else payload
    if len(data) > max_bytes:
        raise FrameTooLargeError(
            f"frame payload is {len(data)} bytes (> {max_bytes} byte limit)"
        )
    return FRAME_HEADER.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed frames.

    Feed it byte chunks of *any* size (single bytes, frames split mid-header,
    several frames glued together) and it yields complete payloads in order
    — UTF-8 text by default, raw ``bytes`` with ``text=False`` (the binary
    columnar codec's payloads are not text).  Call :meth:`finish` when the
    stream ends: a stream that stops inside a header or payload raises
    :class:`TruncatedFrameError`.
    """

    def __init__(
        self, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES, text: bool = True
    ) -> None:
        self.max_bytes = max_bytes
        self.text = text
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decoded into a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[str] | list[bytes]:
        """Absorb one chunk and return every frame it completed."""
        self._buffer.extend(chunk)
        frames: list = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                break
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_bytes:
                raise FrameTooLargeError(
                    f"frame header declares {length} bytes (> {self.max_bytes} byte limit)"
                )
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[FRAME_HEADER.size:end])
            frames.append(payload.decode("utf-8") if self.text else payload)
            del self._buffer[:end]
        return frames

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended mid-frame with {len(self._buffer)} undecoded byte(s)"
            )


# ---------------------------------------------------------------------------
# Socket helpers (blocking I/O over the codec)
# ---------------------------------------------------------------------------


def write_frame(
    sock: socket.socket,
    payload: str | bytes,
    *,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Write one frame to a connected socket."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def read_frame(
    sock: socket.socket,
    *,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    text: bool = True,
) -> str | bytes | None:
    """Read one frame from a connected socket.

    Returns ``None`` on a clean end-of-stream (the peer closed between
    frames); raises :class:`TruncatedFrameError` if the stream dies inside
    a frame and :class:`ProtocolViolationError` if the peer pipelines
    extra frames into the single round-trip.
    """
    decoder = FrameDecoder(max_bytes=max_bytes, text=text)
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if decoder.pending_bytes == 0:
                return None
            decoder.finish()  # raises TruncatedFrameError
        frames = decoder.feed(chunk)
        if frames:
            # One frame per call: anything beyond the first is a live peer
            # breaking the one-out/one-back conversation — a protocol
            # violation, not a truncated stream.
            if len(frames) > 1 or decoder.pending_bytes:
                raise ProtocolViolationError(
                    "peer sent more than one frame for a single round-trip"
                )
            return frames[0]


def serve_connection(
    sock: socket.socket,
    handler: Callable[[str], str] | Callable[[bytes], bytes],
    *,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    text: bool = True,
) -> Iterator[None]:
    """Serve one connection: frame in, ``handler`` reply, frame out.

    With ``text=True`` (the legacy JSON wire) the handler maps ``str`` to
    ``str``; with ``text=False`` it maps raw frame payload ``bytes`` to
    reply ``bytes`` (the codec-tagged wire, where the handler dispatches
    on the tag byte itself).  A generator so the caller (the worker's
    connection thread) can check a shutdown flag between requests;
    iteration ends when the peer closes.
    """
    while True:
        try:
            payload = read_frame(sock, max_bytes=max_bytes, text=text)
        except (TruncatedFrameError, FrameTooLargeError, OSError):
            # Peer vanished mid-frame, or sent an over-limit/forged header:
            # nothing sane to reply to — drop the connection quietly.
            return
        if payload is None:
            return
        try:
            write_frame(sock, handler(payload), max_bytes=max_bytes)
        except (OSError, FrameTooLargeError):
            # The peer hung up while we served (client timeout/teardown),
            # or the reply exceeds the frame limit: either way no reply
            # can be delivered — close the connection instead of letting
            # the exception escape the worker's connection thread.
            return
        yield


class SocketTransport:
    """The client end of the wire: one shard worker behind a TCP address.

    Implements the :class:`~repro.serving.transport.ShardTransport` seam
    (``roundtrip(str) -> str``), so a
    :class:`~repro.serving.transport.RemoteBackendStub` pointed here is
    indistinguishable from one pointed at an in-process
    :class:`~repro.serving.transport.LocalTransport`.

    The connection is created lazily on the first round-trip and request/
    reply pairs are serialised under a lock (the scatter executor may route
    concurrent sessions at the same worker).  Every socket-level failure —
    connection refused, reset, a reply cut off mid-frame — tears the
    connection down and raises :class:`~repro.errors.WorkerConnectionError`;
    the next round-trip reconnects from scratch (and renegotiates its
    codec), so a restarted worker is picked up without special handling.

    Two client surfaces share the connection: the legacy
    ``roundtrip(str) -> str`` (untagged JSON payloads, byte-identical to
    the pre-codec wire) and the codec-aware pair
    :meth:`negotiate` / :meth:`exchange` the
    :class:`~repro.serving.transport.RemoteBackendStub` drives.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout_s: float = 5.0,
        io_timeout_s: float | None = 30.0,
        max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        #: Per-recv/send budget.  A worker that is alive but wedged (stuck
        #: handler, SIGSTOP) never resets the connection, so without a read
        #: timeout the scatter thread would block forever and failover
        #: would never engage; the timeout surfaces as
        #: :class:`WorkerConnectionError` like any other dead endpoint.
        self.io_timeout_s = io_timeout_s
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._closed = False
        #: Codec negotiated on the live connection (None = not negotiated
        #: yet); reset on teardown so a replacement worker renegotiates.
        self._codec: str | None = None
        #: True when the peer turned out to be a legacy JSON server that
        #: cannot speak tagged frames at all: payloads go untagged.
        self._legacy = False

    def _connect(self) -> socket.socket:  # repolint: disable=lock-discipline
        # Caller (roundtrip/close) holds self._lock.
        if self._sock is None:
            if self._closed:
                raise WorkerConnectionError(
                    f"transport to {self.host}:{self.port} is closed"
                )
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
            # Round-trips are request/reply over tiny frames; disable Nagle
            # so a frame is not held back waiting for a coalescing window.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.io_timeout_s)
            self._sock = sock
        return self._sock

    def _teardown(self) -> None:  # repolint: disable=lock-discipline
        # Caller (roundtrip/negotiate/exchange/close) holds self._lock.
        sock, self._sock = self._sock, None
        self._codec = None
        self._legacy = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _roundtrip_locked(self, payload: str | bytes, *, text: bool) -> str | bytes:
        # Caller holds self._lock.
        try:
            sock = self._connect()
            write_frame(sock, payload, max_bytes=self.max_bytes)
            reply = read_frame(sock, max_bytes=self.max_bytes, text=text)
        except ProtocolViolationError as error:
            # A live peer pipelined extra frames: the conversation is
            # desynchronised beyond repair — drop the connection, but say
            # what actually happened instead of blaming a truncated
            # stream.
            self._teardown()
            raise WorkerConnectionError(
                f"worker at {self.host}:{self.port} violated the framing "
                f"protocol: {error}"
            ) from error
        except (OSError, TruncatedFrameError, FrameTooLargeError) as error:
            # Any failure — dead socket, torn reply, or an over-limit
            # frame whose tail is still buffered on the wire — leaves
            # the connection unusable or desynchronized: drop it so
            # the next round-trip reconnects from a clean stream.
            self._teardown()
            raise WorkerConnectionError(
                f"worker at {self.host}:{self.port} unreachable: "
                f"{type(error).__name__}: {error}"
            ) from error
        if reply is None:
            self._teardown()
            raise WorkerConnectionError(
                f"worker at {self.host}:{self.port} closed the connection "
                "before replying"
            )
        return reply

    def roundtrip(self, payload: str) -> str:
        with self._lock:
            return self._roundtrip_locked(payload, text=True)

    # -- codec negotiation ----------------------------------------------------

    def _negotiate_locked(self, preference: tuple[str, ...]) -> str:
        # Caller holds self._lock.
        if self._codec is not None:
            return self._codec
        if tuple(preference) == (CODEC_JSON,):
            # A JSON-pinned client skips the hello and keeps the untagged
            # legacy framing, so its wire stays byte-identical to the
            # pre-codec protocol against both old and new servers.
            self._codec, self._legacy = CODEC_JSON, True
            return self._codec
        reply = self._roundtrip_locked(encode_hello(preference), text=False)
        chosen = parse_hello_reply(reply)
        if chosen is None:
            # A legacy peer answered the hello with an untagged JSON error
            # envelope: discard it and fall back to the untagged wire.
            self._codec, self._legacy = CODEC_JSON, True
        else:
            self._codec, self._legacy = chosen, False
        return self._codec

    def negotiate(self, preference: tuple[str, ...]) -> str:
        """The codec this connection speaks, negotiating it if needed."""
        with self._lock:
            return self._negotiate_locked(preference)

    def exchange(self, codec: str, body: bytes) -> tuple[str, bytes]:
        """One tagged round-trip: send ``body`` under ``codec``, return the
        reply as ``(reply_codec, reply_body)``.

        JSON payloads are always sendable — metadata operations ride the
        JSON envelope even on a binary-negotiated connection (tagged, or
        untagged against a legacy peer).  A *binary* payload requires the
        negotiated codec to be binary; if a reconnect renegotiated the
        connection down to JSON in between, the mismatch surfaces as
        :class:`WorkerConnectionError` so the caller re-encodes on a clean
        attempt.
        """
        with self._lock:
            if self._codec is None:
                fallback = (codec,) if codec == CODEC_JSON else (codec, CODEC_JSON)
                self._negotiate_locked(fallback)
            if codec == CODEC_JSON and self._legacy:
                payload = body
            elif codec == CODEC_JSON:
                payload = TAG_JSON + body
            elif codec != self._codec:
                raise WorkerConnectionError(
                    f"worker at {self.host}:{self.port} renegotiated codec "
                    f"{self._codec!r} mid-conversation (payload was {codec!r})"
                )
            else:
                payload = TAG_BINARY + body
            reply = self._roundtrip_locked(payload, text=False)
            first = reply[:1]
            if first == TAG_BINARY:
                return CODEC_BINARY, reply[1:]
            if first == TAG_JSON:
                return CODEC_JSON, reply[1:]
            return CODEC_JSON, reply

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._teardown()

    def __repr__(self) -> str:
        return f"SocketTransport({self.host}:{self.port})"
