"""Binary columnar wire codec for shard conversations.

The JSON envelope (:mod:`repro.serving.transport`) made shard calls
wire-faithful, but every scatter pays ``DataResponse`` ⇄ JSON text both
ways — the dominant per-step cost for wide responses (ROADMAP open item 2).
This module is the compact alternative: requests and responses cross as
packed binary messages, with each response's objects laid out as **typed
columns** (int / float / str / tuple-of-float bbox) instead of repeating
every column name and textual value per row.

Framing and negotiation
-----------------------
The length-prefixed transport (:mod:`repro.net.socket_transport`) is
unchanged; this codec only redefines the frame *payload*.  Every new-style
payload starts with a one-byte codec tag:

* ``H`` — a negotiation hello.  The client offers its codec preference
  (``{"codecs": ["binary", "json"]}``); the server answers with the first
  offered codec it accepts (``{"codec": "binary"}``).
* ``B`` — a binary message (request, response or error; see below).
* ``J`` — a JSON envelope, byte-identical to the legacy payload after the
  tag.

A payload starting with ``{`` is a **legacy untagged JSON envelope**: new
servers answer it with an untagged JSON reply, and a client whose hello is
answered with untagged JSON (a legacy server choking on the ``H`` frame)
marks the connection legacy and falls back to untagged JSON — so mixed-
version peers interoperate in both directions, as do clusters whose router
and workers negotiate different codecs per connection.

Binary messages
---------------
After the ``B`` tag, one kind byte selects the message:

* ``MSG_REQUEST`` — a packed :class:`~repro.net.protocol.DataRequest`
  (the ``handle`` hot path; metadata operations stay JSON envelopes).
  A trace context rides the message exactly as it rides the JSON wire
  form: stamped at encode time, popped server-side before the request
  object is rebuilt, so caches never see it.
* ``MSG_RESPONSE`` — a packed :class:`~repro.net.protocol.DataResponse`:
  scalar fields, the per-shard timing map, remotely-collected trace spans
  (a JSON blob, exactly the envelope's ``trace`` field), and the objects
  as a columnar block.
* ``MSG_ERROR`` — an exception type name and message, the binary peer of
  :func:`repro.serving.transport.encode_error`.

The columnar block stores, per column: the name, a one-byte type tag, a
presence bitmap (key absent vs present), a null bitmap, then the packed
values of the present non-null rows in row order.  Columns that are not
homogeneously typed — or hold values with no fixed-width representation —
fall back to per-cell canonical JSON, decoded through the same recursive
canonicalisation as the JSON wire path, so **decoded payloads are
identical across codecs** and ``decode(encode(r)) == r`` holds for every
response the JSON codec can carry (and some it cannot, e.g. NaN floats).

Integers outside the signed 64-bit range and mixed int/float columns use
the JSON fallback deliberately: packing them as doubles would round or
retype them, and the law of this wire is losslessness first.
"""

from __future__ import annotations

import json
import struct
from dataclasses import replace
from typing import Any

from ..errors import ProtocolError
from .protocol import (
    DataRequest,
    DataResponse,
    _canonical_value,
    _reject_unencodable,
)

__all__ = [
    "CODEC_BINARY",
    "CODEC_JSON",
    "TAG_BINARY",
    "TAG_HELLO",
    "TAG_JSON",
    "MSG_ERROR",
    "MSG_REQUEST",
    "MSG_RESPONSE",
    "answer_hello",
    "codec_preference",
    "decode_error",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_hello",
    "encode_request",
    "encode_response",
    "message_kind",
    "negotiate_codec",
    "parse_hello_reply",
]

#: Codec names as they appear in hellos and ``cluster.wire_codec``.
CODEC_BINARY = "binary"
CODEC_JSON = "json"

#: One-byte codec tags prefixed to every new-style frame payload.
TAG_HELLO = b"H"
TAG_JSON = b"J"
TAG_BINARY = b"B"

#: Binary message kinds (the byte after the ``B`` tag).
MSG_REQUEST = 1
MSG_RESPONSE = 2
MSG_ERROR = 3

#: Column type tags of the columnar block.
COL_JSON = 0  # per-cell canonical JSON (mixed / nested / exotic columns)
COL_I64 = 1
COL_F64 = 2
COL_STR = 3
COL_BOOL = 4
COL_F64S = 5  # tuple of floats (e.g. the ``bbox`` placement column)

_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


# ---------------------------------------------------------------------------
# Codec negotiation
# ---------------------------------------------------------------------------


def codec_preference(mode: str) -> tuple[str, ...]:
    """The codec preference list for a ``cluster.wire_codec`` mode.

    ``auto`` prefers binary with JSON fallback; ``binary`` and ``json``
    pin the single codec (a ``json`` peer also keeps legacy untagged
    framing, so it interoperates with pre-codec peers byte-for-byte).
    """
    if mode == CODEC_JSON:
        return (CODEC_JSON,)
    if mode == CODEC_BINARY:
        return (CODEC_BINARY,)
    return (CODEC_BINARY, CODEC_JSON)


def negotiate_codec(
    preference: tuple[str, ...], allowed: tuple[str, ...]
) -> str | None:
    """The first client-preferred codec the server accepts, or ``None``."""
    for name in preference:
        if name in allowed:
            return name
    return None


def encode_hello(preference: tuple[str, ...]) -> bytes:
    """The client's negotiation frame payload (tag included)."""
    return TAG_HELLO + json.dumps(
        {"codecs": list(preference)}, sort_keys=True
    ).encode("utf-8")


def answer_hello(body: bytes, allowed: tuple[str, ...]) -> bytes:
    """The server's reply payload (tag included) to a hello ``body``."""
    try:
        offered = json.loads(body.decode("utf-8")).get("codecs") or []
    except (ValueError, UnicodeDecodeError, AttributeError):
        offered = []
    chosen = negotiate_codec(tuple(offered), allowed)
    if chosen is None:
        reply = {"codecs": list(allowed), "error": "no common wire codec"}
    else:
        reply = {"codec": chosen}
    return TAG_HELLO + json.dumps(reply, sort_keys=True).encode("utf-8")


def parse_hello_reply(payload: bytes) -> str | None:
    """The codec a hello reply selected.

    Returns ``None`` when the peer is a legacy JSON server that answered
    the hello with an untagged JSON error envelope (it cannot speak tagged
    frames at all); raises :class:`~repro.errors.ProtocolError` when the
    peer understood the hello but accepts no offered codec.
    """
    if payload[:1] != TAG_HELLO:
        return None
    try:
        data = json.loads(payload[1:].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"malformed hello reply: {error}") from error
    codec = data.get("codec")
    if isinstance(codec, str):
        return codec
    raise ProtocolError(
        "codec negotiation failed: "
        f"{data.get('error', 'no codec selected')} "
        f"(server accepts {data.get('codecs')})"
    )


# ---------------------------------------------------------------------------
# Primitive writers / reader
# ---------------------------------------------------------------------------


def _w_text(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    out += _U32.pack(len(data))
    out += data


def _w_opt_i64(out: bytearray, value: int | None) -> None:
    if value is None:
        out += b"\x00"
    else:
        out += b"\x01"
        out += _I64.pack(value)


def _w_opt_f64(out: bytearray, value: float | None) -> None:
    if value is None:
        out += b"\x00"
    else:
        out += b"\x01"
        out += _F64.pack(value)


def _w_json_or_none(out: bytearray, value: Any) -> None:
    """A JSON blob, with zero length meaning ``None`` / empty."""
    if not value:
        out += _U32.pack(0)
        return
    _w_text(out, json.dumps(value, sort_keys=True, default=_reject_unencodable))


class _Reader:
    """A bounds-checked cursor over one binary message body."""

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def raw(self, size: int) -> bytes:
        end = self._offset + size
        if size < 0 or end > len(self._data):
            raise ProtocolError(
                f"binary message truncated: needed {size} byte(s) at "
                f"offset {self._offset} of {len(self._data)}"
            )
        chunk = self._data[self._offset : end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return self.raw(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.raw(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.raw(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.raw(8))[0]

    def text(self) -> str:
        data = self.raw(self.u32())
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"binary message holds invalid UTF-8: {error}") from error

    def opt_i64(self) -> int | None:
        return self.i64() if self.u8() else None

    def opt_f64(self) -> float | None:
        return self.f64() if self.u8() else None

    def json_or_none(self) -> Any:
        length = self.u32()
        if length == 0:
            return None
        try:
            return json.loads(self.raw(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"binary message holds invalid JSON: {error}") from error

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise ProtocolError(
                f"binary message has {len(self._data) - self._offset} "
                "trailing byte(s)"
            )


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def _pack_request(
    out: bytearray, request: DataRequest, trace: dict[str, Any] | None
) -> None:
    """Pack every :class:`DataRequest` field, wire order.

    ``trace`` overrides the request's own ``trace`` field for this one
    encoding — the transport stub stamps the caller's context onto the
    wire form only, exactly as the JSON path does.
    """
    _w_text(out, request.app_name)
    _w_text(out, request.canvas_id)
    out += _I64.pack(request.layer_index)
    _w_text(out, request.granularity)
    _w_text(out, request.design)
    _w_opt_i64(out, request.tile_id)
    _w_opt_i64(out, request.tile_size)
    _w_opt_f64(out, request.xmin)
    _w_opt_f64(out, request.ymin)
    _w_opt_f64(out, request.xmax)
    _w_opt_f64(out, request.ymax)
    _w_opt_i64(out, request.shard_id)
    _w_json_or_none(out, request.trace if trace is None else trace)


def _unpack_request(reader: _Reader) -> DataRequest:
    """The inverse of :func:`_pack_request`: every field, same order."""
    return DataRequest(
        app_name=reader.text(),
        canvas_id=reader.text(),
        layer_index=reader.i64(),
        granularity=reader.text(),
        design=reader.text(),
        tile_id=reader.opt_i64(),
        tile_size=reader.opt_i64(),
        xmin=reader.opt_f64(),
        ymin=reader.opt_f64(),
        xmax=reader.opt_f64(),
        ymax=reader.opt_f64(),
        shard_id=reader.opt_i64(),
        trace=reader.json_or_none(),
    )


def encode_request(
    request: DataRequest, *, trace: dict[str, Any] | None = None
) -> bytes:
    """Encode one ``handle`` request as a binary message body (no tag)."""
    out = bytearray()
    out += _U8.pack(MSG_REQUEST)
    _pack_request(out, request, trace)
    return bytes(out)


def decode_request(body: bytes) -> tuple[DataRequest, dict[str, Any] | None]:
    """Decode a request body into ``(request, trace_context)``.

    The trace context is popped off the rebuilt request — server-side
    caches and responses must stay identical whether or not the caller
    traces, matching the JSON path's lift-before-rebuild.
    """
    reader = _Reader(body)
    kind = reader.u8()
    if kind != MSG_REQUEST:
        raise ProtocolError(f"expected a request message, got kind {kind}")
    request = _unpack_request(reader)
    reader.expect_end()
    context = request.trace
    if context is not None:
        request = replace(request, trace=None)
    return request, context


# ---------------------------------------------------------------------------
# The columnar objects block
# ---------------------------------------------------------------------------


def _column_tag(values: list[Any]) -> int:
    """Pick the packed representation for one column's non-null values."""
    saw_bool = saw_int = saw_float = saw_str = saw_floats = False
    for value in values:
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            if not _I64_MIN <= value <= _I64_MAX:
                return COL_JSON
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        elif isinstance(value, str):
            saw_str = True
        elif (
            isinstance(value, tuple)
            and len(value) <= 255
            and all(isinstance(item, float) for item in value)
        ):
            saw_floats = True
        else:
            return COL_JSON
    flags = (saw_bool, saw_int, saw_float, saw_str, saw_floats)
    if sum(flags) != 1:
        # Mixed columns (including int/float mixes) fall back to JSON
        # cells: packing 1 and 1.0 into one numeric column would retype
        # one of them, and losslessness outranks compactness.
        return COL_JSON
    return (COL_BOOL, COL_I64, COL_F64, COL_STR, COL_F64S)[flags.index(True)]


def _encode_objects(out: bytearray, objects: list[dict[str, Any]]) -> None:
    n_rows = len(objects)
    out += _U32.pack(n_rows)
    names = sorted({name for obj in objects for name in obj})
    out += _U32.pack(len(names))
    bitmap_size = (n_rows + 7) // 8
    for name in names:
        _w_text(out, name)
        presence = bytearray(bitmap_size)
        nulls = bytearray(bitmap_size)
        values: list[Any] = []
        for row, obj in enumerate(objects):
            if name not in obj:
                continue
            presence[row >> 3] |= 1 << (row & 7)
            value = obj[name]
            if value is None:
                nulls[row >> 3] |= 1 << (row & 7)
            else:
                values.append(value)
        tag = _column_tag(values)
        out += _U8.pack(tag)
        out += presence
        out += nulls
        if tag == COL_I64:
            out += struct.pack(f">{len(values)}q", *values)
        elif tag == COL_F64:
            out += struct.pack(f">{len(values)}d", *values)
        elif tag == COL_BOOL:
            out += bytes(1 if value else 0 for value in values)
        elif tag == COL_STR:
            for value in values:
                _w_text(out, value)
        elif tag == COL_F64S:
            for value in values:
                out += _U8.pack(len(value))
                out += struct.pack(f">{len(value)}d", *value)
        else:
            for value in values:
                _w_text(
                    out,
                    json.dumps(value, sort_keys=True, default=_reject_unencodable),
                )


def _decode_objects(reader: _Reader) -> list[dict[str, Any]]:
    n_rows = reader.u32()
    n_cols = reader.u32()
    objects: list[dict[str, Any]] = [{} for _ in range(n_rows)]
    bitmap_size = (n_rows + 7) // 8
    for _ in range(n_cols):
        name = reader.text()
        tag = reader.u8()
        presence = reader.raw(bitmap_size)
        nulls = reader.raw(bitmap_size)
        present_rows = [
            row for row in range(n_rows) if presence[row >> 3] & (1 << (row & 7))
        ]
        value_rows = [
            row for row in present_rows if not nulls[row >> 3] & (1 << (row & 7))
        ]
        count = len(value_rows)
        values: list[Any]
        if tag == COL_I64:
            values = list(struct.unpack(f">{count}q", reader.raw(8 * count)))
        elif tag == COL_F64:
            values = list(struct.unpack(f">{count}d", reader.raw(8 * count)))
        elif tag == COL_BOOL:
            values = [byte != 0 for byte in reader.raw(count)]
        elif tag == COL_STR:
            values = [reader.text() for _ in range(count)]
        elif tag == COL_F64S:
            values = []
            for _ in range(count):
                size = reader.u8()
                values.append(struct.unpack(f">{size}d", reader.raw(8 * size)))
        elif tag == COL_JSON:
            values = [_canonical_value(json.loads(reader.text())) for _ in range(count)]
        else:
            raise ProtocolError(f"unknown column type tag {tag}")
        cursor = iter(values)
        for row in present_rows:
            if nulls[row >> 3] & (1 << (row & 7)):
                objects[row][name] = None
            else:
                objects[row][name] = next(cursor)
    return objects


# ---------------------------------------------------------------------------
# Responses and errors
# ---------------------------------------------------------------------------


def encode_response(
    response: DataResponse, *, trace: list[dict[str, Any]] | None = None
) -> bytes:
    """Encode one response as a binary message body (no tag).

    ``trace`` overrides the response's own span list for this one
    encoding, exactly like :meth:`DataResponse.to_json` — transports ship
    remotely-collected spans home without mutating a cached response.
    """
    out = bytearray()
    out += _U8.pack(MSG_RESPONSE)
    _pack_request(out, response.request, None)
    out += _F64.pack(response.query_ms)
    out += _U8.pack(1 if response.from_cache else 0)
    out += _I64.pack(response.queries_issued)
    out += _U8.pack(1 if response.coalesced else 0)
    shard_ms = response.shard_ms
    out += _U32.pack(len(shard_ms))
    for shard_name in sorted(shard_ms):
        _w_text(out, shard_name)
        out += _F64.pack(shard_ms[shard_name])
    _w_json_or_none(out, response.trace if trace is None else trace)
    _encode_objects(out, response.objects)
    return bytes(out)


def decode_response(body: bytes) -> tuple[DataResponse, list[dict[str, Any]]]:
    """Decode a response body into ``(response, remote_spans)``.

    Spans that rode the message come back separately and the decoded
    response carries an empty ``trace`` — the stub drains them into its
    own tracer, keeping responses above transports byte-identical whether
    or not the far side traced.
    """
    reader = _Reader(body)
    kind = reader.u8()
    if kind != MSG_RESPONSE:
        raise ProtocolError(f"expected a response message, got kind {kind}")
    request = _unpack_request(reader)
    query_ms = reader.f64()
    from_cache = reader.u8() != 0
    queries_issued = reader.i64()
    coalesced = reader.u8() != 0
    shard_ms = {reader.text(): reader.f64() for _ in range(reader.u32())}
    spans = reader.json_or_none() or []
    objects = _decode_objects(reader)
    reader.expect_end()
    response = DataResponse(
        request=request,
        objects=objects,
        query_ms=query_ms,
        from_cache=from_cache,
        queries_issued=queries_issued,
        shard_ms=shard_ms,
        coalesced=coalesced,
        trace=[],
    )
    return response, spans


def encode_error(error: BaseException) -> bytes:
    """Encode a server-side failure as a binary message body (no tag)."""
    out = bytearray()
    out += _U8.pack(MSG_ERROR)
    _w_text(out, type(error).__name__)
    _w_text(out, str(error))
    return bytes(out)


def decode_error(body: bytes) -> tuple[str, str]:
    """Decode an error body into ``(type_name, message)``."""
    reader = _Reader(body)
    kind = reader.u8()
    if kind != MSG_ERROR:
        raise ProtocolError(f"expected an error message, got kind {kind}")
    name = reader.text()
    message = reader.text()
    reader.expect_end()
    return name, message


def message_kind(body: bytes) -> int:
    """The kind byte of a binary message body."""
    if not body:
        raise ProtocolError("empty binary message")
    return body[0]
