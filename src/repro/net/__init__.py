"""Frontend <-> backend communication: wire protocol, framing and links."""

from .link import LinkStats, SimulatedLink
from .protocol import DataRequest, DataResponse
from .socket_transport import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    SocketTransport,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "DataRequest",
    "DataResponse",
    "FrameDecoder",
    "LinkStats",
    "SimulatedLink",
    "SocketTransport",
    "encode_frame",
    "read_frame",
    "write_frame",
]
