"""Frontend <-> backend communication: wire protocol and simulated link."""

from .link import LinkStats, SimulatedLink
from .protocol import DataRequest, DataResponse

__all__ = ["DataRequest", "DataResponse", "LinkStats", "SimulatedLink"]
