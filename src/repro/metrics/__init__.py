"""Timing and statistics utilities used throughout the reproduction.

The paper's evaluation reports the *average response time per interaction
step*.  :class:`~repro.metrics.collector.MetricsCollector` accumulates
per-step latencies (broken down into query, transfer and render components)
and :class:`~repro.metrics.timer.Timer` / :class:`~repro.metrics.timer.VirtualClock`
provide wall-clock and simulated-time measurement.
"""

from .collector import LatencyBreakdown, MetricsCollector, SummaryStats, summarize
from .timer import Timer, VirtualClock

__all__ = [
    "LatencyBreakdown",
    "MetricsCollector",
    "SummaryStats",
    "summarize",
    "Timer",
    "VirtualClock",
]
