"""Per-interaction latency accounting.

Every user interaction (a pan step or a jump) produces one
:class:`LatencyBreakdown`.  The :class:`MetricsCollector` accumulates them and
computes the summary statistics the paper reports (average response time per
step), plus percentiles useful for checking the 500 ms interactivity budget.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class LatencyBreakdown:
    """Latency components (milliseconds) of a single interaction step.

    Attributes
    ----------
    query_ms:
        Time spent executing database queries on the backend.
    network_ms:
        Simulated network time: round trips plus transfer time.
    render_ms:
        Time the frontend spent rasterising the returned objects.
    cache_hit:
        True when the step was served entirely from a cache (frontend or
        backend) and no database query ran.
    requests:
        Number of frontend -> backend requests issued for this step.
    objects_fetched:
        Number of data objects returned across all requests of this step.
    bytes_fetched:
        Serialized payload size across all requests of this step.
    """

    query_ms: float = 0.0
    network_ms: float = 0.0
    render_ms: float = 0.0
    cache_hit: bool = False
    requests: int = 0
    objects_fetched: int = 0
    bytes_fetched: int = 0

    @property
    def total_ms(self) -> float:
        """Total response time of the step."""
        return self.query_ms + self.network_ms + self.render_ms

    def merge(self, other: "LatencyBreakdown") -> None:
        """Fold another breakdown (e.g. one per request) into this step."""
        self.query_ms += other.query_ms
        self.network_ms += other.network_ms
        self.render_ms += other.render_ms
        self.requests += other.requests
        self.objects_fetched += other.objects_fetched
        self.bytes_fetched += other.bytes_fetched
        self.cache_hit = self.cache_hit and other.cache_hit


@dataclass
class SummaryStats:
    """Summary statistics over a sequence of per-step response times.

    Percentiles use nearest-rank semantics (see :func:`percentile`); the
    tail fields ``p99``/``p999`` default to 0.0 so older call sites and
    serialized summaries remain valid.
    """

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    stddev: float
    p99: float = 0.0
    p999: float = 0.0

    def within_budget(self, budget_ms: float) -> bool:
        """Check the paper's interactivity requirement against the p95."""
        return self.p95 <= budget_ms


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sequence.

    The nearest-rank definition: the p-th percentile of ``n`` samples is
    the value at (1-indexed) rank ``max(1, ceil(p * n))``.  Unlike linear
    interpolation it always returns an *observed* sample, is exact on
    small ``n`` (the median of 1..100 is 50, its p95 is 95), and is the
    single definition shared by bench ``summarize`` rows and the telemetry
    histograms behind ``GET /metrics`` — the two surfaces agree by
    construction, not by coincidence.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sequence")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


#: Backwards-compatible private alias (pre-telemetry callers).
_percentile = percentile


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` for an iterable of latencies.

    All percentiles (median, p95, p99, p999) are nearest-rank — see
    :func:`percentile` for the exact semantics.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarise an empty latency sequence")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    return SummaryStats(
        count=count,
        mean=mean,
        median=percentile(data, 0.5),
        p95=percentile(data, 0.95),
        minimum=data[0],
        maximum=data[-1],
        stddev=math.sqrt(variance),
        p99=percentile(data, 0.99),
        p999=percentile(data, 0.999),
    )


class MetricsCollector:
    """Accumulates :class:`LatencyBreakdown` records for a session or run.

    Recording is thread-safe: a collector shared by a
    :class:`~repro.serving.middleware.MetricsService` sees requests from
    every concurrent session, so appends and counter bumps hold a lock.
    Readers take a consistent snapshot under the same lock.
    """

    def __init__(self) -> None:
        self._steps: list[LatencyBreakdown] = []
        self.counters: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def record(self, breakdown: LatencyBreakdown) -> None:
        """Append one interaction step's breakdown."""
        with self._lock:
            self._steps.append(breakdown)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter (cache hits, prefetch issues, ...)."""
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def reset(self) -> None:
        with self._lock:
            self._steps.clear()
            self.counters.clear()

    # -- reading ------------------------------------------------------------

    @property
    def steps(self) -> list[LatencyBreakdown]:
        """The recorded steps, in order."""
        with self._lock:
            return list(self._steps)

    def __len__(self) -> int:
        with self._lock:
            return len(self._steps)

    def total_times(self) -> list[float]:
        with self._lock:
            return [step.total_ms for step in self._steps]

    def summary(self) -> SummaryStats:
        """Summary statistics of total per-step response time."""
        return summarize(self.total_times())

    def average_response_ms(self) -> float:
        """The paper's headline metric: average response time per step."""
        times = self.total_times()
        if not times:
            return 0.0
        return sum(times) / len(times)

    def component_averages(self) -> dict[str, float]:
        """Average of each latency component across steps."""
        steps = self.steps
        if not steps:
            return {"query_ms": 0.0, "network_ms": 0.0, "render_ms": 0.0}
        n = len(steps)
        return {
            "query_ms": sum(s.query_ms for s in steps) / n,
            "network_ms": sum(s.network_ms for s in steps) / n,
            "render_ms": sum(s.render_ms for s in steps) / n,
        }

    def cache_hit_rate(self) -> float:
        """Fraction of steps served entirely from a cache."""
        steps = self.steps
        if not steps:
            return 0.0
        hits = sum(1 for s in steps if s.cache_hit)
        return hits / len(steps)

    def total_requests(self) -> int:
        return sum(s.requests for s in self.steps)

    def total_objects(self) -> int:
        return sum(s.objects_fetched for s in self.steps)

    def total_bytes(self) -> int:
        return sum(s.bytes_fetched for s in self.steps)
