"""Wall-clock timers and a virtual clock for simulated latency.

The benchmark harness mixes two notions of time:

* real elapsed time of our Python storage engine executing a query, and
* *simulated* time charged by the network link and the pager's disk model
  (a pure-Python reproduction is orders of magnitude slower per tuple than a
  C DBMS, but network round trips and disk seeks are properties of the
  modelled system, not of the host machine).

:class:`Timer` measures the former; :class:`VirtualClock` accumulates the
latter.  A response-time measurement is the sum of both components.
"""

from __future__ import annotations

import threading
import time


class Timer:
    """A context-manager stopwatch measuring wall-clock milliseconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed_ms: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed milliseconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0
        self._start = None
        return self.elapsed_ms

    def lap_ms(self) -> float:
        """Return elapsed milliseconds without stopping the timer."""
        if self._start is None:
            raise RuntimeError("Timer.lap_ms() called before start()")
        return (time.perf_counter() - self._start) * 1000.0


class VirtualClock:
    """Accumulates simulated latency charged by models (network, disk).

    The clock only moves forward when a component explicitly charges time to
    it via :meth:`advance`.  Nested scopes can be captured with
    :meth:`checkpoint` / :meth:`since`.  Advancing is atomic: a clock shared
    across threads (e.g. one link charged by parallel shard transports)
    never loses charges.
    """

    def __init__(self) -> None:
        self._now_ms: float = 0.0
        self._lock = threading.Lock()

    @property
    def now_ms(self) -> float:
        """Total simulated milliseconds elapsed so far."""
        return self._now_ms

    def advance(self, milliseconds: float) -> None:
        """Charge ``milliseconds`` of simulated latency to the clock."""
        if milliseconds < 0:
            raise ValueError(f"cannot advance the clock by {milliseconds} ms")
        with self._lock:
            self._now_ms += milliseconds

    def checkpoint(self) -> float:
        """Return an opaque marker for the current simulated time."""
        return self._now_ms

    def since(self, checkpoint: float) -> float:
        """Return simulated milliseconds elapsed since ``checkpoint``."""
        return self._now_ms - checkpoint

    def reset(self) -> None:
        with self._lock:
            self._now_ms = 0.0
