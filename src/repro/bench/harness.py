"""The experiment harness: schemes x datasets x traces -> response times.

This module reproduces the measurement loop of Section 3.3: for a dataset
and a viewport-movement trace, replay the trace once per fetching scheme
with a fresh frontend (cold caches), and record the average response time
per pan step.  The harness also collects secondary quantities the paper
reasons about — requests issued, objects fetched, bytes transferred — which
the footprint experiment (Figure 4) reports directly.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Sequence

from ..client.frontend import KyrixFrontend
from ..client.session import ExplorationSession
from ..config import KyrixConfig
from ..datagen.traces import Trace
from ..metrics.collector import SummaryStats, summarize
from ..server.prefetch import Prefetcher
from ..server.schemes import FetchScheme
from .apps import DotsStack


@dataclass
class SchemeResult:
    """Result of running one scheme over one trace."""

    scheme: str
    dataset: str
    trace: str
    steps: int
    average_response_ms: float
    summary: SummaryStats
    query_ms: float
    network_ms: float
    requests: int
    objects: int
    bytes_fetched: int
    cache_hit_rate: float

    def row(self) -> dict[str, float | str | int]:
        """Flat dictionary form used by the report tables."""
        return {
            "scheme": self.scheme,
            "dataset": self.dataset,
            "trace": self.trace,
            "steps": self.steps,
            "avg_ms": round(self.average_response_ms, 2),
            "p95_ms": round(self.summary.p95, 2),
            "query_ms": round(self.query_ms, 2),
            "network_ms": round(self.network_ms, 2),
            "requests": self.requests,
            "objects": self.objects,
            "kilobytes": round(self.bytes_fetched / 1024.0, 1),
        }


@dataclass
class ExperimentResult:
    """All scheme results for one dataset (one paper figure)."""

    name: str
    dataset: str
    results: list[SchemeResult] = field(default_factory=list)

    def by_trace(self, trace: str) -> list[SchemeResult]:
        return [r for r in self.results if r.trace == trace]

    def by_scheme(self, scheme: str) -> list[SchemeResult]:
        return [r for r in self.results if r.scheme == scheme]

    def best_scheme_per_trace(self) -> dict[str, str]:
        """The fastest scheme on each trace (who 'wins' in the figure)."""
        winners: dict[str, str] = {}
        for trace in sorted({r.trace for r in self.results}):
            candidates = self.by_trace(trace)
            winner = min(candidates, key=lambda r: r.average_response_ms)
            winners[trace] = winner.scheme
        return winners

    def scheme_average(self, scheme: str) -> float:
        """Mean of the per-trace averages for one scheme."""
        results = self.by_scheme(scheme)
        if not results:
            raise KeyError(f"no results for scheme {scheme!r}")
        return sum(r.average_response_ms for r in results) / len(results)


def _reset_serving_caches(stack: DotsStack) -> None:
    """Cold-start every response cache on the stack's serving path.

    Walks the composed middleware stack (plus the shard backends behind a
    cluster router), clearing every :class:`CachingService` layer it finds.
    """
    from ..cluster.router import ClusterRouter
    from ..serving.base import stack_layers
    from ..serving.middleware import CachingService

    stack.backend.cache.clear()
    stack.backend.cache.stats.reset()
    if stack.service is not None:
        for layer in stack_layers(stack.service):
            if isinstance(layer, CachingService):
                layer.cache.clear()
                layer.cache.stats.reset()
            if isinstance(layer, ClusterRouter):
                layer.cache.clear()
                layer.cache.stats.reset()
    if stack.cluster is not None:
        for shard in stack.cluster.shards:
            # Process-worker shards detach their parent-side backend (the
            # worker owns the cache); nothing to clear in the parent then.
            if shard.backend is not None:
                shard.backend.cache.clear()
                shard.backend.cache.stats.reset()


def run_scheme_on_trace(
    stack: DotsStack,
    scheme: FetchScheme,
    trace: Trace,
    *,
    config: KyrixConfig | None = None,
    prefetcher: Prefetcher | None = None,
    render: bool = False,
) -> SchemeResult:
    """Replay ``trace`` with ``scheme`` against a fresh frontend.

    The backend cache persists across schemes only if the caller reuses the
    same stack *and* leaves it warm; the paper's numbers are per-run
    averages over cold frontends, so each call builds a new frontend and
    clears the serving-side caches first.  The frontend talks to the
    stack's composed :class:`~repro.serving.base.DataService`
    (``stack.service``) — the cluster router when the stack was built with
    ``config.cluster.enabled``, the cached backend otherwise.
    """
    _reset_serving_caches(stack)
    # Collect pending garbage before the timed replay: the cache clears
    # above (and whatever the surrounding process did before calling in)
    # otherwise leave a full young generation behind, and the cyclic
    # collector then runs *inside* the first few timed steps.  A gen-2
    # pause on a large heap is tens of milliseconds — enough to invert a
    # scheme comparison on the tiny test scale.
    gc.collect()
    frontend = KyrixFrontend(
        stack.service if stack.service is not None else stack.backend,
        scheme,
        config=config or stack.backend.config,
        prefetcher=prefetcher,
        render=render,
    )
    session = ExplorationSession(frontend)
    result = session.run_trace(stack.canvas_id, list(trace.positions))
    metrics = result.metrics
    components = metrics.component_averages()
    summary = summarize(metrics.total_times()) if len(metrics) else summarize([0.0])
    return SchemeResult(
        scheme=scheme.name,
        dataset=stack.spec.name,
        trace=trace.name,
        steps=result.steps,
        average_response_ms=result.average_response_ms,
        summary=summary,
        query_ms=components["query_ms"],
        network_ms=components["network_ms"],
        requests=metrics.total_requests(),
        objects=metrics.total_objects(),
        bytes_fetched=metrics.total_bytes(),
        cache_hit_rate=metrics.cache_hit_rate(),
    )


def run_experiment(
    stack: DotsStack,
    schemes: Sequence[FetchScheme],
    traces: Sequence[Trace],
    *,
    name: str = "experiment",
    config: KyrixConfig | None = None,
    repetitions: int = 1,
) -> ExperimentResult:
    """Run every scheme over every trace ``repetitions`` times and average.

    The paper reports averages over three runs; the default here is one
    repetition to keep the default benchmark wall time modest (the
    pytest-benchmark targets add their own repetition on top).
    """
    experiment = ExperimentResult(name=name, dataset=stack.spec.name)
    for scheme in schemes:
        for trace in traces:
            runs = [
                run_scheme_on_trace(stack, scheme, trace, config=config)
                for _ in range(max(1, repetitions))
            ]
            merged = runs[0]
            if len(runs) > 1:
                merged = SchemeResult(
                    scheme=merged.scheme,
                    dataset=merged.dataset,
                    trace=merged.trace,
                    steps=merged.steps,
                    average_response_ms=sum(r.average_response_ms for r in runs) / len(runs),
                    summary=merged.summary,
                    query_ms=sum(r.query_ms for r in runs) / len(runs),
                    network_ms=sum(r.network_ms for r in runs) / len(runs),
                    requests=runs[0].requests,
                    objects=runs[0].objects,
                    bytes_fetched=runs[0].bytes_fetched,
                    cache_hit_rate=sum(r.cache_hit_rate for r in runs) / len(runs),
                )
            experiment.results.append(merged)
    return experiment
