"""Benchmark harness reproducing the paper's evaluation (Figures 6 and 7)
plus the ablations listed in DESIGN.md."""

from .apps import (
    DotsStack,
    EEGStack,
    build_dots_application,
    build_dots_backend,
    build_eeg_application,
    build_eeg_backend,
    default_config,
)
from .experiments import (
    FootprintResult,
    PrefetchAblationResult,
    SeparabilityResult,
    build_stack,
    dataset_for_scale,
    fetch_footprint,
    figure6,
    figure7,
    index_design_ablation,
    prefetch_cache_ablation,
    separability_ablation,
)
from .harness import ExperimentResult, SchemeResult, run_experiment, run_scheme_on_trace
from .report import (
    format_comparison,
    format_experiment_table,
    format_figure,
    format_table,
    speedup_summary,
)

__all__ = [
    "DotsStack",
    "EEGStack",
    "ExperimentResult",
    "FootprintResult",
    "PrefetchAblationResult",
    "SchemeResult",
    "SeparabilityResult",
    "build_dots_application",
    "build_dots_backend",
    "build_eeg_application",
    "build_eeg_backend",
    "build_stack",
    "dataset_for_scale",
    "default_config",
    "fetch_footprint",
    "figure6",
    "figure7",
    "format_comparison",
    "format_experiment_table",
    "format_figure",
    "format_table",
    "index_design_ablation",
    "prefetch_cache_ablation",
    "run_experiment",
    "run_scheme_on_trace",
    "separability_ablation",
    "speedup_summary",
]
