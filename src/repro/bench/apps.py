"""Ready-made Kyrix applications used by the benchmarks and examples.

The evaluation application is deliberately simple — one canvas, one dot
layer over a synthetic dataset — because the experiments compare *fetching
schemes*, not applications.  :func:`build_dots_backend` assembles the whole
stack (database, dataset, declarative spec, compiled plan, backend) in one
call so the benchmark harness and the quickstart example stay short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..compiler import CompiledApplication, compile_application
from ..config import CacheConfig, KyrixConfig, NetworkConfig, PrefetchConfig, StorageConfig
from ..core import (
    App,
    Application,
    Canvas,
    ColumnPlacement,
    Layer,
    Transform,
    dot_renderer,
)
from ..datagen.eeg import EEGSpec, lane_height as eeg_lane_height, load_eeg
from ..datagen.synthetic import DotDatasetSpec, load_dots
from ..server.backend import KyrixBackend
from ..storage.database import Database

if TYPE_CHECKING:
    from ..cluster import ShardedCluster
    from ..serving.base import DataService


@dataclass
class DotsStack:
    """Everything needed to drive the dots application."""

    spec: DotDatasetSpec
    database: Database
    application: Application
    compiled: CompiledApplication
    backend: KyrixBackend
    #: The composed serving stack (`serving.build_service` output) frontends
    #: talk to: the cluster router when ``config.cluster.enabled``, the
    #: cached backend otherwise.
    service: "DataService | None" = None
    #: Built when ``config.cluster.enabled`` is true.
    cluster: "ShardedCluster | None" = None

    @property
    def canvas_id(self) -> str:
        return "dots"

    @property
    def serving(self) -> "DataService":
        """Deprecated alias of :attr:`service` (kept for one release)."""
        import warnings

        warnings.warn(
            "DotsStack.serving is deprecated; use DotsStack.service",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.service if self.service is not None else self.backend


@dataclass
class EEGStack:
    """Everything needed to drive the temporal EEG application."""

    spec: EEGSpec
    database: Database
    application: Application
    compiled: CompiledApplication
    backend: KyrixBackend

    @property
    def canvas_id(self) -> str:
        return "temporal"

    @property
    def canvas_width(self) -> float:
        return self.spec.duration_s * 1000.0

    @property
    def canvas_height(self) -> float:
        return self.spec.channels * eeg_lane_height(self.spec)


def default_config(
    *,
    viewport: int = 1024,
    cache_enabled: bool = True,
    prefetch_enabled: bool = False,
    rtt_ms: float = 2.0,
    bandwidth_mbps: float = 1000.0,
) -> KyrixConfig:
    """The configuration used by the benchmarks (LAN-like link, caches on)."""
    return KyrixConfig(
        app_name="dots",
        storage=StorageConfig(),
        network=NetworkConfig(rtt_ms=rtt_ms, bandwidth_mbps=bandwidth_mbps),
        cache=CacheConfig(enabled=cache_enabled),
        prefetch=PrefetchConfig(enabled=prefetch_enabled),
        viewport_width=viewport,
        viewport_height=viewport,
    )


def _built_source_backend(service: "DataService") -> KyrixBackend:
    """The full (unsharded) source backend behind a factory-built stack.

    For a non-cluster configuration the factory's outermost service *is*
    the backend; for a sharded stack the router's cluster handle keeps the
    source backend the shards were split from.
    """
    from ..cluster import ClusterRouter
    from ..serving import unwrap

    router = unwrap(service, ClusterRouter)
    if router is not None and router.cluster is not None:
        return router.cluster.source
    return unwrap(service, KyrixBackend)


def build_eeg_application(spec: EEGSpec, config: KyrixConfig | None = None) -> Application:
    """The temporal EEG view: one long canvas, one per-sample dynamic layer.

    Each sample is placed at (time in ms, channel lane offset + amplitude),
    so panning the canvas is panning through the recording — the MGH
    scenario of Section 4.  The per-sample transform goes through full
    placement precomputation (not separable), exercising the same placement
    tables the usmap parity stacks use.
    """
    config = config or default_config()
    lane_height = eeg_lane_height(spec)

    def place_sample(row):
        row["px"] = row["t_ms"]
        row["py"] = row["channel"] * lane_height + lane_height / 2.0 + row["value"]
        return row

    app = App("eeg", config=config)
    canvas = Canvas(
        "temporal",
        width=spec.duration_s * 1000.0,
        height=spec.channels * lane_height,
    )
    app.add_canvas(canvas)
    canvas.add_transform(
        Transform(
            transform_id="samplesTrans",
            query="SELECT sample_id, channel, t_ms, value FROM eeg_samples",
            transform_func=place_sample,
            columns=("sample_id", "channel", "t_ms", "value", "px", "py"),
        )
    )
    layer = Layer("samplesTrans", False)
    canvas.add_layer(layer)
    layer.add_placement(ColumnPlacement(x_column="px", y_column="py"))
    layer.add_rendering_func(dot_renderer("px", "py"))
    app.set_initial_canvas("temporal", 0, 0)
    return app


def build_eeg_backend(
    spec: EEGSpec | None = None,
    *,
    config: KyrixConfig | None = None,
    tile_sizes: tuple[int, ...] = (),
) -> EEGStack:
    """Assemble database + synthetic recording + compiled app + backend."""
    spec = spec or EEGSpec()
    config = config or default_config()
    database = Database(config.storage)
    load_eeg(database, spec)
    application = build_eeg_application(spec, config)
    compiled = compile_application(application)
    from ..serving import build_service

    backend = _built_source_backend(
        build_service(config, database=database, compiled=compiled, tile_sizes=tile_sizes)
    )
    return EEGStack(
        spec=spec,
        database=database,
        application=application,
        compiled=compiled,
        backend=backend,
    )


def build_dots_application(
    dataset: DotDatasetSpec, config: KyrixConfig | None = None
) -> Application:
    """Build the declarative spec of the dots application for ``dataset``.

    One canvas the size of the dataset's canvas, with a single dynamic layer
    whose transform selects every dot and whose placement reads x/y straight
    from the raw columns (the *separable* case — precomputation is skipped
    and queries hit the raw table's spatial index, exactly like the paper's
    synthetic-dot experiments).
    """
    config = config or default_config()
    app = App(name="dots", config=config)

    canvas = Canvas(
        canvas_id="dots",
        width=dataset.canvas_width,
        height=dataset.canvas_height,
    )
    transform = Transform(
        transform_id="dots_transform",
        query=f"SELECT tuple_id, x, y, bbox FROM {dataset.name}",
        columns=("tuple_id", "x", "y", "bbox"),
        separable=True,
        x_column="x",
        y_column="y",
    )
    canvas.add_transform(transform)
    layer = Layer(transform_id="dots_transform", static=False)
    layer.add_placement(
        ColumnPlacement(
            x_column="x",
            y_column="y",
            width=dataset.half_extent * 2,
            height=dataset.half_extent * 2,
        )
    )
    layer.add_rendering_func(dot_renderer("x", "y", radius=dataset.half_extent))
    canvas.add_layer(layer)

    app.add_canvas(canvas)
    app.set_initial_canvas("dots", 0.0, 0.0)
    return app


def build_dots_backend(
    dataset: DotDatasetSpec,
    *,
    config: KyrixConfig | None = None,
    tile_sizes: tuple[int, ...] = (),
    precompute_placement: bool = False,
) -> DotsStack:
    """Assemble database + data + compiled app + backend for ``dataset``.

    Parameters
    ----------
    tile_sizes:
        Tile sizes to pre-build tuple–tile mapping tables for (the mapping
        design builds them lazily otherwise, which would pollute the first
        measured request).
    precompute_placement:
        When true, the layer is forced through full placement
        precomputation even though it is separable — used by the
        separability ablation (experiment E8).
    """
    config = config or default_config()
    database = Database(config.storage)
    load_dots(database, dataset)

    application = build_dots_application(dataset, config)
    if precompute_placement:
        transform = application.canvas("dots").transforms["dots_transform"]
        transform.separable = False
    compiled = compile_application(application)

    # One factory assembles the whole serving stack (constructing and
    # precomputing the backend, sharding it per ``config.cluster``); the
    # cluster handle rides on the router so benchmarks can keep reading
    # shard-level statistics.
    from ..cluster import ClusterRouter
    from ..serving import build_service, unwrap

    service = build_service(
        config, database=database, compiled=compiled, tile_sizes=tile_sizes
    )
    router = unwrap(service, ClusterRouter)
    cluster = router.cluster if router is not None else None
    backend = cluster.source if cluster is not None else unwrap(service, KyrixBackend)
    return DotsStack(
        spec=dataset,
        database=database,
        application=application,
        compiled=compiled,
        backend=backend,
        service=service,
        cluster=cluster,
    )
