"""Canned experiments, one per paper figure plus the ablations of DESIGN.md.

Each function builds its own stack (database + dataset + backend) at the
requested scale, runs the measurement loop from :mod:`repro.bench.harness`
and returns structured results; the pytest-benchmark targets and the
EXPERIMENTS.md regeneration script call these.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..cluster import build_cluster
from ..config import CacheConfig, KyrixConfig, NetworkConfig, PrefetchConfig, StorageConfig
from ..net.protocol import DataRequest
from ..client.frontend import KyrixFrontend
from ..client.session import ExplorationSession, SessionResult
from ..core.viewport import Viewport
from ..metrics.collector import SummaryStats, summarize
from ..datagen.eeg import EEGSpec
from ..datagen.synthetic import DotDatasetSpec, skewed_spec, uniform_spec
from ..datagen.traces import Trace, paper_traces
from ..server.dbox import ExactBoxCalculator, ExpandedBoxCalculator
from ..server.prefetch import MomentumPrefetcher
from ..server.schemes import (
    FetchScheme,
    dbox50_scheme,
    dbox_scheme,
    paper_schemes,
    tile_mapping_scheme,
    tile_spatial_scheme,
)
from ..server.tile import TileScheme
from ..serving import collect_wire_stats
from .apps import DotsStack, build_dots_backend, default_config
from .harness import ExperimentResult, SchemeResult, run_experiment, run_scheme_on_trace

#: Default number of dots for benchmark-scale runs.  Density matches the
#: paper's 1e-3 dots per pixel² on a 32768 x 8192 canvas.
BENCH_NUM_POINTS = 250_000
#: Smaller scale used by the quick examples of the experiment code paths.
SMOKE_NUM_POINTS = 30_000
SMOKE_CANVAS = (16_384.0, 8_192.0)
#: Smallest scale, used by the integration tests (still large enough for the
#: Figure 5 traces, which need a canvas of at least 13 x 8 tiles of 1024).
TINY_NUM_POINTS = 8_000


# ---------------------------------------------------------------------------
# Scale handling
# ---------------------------------------------------------------------------


def dataset_for_scale(name: str, scale: str = "bench") -> DotDatasetSpec:
    """Dataset spec for one of the evaluation datasets at a given scale.

    ``scale`` is ``"bench"`` (default, ~250 k dots), ``"smoke"`` (~30 k dots,
    used by tests) or ``"paper"`` (the full 100 M-dot parameters — documented
    but not practical to run in pure Python).
    """
    name = name.lower()
    builder = skewed_spec if name == "skewed" else uniform_spec
    if scale == "paper":
        from ..datagen.synthetic import paper_scale_spec

        return paper_scale_spec(name)
    if scale == "smoke":
        width, height = SMOKE_CANVAS
        return builder(num_points=SMOKE_NUM_POINTS, canvas_width=width, canvas_height=height)
    if scale == "tiny":
        width, height = SMOKE_CANVAS
        return builder(num_points=TINY_NUM_POINTS, canvas_width=width, canvas_height=height)
    return builder(num_points=BENCH_NUM_POINTS)


def build_stack(
    dataset_name: str,
    *,
    scale: str = "bench",
    tile_sizes: tuple[int, ...] = (256, 1024, 4096),
    config: KyrixConfig | None = None,
) -> DotsStack:
    """Build the dots stack with mapping tables for the given tile sizes."""
    spec = dataset_for_scale(dataset_name, scale)
    return build_dots_backend(spec, config=config or default_config(), tile_sizes=tile_sizes)


# ---------------------------------------------------------------------------
# E1 / E2: Figures 6 and 7
# ---------------------------------------------------------------------------


def figure6(
    *,
    scale: str = "bench",
    stack: DotsStack | None = None,
    schemes: Sequence[FetchScheme] | None = None,
    repetitions: int = 1,
) -> ExperimentResult:
    """Figure 6: average response times of all schemes on *Uniform* data."""
    stack = stack or build_stack("uniform", scale=scale)
    schemes = list(schemes or paper_schemes())
    traces = paper_traces(stack.spec.canvas_width, stack.spec.canvas_height)
    return run_experiment(
        stack, schemes, list(traces.values()), name="figure6", repetitions=repetitions
    )


def figure7(
    *,
    scale: str = "bench",
    stack: DotsStack | None = None,
    schemes: Sequence[FetchScheme] | None = None,
    repetitions: int = 1,
) -> ExperimentResult:
    """Figure 7: average response times of all schemes on *Skewed* data."""
    stack = stack or build_stack("skewed", scale=scale)
    schemes = list(schemes or paper_schemes())
    traces = paper_traces(stack.spec.canvas_width, stack.spec.canvas_height)
    return run_experiment(
        stack, schemes, list(traces.values()), name="figure7", repetitions=repetitions
    )


# ---------------------------------------------------------------------------
# E4: fetch footprint (Figure 4's intuition, measured)
# ---------------------------------------------------------------------------


@dataclass
class FootprintResult:
    """Data fetched / requests issued for one scheme over one trace."""

    scheme: str
    trace: str
    requests: int
    objects: int
    fetched_area: float
    viewport_area: float

    @property
    def overfetch_ratio(self) -> float:
        """How much more area was fetched than the viewports strictly needed."""
        if self.viewport_area == 0:
            return 0.0
        return self.fetched_area / self.viewport_area


def fetch_footprint(
    *,
    scale: str = "smoke",
    stack: DotsStack | None = None,
    tile_sizes: tuple[int, ...] = (256, 1024, 4096),
) -> list[FootprintResult]:
    """Measure the area fetched and requests issued per scheme (Figure 4).

    Unlike Figures 6/7 this does not time anything: it counts, per trace,
    how many requests each granularity issues and how much canvas area it
    fetches compared to the area of the viewports themselves.
    """
    stack = stack or build_stack("uniform", scale=scale, tile_sizes=tile_sizes)
    spec = stack.spec
    traces = paper_traces(spec.canvas_width, spec.canvas_height)
    viewport_w = stack.backend.config.viewport_width
    viewport_h = stack.backend.config.viewport_height
    results: list[FootprintResult] = []

    for trace in traces.values():
        viewport_area = len(trace.positions) * viewport_w * viewport_h
        # Dynamic boxes (exact and 50%).
        for name, calculator in (
            ("dbox", ExactBoxCalculator()),
            ("dbox 50%", ExpandedBoxCalculator(expansion=0.5)),
        ):
            fetched_area = 0.0
            requests = 0
            current_box = None
            for x, y in trace.positions:
                viewport = Viewport(x, y, viewport_w, viewport_h)
                if current_box is not None and current_box.contains(viewport.to_rect()):
                    continue
                current_box = calculator.compute(viewport, spec.canvas_width, spec.canvas_height)
                fetched_area += current_box.area
                requests += 1
            results.append(
                FootprintResult(
                    scheme=name,
                    trace=trace.name,
                    requests=requests,
                    objects=int(fetched_area * spec.density),
                    fetched_area=fetched_area,
                    viewport_area=viewport_area,
                )
            )
        # Static tiles.
        for tile_size in tile_sizes:
            scheme = TileScheme(spec.canvas_width, spec.canvas_height, tile_size)
            seen: set[int] = set()
            requests = 0
            fetched_area = 0.0
            for x, y in trace.positions:
                viewport = Viewport(x, y, viewport_w, viewport_h)
                for tile_id in scheme.tiles_for_rect(viewport.to_rect()):
                    if tile_id in seen:
                        continue
                    seen.add(tile_id)
                    requests += 1
                    fetched_area += scheme.tile_rect(tile_id).area
            results.append(
                FootprintResult(
                    scheme=f"tile {tile_size}",
                    trace=trace.name,
                    requests=requests,
                    objects=int(fetched_area * spec.density),
                    fetched_area=fetched_area,
                    viewport_area=viewport_area,
                )
            )
    return results


# ---------------------------------------------------------------------------
# E6: database-design ablation (mapping vs spatial at fixed tile size)
# ---------------------------------------------------------------------------


def index_design_ablation(
    *,
    scale: str = "smoke",
    tile_size: int = 1024,
    stack: DotsStack | None = None,
) -> ExperimentResult:
    """Compare the two database designs of Section 3.1 at one tile size."""
    stack = stack or build_stack("uniform", scale=scale, tile_sizes=(tile_size,))
    schemes = [tile_spatial_scheme(tile_size), tile_mapping_scheme(tile_size)]
    traces = paper_traces(stack.spec.canvas_width, stack.spec.canvas_height)
    return run_experiment(stack, schemes, list(traces.values()), name="index_design")


# ---------------------------------------------------------------------------
# E7: caching and prefetching ablation
# ---------------------------------------------------------------------------


@dataclass
class PrefetchAblationResult:
    """Average response time with/without caches and prefetching."""

    variant: str
    average_response_ms: float
    cache_hit_rate: float
    prefetch_requests: int


def prefetch_cache_ablation(
    *,
    scale: str = "smoke",
    stack: DotsStack | None = None,
    trace_name: str = "a",
) -> list[PrefetchAblationResult]:
    """Measure dynamic boxes with caches/prefetching enabled and disabled.

    Variants: "no-cache", "cache", "cache+momentum".  The trace is repeated
    twice back-to-back within each variant so cache reuse has something to
    bite on (the paper's users revisit regions when they pan back).
    """
    stack = stack or build_stack("uniform", scale=scale, tile_sizes=())
    traces = paper_traces(stack.spec.canvas_width, stack.spec.canvas_height)
    trace = traces[trace_name]
    # A back-and-forth trace: out along the trace, then back again.
    positions = list(trace.positions) + list(reversed(trace.positions[:-1]))
    results: list[PrefetchAblationResult] = []

    variants: list[tuple[str, KyrixConfig, MomentumPrefetcher | None]] = []
    base = stack.backend.config
    no_cache = KyrixConfig.from_dict(
        {**base.to_dict(), "cache": {"enabled": False}}
    )
    with_cache = KyrixConfig.from_dict(base.to_dict())
    with_prefetch = KyrixConfig.from_dict(
        {**base.to_dict(), "prefetch": {"enabled": True, "strategy": "momentum"}}
    )
    variants.append(("no-cache", no_cache, None))
    variants.append(("cache", with_cache, None))
    variants.append(("cache+momentum", with_prefetch, MomentumPrefetcher()))

    for name, config, prefetcher in variants:
        stack.backend.cache.clear()
        stack.backend.cache.stats.reset()
        # The backend cache honours the variant's cache setting too.
        stack.backend.cache.capacity = (
            config.cache.backend_entries if config.cache.enabled else 0
        )
        frontend = KyrixFrontend(
            stack.backend, dbox_scheme(), config=config, prefetcher=prefetcher
        )
        session = ExplorationSession(frontend)
        outcome = session.run_trace(stack.canvas_id, positions)
        results.append(
            PrefetchAblationResult(
                variant=name,
                average_response_ms=outcome.average_response_ms,
                cache_hit_rate=outcome.metrics.cache_hit_rate(),
                prefetch_requests=outcome.metrics.counters.get("prefetch_requests", 0),
            )
        )
    # Restore the stack's default cache capacity for later users.
    stack.backend.cache.capacity = (
        base.cache.backend_entries if base.cache.enabled else 0
    )
    return results


# ---------------------------------------------------------------------------
# E10: cluster scaling (sharded scatter-gather serving)
# ---------------------------------------------------------------------------


@dataclass
class ClusterScalingResult:
    """One (dataset, shard count) cell of the cluster scaling experiment."""

    dataset: str
    shard_count: int
    strategy: str
    #: Shard execution topology: ``"threads"`` (in-process, GIL-bound) or
    #: ``"processes"`` (one worker process per shard replica).
    workers: str
    sessions: int
    steps: int
    wall_seconds: float
    #: Pan steps completed per wall-clock second across all sessions —
    #: *measured* end to end (shard queries execute on the router's thread
    #: pool; per-shard indexes shrink with shard count).
    throughput_steps_per_s: float
    #: Measured wall-clock milliseconds per pan step (the inverse of
    #: throughput): the number that must *decrease* with shard count.
    measured_step_ms: float
    #: Per-step response-time model (``LatencyBreakdown.total_ms``): the
    #: scatter-gather critical path plus simulated link time.  With
    #: parallel shard workers the measured wall-clock tracks this model
    #: instead of the sum over shards.
    latency: SummaryStats
    #: Mean query component of the same model (slowest shard + merge).
    simulated_query_ms: float
    #: Total objects delivered to the sessions — identical across shard
    #: counts when scatter-gather neither drops nor duplicates tuples.
    objects_fetched: int
    average_fanout: float
    coalesced_requests: int
    router_cache_hits: int
    duplicates_removed: int
    per_shard_requests: dict[int, int]
    #: Wire codec requested for shard traffic (``cluster.wire_codec``):
    #: ``"auto"`` negotiates binary with fallback, ``"json"`` pins the
    #: legacy envelope, ``"binary"`` requires the columnar codec.
    codec: str = "auto"
    #: Total bytes that crossed the shard transport boundary (payload plus
    #: frame headers, both directions), summed over every stub in the
    #: cluster via :func:`repro.serving.collect_wire_stats`.  Zero when the
    #: topology keeps shard calls in-process (``wire_shards=False``).
    wire_bytes_total: int = 0
    #: Per-stage span-duration percentiles from the telemetry registry
    #: (``{span_name: {"p50": ..., "p99": ...}}``), populated only when the
    #: experiment ran with ``telemetry=True``.
    stage_percentiles: dict[str, dict[str, float]] = field(default_factory=dict)

    def row(self) -> dict[str, float | str | int]:
        row: dict[str, float | str | int] = {
            "dataset": self.dataset,
            "shards": self.shard_count,
            "strategy": self.strategy,
            "workers": self.workers,
            "codec": self.codec,
            "sessions": self.sessions,
            "steps": self.steps,
            "throughput_steps_s": round(self.throughput_steps_per_s, 1),
            "wall_ms_per_step": round(self.measured_step_ms, 3),
            "wire_bytes_per_step": round(
                self.wire_bytes_total / self.steps if self.steps else 0.0, 1
            ),
            "p50_ms": round(self.latency.median, 2),
            "p95_ms": round(self.latency.p95, 2),
            "p99_ms": round(self.latency.p99, 2),
            "max_ms": round(self.latency.maximum, 2),
            "sim_query_ms": round(self.simulated_query_ms, 2),
            "objects": self.objects_fetched,
            "fanout": round(self.average_fanout, 2),
            "coalesced": self.coalesced_requests,
            "cache_hits": self.router_cache_hits,
            "dups_removed": self.duplicates_removed,
        }
        for stage in sorted(self.stage_percentiles):
            snapshot = self.stage_percentiles[stage]
            row[f"{stage}_p50_ms"] = round(snapshot.get("p50", 0.0), 3)
            row[f"{stage}_p99_ms"] = round(snapshot.get("p99", 0.0), 3)
        return row


def concurrent_pan_workload(
    router,
    canvas_id: str,
    traces: Sequence[Trace],
    *,
    sessions: int = 4,
    scheme: FetchScheme | None = None,
    config: KyrixConfig | None = None,
) -> tuple[list[SessionResult], float]:
    """Replay pan traces from ``sessions`` concurrent threads over one router.

    Traces are assigned round-robin (session ``i`` replays
    ``traces[i % len(traces)]``), so every trace is exercised; once
    ``sessions`` exceeds the trace count, several sessions walk the same
    trace concurrently, issuing the identical requests the router's
    coalescer and shared cache deduplicate.  All sessions start together
    behind a barrier; returns their results and the total wall-clock
    seconds.
    """
    if not traces:
        raise ValueError("concurrent_pan_workload needs at least one trace")
    scheme = scheme or dbox_scheme()
    barrier = threading.Barrier(sessions + 1)
    results: list[SessionResult | None] = [None] * sessions
    errors: list[BaseException] = []
    # Sessions are built (and traces resolved) before the threads start:
    # a worker that failed pre-barrier would leave barrier.wait() below
    # hanging forever.
    workloads = [
        (
            ExplorationSession.for_service(router, scheme, config=config),
            list(traces[index % len(traces)].positions),
        )
        for index in range(sessions)
    ]

    def worker(index: int) -> None:
        session, positions = workloads[index]
        try:
            barrier.wait()
            results[index] = session.run_trace(canvas_id, positions)
        except BaseException as error:  # surfaced to the caller below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(sessions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - started
    if errors:
        raise errors[0]
    return [result for result in results if result is not None], wall_seconds


#: EEG recording parameters per benchmark scale (see ``eeg_workload``).
EEG_SCALES = {
    "tiny": EEGSpec(channels=2, sample_rate_hz=16.0, duration_s=120.0),
    "smoke": EEGSpec(channels=4, sample_rate_hz=32.0, duration_s=240.0),
    "bench": EEGSpec(channels=8, sample_rate_hz=64.0, duration_s=600.0),
}


def eeg_pan_traces(
    canvas_width: float,
    canvas_height: float,
    *,
    viewport_w: float,
    viewport_h: float,
    steps: int = 8,
) -> list[Trace]:
    """Three rightward time sweeps, one per third of the recording.

    EEG exploration pans through *time*, not across a map, so the Figure 5
    traces (which need a tall canvas) do not apply; instead each trace
    sweeps its own third of the canvas left to right.  Sessions replaying
    different traces therefore live on different time ranges — i.e. on
    different shards of a time-partitioned cluster — which is exactly the
    traffic shape that lets process workers execute on separate cores.
    """
    traces: list[Trace] = []
    third = canvas_width / 3.0
    for index, name in enumerate(("early", "middle", "late")):
        x0 = index * third
        span = max(0.0, third - viewport_w)
        step = span / steps if steps else 0.0
        y = (canvas_height - viewport_h) * index / 2.0
        positions = [(x0 + i * step, y) for i in range(steps + 1)]
        traces.append(
            Trace(
                name=name,
                positions=tuple(positions),
                description=f"time sweep over the {name} third of the recording",
            )
        )
    return traces


def eeg_workload(scale: str = "smoke") -> tuple[Any, str, list[Trace], KyrixConfig]:
    """The EEG cluster workload: stack, canvas, traces and session config.

    The viewport is a time window (wide, lane-height tall) and the traces
    sweep it through the recording; the returned configuration carries the
    matching asymmetric viewport so sessions stay on canvas.
    """
    from .apps import build_eeg_backend, eeg_lane_height

    spec = EEG_SCALES.get(scale, EEG_SCALES["smoke"])
    config = default_config()
    viewport_w = spec.duration_s * 1000.0 / 8.0
    viewport_h = spec.channels * eeg_lane_height(spec) * 0.75
    config.viewport_width = int(viewport_w)
    config.viewport_height = int(viewport_h)
    stack = build_eeg_backend(spec, config=config)
    traces = eeg_pan_traces(
        stack.canvas_width,
        stack.canvas_height,
        viewport_w=viewport_w,
        viewport_h=viewport_h,
    )
    return stack, stack.canvas_id, traces, config


def hotspot_box_requests(
    app_name: str,
    canvas_id: str,
    layer_index: int,
    region,
    steps: int = 200,
) -> list[DataRequest]:
    """A skewed pan trace: box requests confined to one shard region.

    The "everyone pans over Manhattan" traffic shape used by the
    rebalance benchmark and the live-rebalance parity tests: every
    request's rectangle stays strictly inside ``region`` (a
    :class:`~repro.storage.rtree.Rect`, typically shard 0's region of a
    static partitioning), so the whole trace lands on a single shard while
    the rest of the cluster idles — maximal per-shard load skew by
    construction.
    """
    margin_x, margin_y = region.width / 16.0, region.height / 16.0
    box_w, box_h = region.width / 8.0, region.height / 8.0
    span_x = region.width - 2 * margin_x - box_w
    span_y = region.height - 2 * margin_y - box_h
    requests: list[DataRequest] = []
    for step in range(steps):
        x = region.xmin + margin_x + (step * span_x / 7.3) % span_x
        y = region.ymin + margin_y + (step * span_y / 11.9) % span_y
        requests.append(
            DataRequest(
                app_name=app_name,
                canvas_id=canvas_id,
                layer_index=layer_index,
                granularity="box",
                xmin=x,
                ymin=y,
                xmax=x + box_w,
                ymax=y + box_h,
            )
        )
    return requests


def cluster_scaling(
    *,
    scale: str = "smoke",
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    sessions: int = 4,
    datasets: Sequence[str] = ("uniform", "skewed"),
    strategy: str = "grid",
    coalescing: bool = True,
    parallel: bool = True,
    wire_shards: bool | None = None,
    worker_mode: str = "threads",
    wire_codec: str = "auto",
    telemetry: bool = False,
) -> list[ClusterScalingResult]:
    """Throughput/latency of the sharded cluster at increasing shard counts.

    For each dataset, one source stack is precomputed and then sharded at
    every requested shard count; ``sessions`` concurrent sessions replay
    pan traces through the cluster router with the dynamic-box scheme (the
    Figure 5 traces for the synthetic dot datasets, time sweeps for
    ``"eeg"``).  ``wall_ms_per_step`` / ``throughput_steps_s`` are measured
    end-to-end wall-clock: with ``parallel=True`` shard queries run on the
    router's thread pool (``parallel=False`` measures the sequential
    baseline the parity tests compare against), and with
    ``worker_mode="processes"`` every shard replica executes in its own
    worker process behind a socket transport, so pure-Python query work
    runs on real parallel cores instead of time-slicing one GIL.  The
    latency percentiles summarise the per-step response-time *model* —
    scatter-gather critical path (slowest shard + merge) plus simulated
    link time; ``simulated_query_ms`` isolates the query component of that
    model.

    With ``telemetry=True`` every cluster is built with the tracing plane
    on (:mod:`repro.telemetry`), and each result carries per-stage
    span-duration percentiles (``stage_percentiles``) flattened into the
    ``--json`` artifact as ``<stage>_p50_ms`` / ``<stage>_p99_ms`` columns.

    ``wire_codec`` selects the shard-boundary wire codec
    (``cluster.wire_codec``: ``"auto"`` negotiates the binary columnar
    codec with JSON fallback, ``"json"`` pins the legacy envelope,
    ``"binary"`` requires the columnar codec); every result reports the
    bytes that actually crossed the transport (``wire_bytes_total``,
    flattened as ``wire_bytes_per_step``) so codec runs are comparable.
    """
    results: list[ClusterScalingResult] = []
    for dataset_name in datasets:
        session_config: KyrixConfig | None = None
        if dataset_name == "eeg":
            stack, canvas_id, traces, session_config = eeg_workload(scale)
        else:
            stack = build_stack(dataset_name, scale=scale, tile_sizes=())
            canvas_id = stack.canvas_id
            traces = list(
                paper_traces(stack.spec.canvas_width, stack.spec.canvas_height).values()
            )
        for shard_count in shard_counts:
            cluster = build_cluster(
                stack.backend,
                shard_count=shard_count,
                strategy=strategy,
                coalescing=coalescing,
                parallel=parallel,
                wire_shards=wire_shards,
                worker_mode=worker_mode,
                wire_codec=wire_codec,
                telemetry=True if telemetry else None,
            )
            # Report what actually ran: the KD partitioner falls back to the
            # grid when a canvas has too little density signal, and that must
            # not be presented as a KD measurement.
            effective = "/".join(
                sorted({p.strategy for p in cluster.partitionings.values()})
            )
            strategy_label = (
                effective if effective == strategy
                else f"{effective} (requested {strategy})"
            )
            try:
                session_results, wall_seconds = concurrent_pan_workload(
                    cluster.router,
                    canvas_id,
                    traces,
                    sessions=sessions,
                    config=session_config,
                )
            except BaseException:
                # A failed workload must not leak the scatter executor or
                # (in process mode) the forked shard worker processes.
                cluster.close()
                raise
            step_times: list[float] = []
            query_times: list[float] = []
            steps = 0
            objects_fetched = 0
            for outcome in session_results:
                steps += outcome.steps
                objects_fetched += outcome.metrics.total_objects()
                for breakdown in outcome.metrics.steps:
                    step_times.append(breakdown.total_ms)
                    query_times.append(breakdown.query_ms)
            router_stats = cluster.router.stats
            wire_bytes = collect_wire_stats(cluster.router).bytes_total
            stage_percentiles: dict[str, dict[str, float]] = {}
            if telemetry:
                # Build-time configure() reset the registry, so this
                # snapshot covers exactly this (dataset, shard count) cell.
                from ..telemetry import get_registry

                for name, snapshot in get_registry().snapshot().items():
                    stage_percentiles[name] = {
                        "p50": snapshot["p50"],
                        "p99": snapshot["p99"],
                    }
            results.append(
                ClusterScalingResult(
                    dataset=dataset_name,
                    shard_count=shard_count,
                    strategy=strategy_label,
                    workers=worker_mode,
                    sessions=sessions,
                    steps=steps,
                    wall_seconds=wall_seconds,
                    throughput_steps_per_s=steps / wall_seconds if wall_seconds else 0.0,
                    measured_step_ms=wall_seconds * 1000.0 / steps if steps else 0.0,
                    latency=summarize(step_times or [0.0]),
                    simulated_query_ms=(
                        sum(query_times) / len(query_times) if query_times else 0.0
                    ),
                    objects_fetched=objects_fetched,
                    average_fanout=router_stats.average_fanout(),
                    coalesced_requests=router_stats.coalesced_requests,
                    router_cache_hits=router_stats.cache_hits,
                    duplicates_removed=router_stats.duplicates_removed,
                    per_shard_requests=dict(router_stats.per_shard_requests),
                    codec=wire_codec,
                    wire_bytes_total=wire_bytes,
                    stage_percentiles=stage_percentiles,
                )
            )
            # Release the scatter executor before the next shard count.
            cluster.close()
    return results


# ---------------------------------------------------------------------------
# E8: separability ablation
# ---------------------------------------------------------------------------


@dataclass
class SeparabilityResult:
    """Precompute cost and query latency with/without the separable shortcut."""

    variant: str
    precompute_ms: float
    average_response_ms: float


def separability_ablation(*, scale: str = "smoke") -> list[SeparabilityResult]:
    """Compare the separable shortcut against full placement precomputation."""
    from ..metrics.timer import Timer

    results: list[SeparabilityResult] = []
    for variant, precompute_placement in (("separable", False), ("precomputed", True)):
        spec = dataset_for_scale("uniform", scale)
        timer = Timer()
        timer.start()
        stack = build_dots_backend(
            spec, config=default_config(), precompute_placement=precompute_placement
        )
        precompute_ms = timer.stop()
        traces = paper_traces(spec.canvas_width, spec.canvas_height)
        outcome = run_scheme_on_trace(stack, dbox_scheme(), traces["a"])
        results.append(
            SeparabilityResult(
                variant=variant,
                precompute_ms=precompute_ms,
                average_response_ms=outcome.average_response_ms,
            )
        )
    return results
