"""Plain-text report rendering for experiment results.

The paper presents Figures 6 and 7 as grouped bar charts (average response
time per scheme, grouped by trace).  Offline and headless, the closest
faithful rendering is a text table plus an ASCII bar chart; both are
produced here so the benchmark harness can print something a reader can put
side by side with the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .harness import ExperimentResult, SchemeResult


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_experiment_table(experiment: ExperimentResult) -> str:
    """The full per-scheme, per-trace result table of an experiment."""
    rows = [result.row() for result in experiment.results]
    columns = [
        "scheme", "trace", "avg_ms", "p95_ms", "query_ms", "network_ms",
        "requests", "objects", "kilobytes",
    ]
    return format_table(rows, columns)


def format_figure(
    experiment: ExperimentResult,
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """An ASCII rendition of a grouped bar chart (one group per trace).

    Mirrors the layout of Figures 6 and 7: for each trace, one bar per
    fetching scheme, lengths proportional to average response time.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    traces = sorted({result.trace for result in experiment.results})
    max_ms = max((r.average_response_ms for r in experiment.results), default=1.0) or 1.0
    label_width = max(
        (len(result.scheme) for result in experiment.results), default=10
    )
    for trace in traces:
        lines.append(f"Trace-{trace}")
        for result in experiment.by_trace(trace):
            bar_length = int(round(result.average_response_ms / max_ms * width))
            bar = "#" * max(1, bar_length) if result.average_response_ms > 0 else ""
            lines.append(
                f"  {result.scheme.ljust(label_width)} | "
                f"{bar} {result.average_response_ms:8.2f} ms"
            )
        lines.append("")
    winners = experiment.best_scheme_per_trace()
    lines.append(
        "winners: "
        + ", ".join(f"trace-{trace}: {scheme}" for trace, scheme in winners.items())
    )
    return "\n".join(lines)


def format_comparison(
    experiments: Iterable[ExperimentResult], scheme_names: Sequence[str]
) -> str:
    """Cross-dataset comparison of a few schemes (who wins by what factor)."""
    rows = []
    for experiment in experiments:
        for scheme in scheme_names:
            try:
                average = experiment.scheme_average(scheme)
            except KeyError:
                continue
            rows.append(
                {
                    "dataset": experiment.dataset,
                    "scheme": scheme,
                    "mean_of_trace_averages_ms": round(average, 2),
                }
            )
    return format_table(rows, ["dataset", "scheme", "mean_of_trace_averages_ms"])


def speedup_summary(experiment: ExperimentResult, baseline: str, candidate: str) -> dict[str, float]:
    """Per-trace speedup of ``candidate`` over ``baseline`` (>1 = candidate faster)."""
    speedups: dict[str, float] = {}
    for trace in sorted({r.trace for r in experiment.results}):
        base = next(r for r in experiment.by_trace(trace) if r.scheme == baseline)
        cand = next(r for r in experiment.by_trace(trace) if r.scheme == candidate)
        if cand.average_response_ms <= 0:
            continue
        speedups[trace] = base.average_response_ms / cand.average_response_ms
    return speedups
