"""Zero-dependency tracing + metrics plane for the serving stack.

The paper's whole argument is an interactivity *budget* (~500 ms per
pan/zoom step), so when a step blows the budget we must be able to say
*where* the time went: the router's cache, the coalescer, a replica
failover, the socket hop into a worker process, or the backend query
itself.  This package provides that answer with two cooperating pieces:

* :class:`~repro.telemetry.tracer.Tracer` — per-request traces made of
  timed spans.  A ``TraceContext`` (trace id + parent span id + sampling
  decision) rides the JSON envelope across thread pools and the
  length-prefixed socket frames into worker processes, so one trace covers
  the whole scatter/gather fan-out including remote worker time.
* :class:`~repro.telemetry.registry.TelemetryRegistry` — fixed-bucket
  latency histograms (p50/p95/p99/p999) keyed by span name, fed by every
  finished span and rendered as Prometheus text for ``GET /metrics``.

Everything is stdlib-only and, when disabled (the default), reduces to a
shared no-op span object so the serving hot path stays unchanged.
"""

from __future__ import annotations

from .registry import Counter, Histogram, TelemetryRegistry
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "NULL_SPAN",
    "Span",
    "TelemetryRegistry",
    "Tracer",
    "configure",
    "get_registry",
    "get_tracer",
]

#: Process-wide singletons.  Worker processes configure their own copies
#: from the pickled ``ShardSpec`` config, so spans recorded behind the
#: socket boundary flow into the worker's tracer and travel back to the
#: router inside the reply envelope.
_REGISTRY = TelemetryRegistry()
_TRACER = Tracer(_REGISTRY)


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op until :func:`configure` enables it)."""
    return _TRACER


def get_registry() -> TelemetryRegistry:
    """The process-wide histogram registry fed by the tracer."""
    return _REGISTRY


def configure(config=None, **overrides) -> Tracer:
    """(Re)configure the process-wide telemetry plane.

    ``config`` is anything shaped like :class:`repro.config.TelemetryConfig`
    (attributes ``enabled``, ``sample_rate``, ``trace_buffer``,
    ``export_path``); keyword overrides win over the config object.
    Reconfiguring resets both the trace ring buffer and the histogram
    registry so each serving topology starts from a clean plane.
    """
    settings = {
        "enabled": getattr(config, "enabled", False),
        "sample_rate": getattr(config, "sample_rate", 1.0),
        "trace_buffer": getattr(config, "trace_buffer", 256),
        "export_path": getattr(config, "export_path", None),
    }
    settings.update(overrides)
    _REGISTRY.reset()
    _TRACER.configure(**settings)
    return _TRACER
