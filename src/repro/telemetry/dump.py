"""Pretty-print the slowest traces from a JSONL trace export.

Usage::

    python -m repro.telemetry.dump traces.jsonl [--top 5] [--min-ms 0]

Each input line is one completed trace as exported by the tracer
(``{"trace_id": ..., "spans": [...]}``).  Traces are ranked by root-span
duration and rendered as an indented tree with per-span durations,
attributes and events — the "where did my 500 ms go" view.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, TextIO


def load_traces(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL export, skipping blank or malformed lines."""
    traces: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                trace = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(trace, dict) and isinstance(trace.get("spans"), list):
                traces.append(trace)
    return traces


def root_spans(trace: dict[str, Any]) -> list[dict[str, Any]]:
    """Spans with no parent inside this trace (usually exactly one)."""
    known = {span.get("span_id") for span in trace["spans"]}
    return [
        span for span in trace["spans"] if span.get("parent_id") not in known
    ]


def trace_duration_ms(trace: dict[str, Any]) -> float:
    roots = root_spans(trace)
    if not roots:
        return 0.0
    return max(float(span.get("duration_ms", 0.0)) for span in roots)


def _format_attributes(span: dict[str, Any]) -> str:
    attributes = span.get("attributes") or {}
    if not attributes:
        return ""
    inner = ", ".join(f"{key}={value!r}" for key, value in sorted(attributes.items()))
    return f"  [{inner}]"


def format_trace(trace: dict[str, Any]) -> str:
    """Render one trace as an indented span tree, children by start time."""
    spans = trace["spans"]
    children: dict[Any, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: float(span.get("start_unix_ms", 0.0)))

    lines = [f"trace {trace.get('trace_id', '?')}  ({len(spans)} spans)"]
    known = {span.get("span_id") for span in spans}

    def walk(span: dict[str, Any], depth: int) -> None:
        duration = float(span.get("duration_ms", 0.0))
        lines.append(
            f"{'  ' * depth}- {span.get('name', '?'):<16} "
            f"{duration:9.3f} ms{_format_attributes(span)}"
        )
        for event in span.get("events") or []:
            detail = {
                key: value
                for key, value in event.items()
                if key not in ("name", "offset_ms")
            }
            extra = f" {detail}" if detail else ""
            lines.append(
                f"{'  ' * (depth + 1)}* event {event.get('name', '?')} "
                f"@ {event.get('offset_ms', 0)} ms{extra}"
            )
        for child in children.get(span.get("span_id"), []):
            walk(child, depth + 1)

    for root in sorted(
        (span for span in spans if span.get("parent_id") not in known),
        key=lambda span: float(span.get("start_unix_ms", 0.0)),
    ):
        walk(root, 1)
    return "\n".join(lines)


def dump_slowest(
    traces: Iterable[dict[str, Any]],
    *,
    top: int = 5,
    min_ms: float = 0.0,
    stream: TextIO | None = None,
) -> int:
    # Resolve the stream per call, not per import: tests (and anything else
    # redirecting stdout) must see the output.
    stream = stream if stream is not None else sys.stdout
    ranked = sorted(traces, key=trace_duration_ms, reverse=True)
    shown = 0
    for trace in ranked:
        duration = trace_duration_ms(trace)
        if duration < min_ms:
            break
        print(f"\n#{shown + 1}  {duration:.3f} ms", file=stream)
        print(format_trace(trace), file=stream)
        shown += 1
        if shown >= top:
            break
    return shown


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.dump", description=__doc__
    )
    parser.add_argument("path", help="JSONL trace export (tracer export_path)")
    parser.add_argument(
        "--top", type=int, default=5, help="show the N slowest traces"
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="skip traces whose root span is faster than this",
    )
    args = parser.parse_args(argv)
    traces = load_traces(args.path)
    if not traces:
        print(f"no traces found in {args.path}", file=sys.stderr)
        return 1
    print(f"{len(traces)} traces loaded from {args.path}")
    dump_slowest(traces, top=args.top, min_ms=args.min_ms)
    return 0


if __name__ == "__main__":
    sys.exit(main())
